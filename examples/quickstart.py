#!/usr/bin/env python3
"""Quickstart: a Concord distributed cache on a 4-node simulated cluster.

Shows the core API through the :class:`repro.session.Session` facade:

- build a cluster + coordination service + per-application Concord system
  with one object (explicit wiring stays supported, see DESIGN.md),
- read/write through the coherence protocol from different nodes,
- inspect cache states (E/S), the data directory, and access statistics,
- optionally capture a causal trace of every operation.

Run:  python examples/quickstart.py [--trace out.json]

With ``--trace``, a Chrome trace is written on exit — load it in
Perfetto / chrome://tracing, or summarize it with ``repro-trace out.json``.
"""

import argparse

from repro.session import Session
from repro.storage import DataItem


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace of the run to PATH")
    cli = parser.parse_args()

    with Session(nodes=4, seed=42, scheme="concord", app="demo",
                 trace=cli.trace or False) as s:
        concord = s.system

        # Durable data lives in global storage (~30 ms away).
        s.preload({"user:42": DataItem("profile-v0", size_bytes=2048)})

        def show(label: str) -> None:
            home = concord.ring_template.home("user:42")
            holders = {
                node: f"{entry.state}"
                for node, agent in concord.agents.items()
                if (entry := agent.cache.peek("user:42")) is not None
            }
            directory = concord.agents[home].directory.get("user:42")
            print(f"{label:42s} holders={holders} directory={directory}")

        print(f"home of 'user:42' is {concord.ring_template.home('user:42')}\n")

        t0 = s.sim.now
        value = s.read("node1", "user:42")
        print(f"node1 read -> {value.payload!r}  "
              f"({s.sim.now - t0:.1f} ms, storage miss)")
        show("after first read (Exclusive at node1):")

        t0 = s.sim.now
        s.read("node1", "user:42")
        print(f"\nnode1 read again                ({s.sim.now - t0:.1f} ms, "
              f"local hit)")

        t0 = s.sim.now
        s.read("node2", "user:42")
        print(f"node2 read                      ({s.sim.now - t0:.1f} ms, "
              f"remote hit)")
        show("after second reader (both Shared):")

        t0 = s.sim.now
        s.write("node3", "user:42", DataItem("profile-v1", size_bytes=2048))
        print(f"\nnode3 write                     ({s.sim.now - t0:.1f} ms, "
              f"invalidates node1+node2 in parallel with storage)")
        show("after the write (node3 Exclusive):")

        value = s.read("node1", "user:42")
        print(f"\nnode1 re-read -> {value.payload!r} (coherent)")

        print("\naccess statistics:")
        for kind, count in sorted(concord.stats.ops.items(),
                                  key=lambda kv: kv[0].value):
            mean = concord.stats.latency[kind].mean
            print(f"  {kind.value:18s} x{count}  mean {mean:.1f} ms")

    if cli.trace:
        print(f"\nwrote Chrome trace to {cli.trace} "
              f"(open in Perfetto, or run: repro-trace {cli.trace})")


if __name__ == "__main__":
    main()
