#!/usr/bin/env python3
"""Quickstart: a Concord distributed cache on a 4-node simulated cluster.

Shows the core API:

- build a cluster + coordination service + per-application Concord system,
- read/write through the coherence protocol from different nodes,
- inspect cache states (E/S), the data directory, and access statistics.

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.sim import Simulator
from repro.storage import DataItem


def main() -> None:
    sim = Simulator(seed=42)
    cluster = Cluster(sim, SimConfig(num_nodes=4))
    coord = CoordinationService(cluster.network, cluster.config)
    concord = ConcordSystem(cluster, app="demo", coord=coord)

    # Durable data lives in global storage (~30 ms away).
    cluster.storage.preload({"user:42": DataItem("profile-v0", size_bytes=2048)})

    def run(op):
        """Drive one operation to completion on the simulated clock."""
        return sim.run_until_complete(sim.spawn(op), limit=sim.now + 60_000.0)

    def show(label: str) -> None:
        home = concord.ring_template.home("user:42")
        holders = {
            node: f"{entry.state}"
            for node, agent in concord.agents.items()
            if (entry := agent.cache.peek("user:42")) is not None
        }
        directory = concord.agents[home].directory.get("user:42")
        print(f"{label:42s} holders={holders} directory={directory}")

    print(f"home of 'user:42' is {concord.ring_template.home('user:42')}\n")

    t0 = sim.now
    value = run(concord.read("node1", "user:42"))
    print(f"node1 read -> {value.payload!r}  ({sim.now - t0:.1f} ms, storage miss)")
    show("after first read (Exclusive at node1):")

    t0 = sim.now
    run(concord.read("node1", "user:42"))
    print(f"\nnode1 read again                ({sim.now - t0:.1f} ms, local hit)")

    t0 = sim.now
    run(concord.read("node2", "user:42"))
    print(f"node2 read                      ({sim.now - t0:.1f} ms, remote hit)")
    show("after second reader (both Shared):")

    t0 = sim.now
    run(concord.write("node3", "user:42", DataItem("profile-v1", size_bytes=2048)))
    print(f"\nnode3 write                     ({sim.now - t0:.1f} ms, "
          f"invalidates node1+node2 in parallel with storage)")
    show("after the write (node3 Exclusive):")

    value = run(concord.read("node1", "user:42"))
    print(f"\nnode1 re-read -> {value.payload!r} (coherent)")

    print("\naccess statistics:")
    for kind, count in sorted(concord.stats.ops.items(), key=lambda kv: kv[0].value):
        mean = concord.stats.latency[kind].mean
        print(f"  {kind.value:18s} x{count}  mean {mean:.1f} ms")


if __name__ == "__main__":
    main()
