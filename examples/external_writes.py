#!/usr/bin/env python3
"""External reads/writes: sharing data with non-FaaS cloud workloads.

Other cloud services may update the same blobs serverless functions cache
(paper Section III-C3).  Concord registers a listener on the application's
storage locations; when an external write lands, the update is forwarded
to the key's home agent, which invalidates every cached copy — functions
never operate on stale data.

Run:  python examples/external_writes.py
"""

from repro.session import Session
from repro.storage import DataItem


def main() -> None:
    with Session(nodes=4, seed=5, scheme="concord", app="catalog") as s:
        concord = s.system
        key = "catalog:price:sku-1"
        s.preload({key: DataItem("$19.99", size_bytes=256)})

        # Functions on three nodes cache the price.
        for node in ("node0", "node1", "node2"):
            value = s.read(node, key)
            print(f"[{s.sim.now:7.1f} ms] {node} cached price {value.payload}")

        holders = [n for n, a in concord.agents.items() if a.cache.peek(key)]
        print(f"\ncached at: {holders}\n")

        # A batch pricing job — not a serverless function — updates the
        # blob directly in global storage.
        def batch_job(sim):
            yield sim.timeout(100.0)
            print(f"[{sim.now:7.1f} ms] EXTERNAL batch job writes $19.49")
            yield from s.storage.write(
                key, DataItem("$17.49", size_bytes=256), writer="external")

        s.sim.spawn(batch_job(s.sim))
        s.advance(500.0)  # listener -> controller -> home -> purge

        survivors = [n for n, a in concord.agents.items() if a.cache.peek(key)]
        print(f"[{s.sim.now:7.1f} ms] cached copies after external write: "
              f"{survivors}")

        for node in ("node0", "node1", "node2"):
            value = s.read(node, key)
            assert value.payload == "$17.49"
            print(f"[{s.sim.now:7.1f} ms] {node} reads {value.payload}  (fresh)")

    print("\nexternal updates invalidated every cached copy — no function "
          "ever saw the stale price.")


if __name__ == "__main__":
    main()
