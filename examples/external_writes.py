#!/usr/bin/env python3
"""External reads/writes: sharing data with non-FaaS cloud workloads.

Other cloud services may update the same blobs serverless functions cache
(paper Section III-C3).  Concord registers a listener on the application's
storage locations; when an external write lands, the update is forwarded
to the key's home agent, which invalidates every cached copy — functions
never operate on stale data.

Run:  python examples/external_writes.py
"""

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.sim import Simulator
from repro.storage import DataItem


def main() -> None:
    sim = Simulator(seed=5)
    cluster = Cluster(sim, SimConfig(num_nodes=4))
    coord = CoordinationService(cluster.network, cluster.config)
    concord = ConcordSystem(cluster, app="catalog", coord=coord)

    key = "catalog:price:sku-1"
    cluster.storage.preload({key: DataItem("$19.99", size_bytes=256)})

    def run(op):
        return sim.run_until_complete(sim.spawn(op), limit=sim.now + 60_000.0)

    # Functions on three nodes cache the price.
    for node in ("node0", "node1", "node2"):
        value = run(concord.read(node, key))
        print(f"[{sim.now:7.1f} ms] {node} cached price {value.payload}")

    holders = [n for n, a in concord.agents.items() if a.cache.peek(key)]
    print(f"\ncached at: {holders}\n")

    # A batch pricing job — not a serverless function — updates the blob
    # directly in global storage.
    def batch_job(sim):
        yield sim.timeout(100.0)
        print(f"[{sim.now:7.1f} ms] EXTERNAL batch job writes $19.49")
        yield from cluster.storage.write(
            key, DataItem("$17.49", size_bytes=256), writer="external")

    sim.spawn(batch_job(sim))
    sim.run(until=sim.now + 500.0)  # listener -> controller -> home -> purge

    survivors = [n for n, a in concord.agents.items() if a.cache.peek(key)]
    print(f"[{sim.now:7.1f} ms] cached copies after external write: {survivors}")

    for node in ("node0", "node1", "node2"):
        value = run(concord.read(node, key))
        assert value.payload == "$17.49"
        print(f"[{sim.now:7.1f} ms] {node} reads {value.payload}  (fresh)")

    print("\nexternal updates invalidated every cached copy — no function "
          "ever saw the stale price.")


if __name__ == "__main__":
    main()
