#!/usr/bin/env python3
"""A complete serverless deployment: custom app + schedulers compared.

Defines a small image-tagging application (3 functions passing data
through storage), deploys it on an 8-node simulated FaaS cluster with a
Concord cache, and compares random scheduling against Concord's
coherence-aware scheduling (CAS) under Poisson load.

Run:  python examples/serverless_platform.py
"""

from repro.cluster import Cluster
from repro.config import KB, SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.faas import AppSpec, CasScheduler, FaasPlatform, FunctionSpec, RandomScheduler
from repro.sim import Simulator
from repro.storage import DataItem
from repro.workloads import ZipfSampler

NUM_IMAGES = 50


def build_image_tagger() -> AppSpec:
    """fetch -> classify -> publish, chained through storage."""

    def fetch(ctx):
        image = ctx.inputs["entity"]
        yield from ctx.read(f"images:{image}:blob")
        yield from ctx.compute(3.0)
        yield from ctx.write(
            f"images:{image}:scaled", DataItem(("scaled", image), 8 * KB))
        return image

    def classify(ctx):
        image = ctx.inputs["entity"]
        yield from ctx.read(f"images:{image}:scaled")
        yield from ctx.read("models:labels")          # hot shared item
        yield from ctx.compute(12.0)
        yield from ctx.write(
            f"images:{image}:tags", DataItem(("tags", image), 1 * KB))
        return image

    def publish(ctx):
        image = ctx.inputs["entity"]
        tags = yield from ctx.read(f"images:{image}:tags")
        yield from ctx.compute(2.0)
        yield from ctx.write(
            f"feed:{image}", DataItem(("post", tags.payload), 2 * KB))
        return f"published {image}"

    spec = AppSpec(name="tagger")
    spec.add_function(FunctionSpec("fetch", fetch))
    spec.add_function(FunctionSpec("classify", classify))
    spec.add_function(FunctionSpec("publish", publish))
    return spec


def run_deployment(scheduler_name: str) -> dict:
    sim = Simulator(seed=99)
    cluster = Cluster(sim, SimConfig(num_nodes=8, cores_per_node=4))
    coord = CoordinationService(cluster.network, cluster.config)
    concord = ConcordSystem(cluster, app="tagger", coord=coord)

    cluster.storage.preload({
        **{f"images:{i}:blob": DataItem(("raw", i), 64 * KB)
           for i in range(NUM_IMAGES)},
        "models:labels": DataItem("label-set-v7", 12 * KB),
    })

    scheduler = CasScheduler() if scheduler_name == "cas" else RandomScheduler(sim)
    platform = FaasPlatform(cluster, scheduler=scheduler)
    app = platform.deploy(build_image_tagger(), concord)

    popularity = ZipfSampler(NUM_IMAGES, alpha=1.1)
    rng = sim.rng.stream("demo-arrivals")

    def inputs_factory(_index):
        return {"entity": popularity.sample(rng)}

    sim.spawn(platform.open_loop("tagger", rps=60.0, duration_ms=5000.0,
                                 inputs_factory=inputs_factory))
    sim.run(until=10_000.0)

    mix = concord.stats.read_mix()
    return {
        "requests": app.requests_completed,
        "mean_ms": app.latency.mean,
        "p99_ms": app.latency.p99,
        "local_hit_pct": 100 * mix["local_hit"],
        "storage_pct": 100 * app.storage_fraction,
    }


def main() -> None:
    print(f"image-tagger app, 8 nodes, 60 RPS Poisson, Zipf-{1.1} popularity\n")
    results = {name: run_deployment(name) for name in ("random", "cas")}
    header = f"{'scheduler':10s} {'requests':>9s} {'mean':>9s} {'p99':>9s} {'local-hit':>10s}"
    print(header)
    for name, stats in results.items():
        print(f"{name:10s} {stats['requests']:9d} {stats['mean_ms']:8.1f}m "
              f"{stats['p99_ms']:8.1f}m {stats['local_hit_pct']:9.1f}%")
    gain = 1 - results["cas"]["mean_ms"] / results["random"]["mean_ms"]
    print(f"\ncoherence-aware scheduling cut mean latency by {100 * gain:.0f}% "
          f"by routing same-image requests to the same cache instance.")


if __name__ == "__main__":
    main()
