#!/usr/bin/env python3
"""Fault tolerance demo: crash the home node mid-workload.

While readers and a writer hammer a shared item, its home node crashes at
the worst possible moment — right after a write committed to storage but
before the sharers were invalidated.  Watch the coordination service
detect the failure, the survivors evict the affected items and rebuild the
hash ring, and every subsequent read return the latest value.

Run:  python examples/failure_recovery.py
"""

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.sim import Simulator
from repro.storage import DataItem


def main() -> None:
    sim = Simulator(seed=11)
    config = SimConfig(num_nodes=4, heartbeat_interval_ms=100.0)
    cluster = Cluster(sim, config)
    coord = CoordinationService(cluster.network, config)
    concord = ConcordSystem(cluster, app="resilient", coord=coord)

    key = "inventory:widget"
    cluster.storage.preload({key: DataItem("stock=100", size_bytes=512)})
    home = concord.ring_template.home(key)
    others = [n for n in cluster.node_ids if n != home]
    print(f"'{key}' is homed at {home}; cluster = {cluster.node_ids}\n")

    def run(op):
        return sim.run_until_complete(sim.spawn(op), limit=sim.now + 120_000.0)

    # Spread copies across the cluster.
    for node in others:
        run(concord.read(node, key))
    print(f"[{sim.now:8.1f} ms] {len(others)} nodes cached the item (Shared)")

    # Crash the home the instant the next write hits storage — the
    # critical window of Section III-F.
    new_value = DataItem("stock=99", size_bytes=512)

    def crash_at_commit(k, value, version, writer):
        if k == key and value == new_value and cluster.node(home).alive:
            print(f"[{sim.now:8.1f} ms] *** {home} CRASHES (write committed, "
                  f"invalidations unsent) ***")
            cluster.crash_node(home)

    cluster.storage.add_write_listener(crash_at_commit)

    def writer(sim):
        print(f"[{sim.now:8.1f} ms] {others[0]} writes '{new_value.payload}'")
        yield from concord.write(others[0], key, new_value)
        print(f"[{sim.now:8.1f} ms] write completed (retried through the "
              f"new home after recovery)")

    sim.spawn(writer(sim))
    sim.run(until=sim.now + 30_000.0)

    detected = coord.failures_detected
    if detected:
        when, app, node = detected[0]
        print(f"[{when:8.1f} ms] coordination service declared {node} failed")

    survivors = [n for n in concord.agents if cluster.node(n).alive]
    new_home = concord.agents[survivors[0]].ring.home(key)
    print(f"\nafter recovery: ring = {sorted(concord.agents[survivors[0]].ring.members)}")
    print(f"new home of '{key}': {new_home}")

    for node in survivors:
        value = run(concord.read(node, key))
        assert value == new_value, f"stale read at {node}!"
        print(f"  {node} reads '{value.payload}'  (coherent)")
    print("\nno node ever observed a stale value — recovery preserved "
          "consistency.")


if __name__ == "__main__":
    main()
