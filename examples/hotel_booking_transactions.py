#!/usr/bin/env python3
"""Transactional hotel booking: Concord transactions vs Saga vs Beldi.

Four concurrent clients book rooms for the same few hotels — a contended
workload.  Concord detects conflicts through coherence messages and
buffers speculative writes in its caches; Saga compensates via storage;
Beldi logs every access.  The example prints commits/aborts and mean
latencies for all three.

Run:  python examples/hotel_booking_transactions.py
"""

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.metrics import Histogram
from repro.sim import Simulator
from repro.storage import DataItem
from repro.txn import BeldiRunner, ConcordTxnRuntime, SagaRunner, TXN_APPS

CLIENTS = 4
BOOKINGS_PER_CLIENT = 5
HOTELS = 3


def booking_body(app, hotel: int):
    """One booking transaction: check availability, reserve, charge..."""
    def body(txn):
        for step in app.steps:
            yield txn.runtime.sim.timeout(step.compute_ms)
            for template in step.reads:
                yield from txn.read(template.format(e=hotel))
            for template in step.writes:
                key = template.format(e=hotel)
                yield from txn.write(key, DataItem((key, "booked"), 256))
        return f"booked hotel {hotel}"
    return body


def run_system(system_name: str) -> dict:
    sim = Simulator(seed=7)
    cluster = Cluster(sim, SimConfig(num_nodes=4))
    app = TXN_APPS["HotelBooking"]
    cluster.storage.preload({k: DataItem("init", 256) for k in app.keyspace()})

    if system_name == "concord":
        coord = CoordinationService(cluster.network, cluster.config)
        runtime = ConcordTxnRuntime(ConcordSystem(
            cluster, app="hotel", coord=coord))
    elif system_name == "saga":
        runtime = SagaRunner(cluster)
    else:
        runtime = BeldiRunner(cluster)

    rng = sim.rng.stream("clients")
    latencies = Histogram()

    def client(index: int):
        node = f"node{index % 4}"
        for _ in range(BOOKINGS_PER_CLIENT):
            yield sim.timeout(rng.expovariate(1 / 50.0))
            hotel = rng.randrange(HOTELS)
            start = sim.now
            if system_name == "concord":
                yield from runtime.run(node, booking_body(app, hotel))
            else:
                yield from runtime.run(app, hotel, writer_tag=f"client{index}")
            latencies.record(sim.now - start)

    for index in range(CLIENTS):
        sim.spawn(client(index), name=f"client{index}")
    sim.run(until=3_000_000.0)

    stats = {"mean_ms": latencies.mean, "p99_ms": latencies.p99,
             "commits": runtime.commits}
    if system_name == "concord":
        stats["aborts"] = runtime.aborts
    elif system_name == "saga":
        stats["compensations"] = runtime.compensations
    else:
        stats["aborts"] = runtime.aborts
    return stats


def main() -> None:
    print(f"{CLIENTS} clients x {BOOKINGS_PER_CLIENT} bookings over "
          f"{HOTELS} contended hotels (6-step transactions)\n")
    results = {name: run_system(name) for name in ("saga", "beldi", "concord")}
    for name, stats in results.items():
        extras = ", ".join(f"{k}={v}" for k, v in stats.items()
                           if k not in ("mean_ms", "p99_ms"))
        print(f"{name:8s} mean={stats['mean_ms']:8.1f} ms  "
              f"p99={stats['p99_ms']:8.1f} ms  ({extras})")
    saga, concord = results["saga"]["mean_ms"], results["concord"]["mean_ms"]
    beldi = results["beldi"]["mean_ms"]
    print(f"\nConcord reduces mean transaction latency by "
          f"{100 * (1 - concord / saga):.0f}% vs Saga and "
          f"{100 * (1 - concord / beldi):.0f}% vs Beldi "
          f"(paper: 54% and 20%).")


if __name__ == "__main__":
    main()
