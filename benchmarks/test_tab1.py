"""Benchmark: regenerate the paper's tab1 sharers."""

from repro.experiments import tab1_sharers


def test_tab1(benchmark, scale, show):
    result = benchmark.pedantic(
        tab1_sharers.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    average = next(r for r in rows if r["app"] == "Average")
    low_avg = float(average["low"].split("/")[0])
    high_avg = float(average["high"].split("/")[0])
    assert low_avg >= 1.0
    assert high_avg >= low_avg  # sharing grows with load
