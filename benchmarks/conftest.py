"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures through
``repro.experiments`` and prints the resulting table, so running::

    pytest benchmarks/ --benchmark-only -s

reproduces the whole evaluation section.  ``--repro-scale`` shrinks or
grows run durations (1.0 = the defaults used in EXPERIMENTS.md).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale", type=float, default=0.5,
        help="Duration/request-count scale for experiment runs "
             "(0.5 default keeps the suite fast; 1.0 for full runs)",
    )


@pytest.fixture
def scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture
def show(capsys):
    """Print an experiment's table so it lands in the bench output."""
    def _show(result):
        with capsys.disabled():
            print()
            print(result.render())
        return result
    return _show
