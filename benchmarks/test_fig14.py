"""Benchmark: regenerate the paper's fig14 cache size."""

from repro.experiments import fig14_cache_size


def test_fig14(benchmark, scale, show):
    result = benchmark.pedantic(
        fig14_cache_size.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    speedups = [r["speedup"] for r in rows]
    # Speedup grows with capacity (tiny caches thrash) and saturates; the
    # plateau must sit near the best observed point (tolerating run noise).
    assert speedups[-1] > speedups[0]
    assert max(speedups[-3:]) >= max(speedups) - 0.08
