"""Benchmark: regenerate the paper's verify protocol."""

from repro.experiments import verify_protocol


def test_verify(benchmark, scale, show):
    result = benchmark.pedantic(
        verify_protocol.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    assert all(r["violations"] == 0 for r in rows)
    assert all(r["deadlocks"] == 0 for r in rows)
