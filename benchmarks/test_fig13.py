"""Benchmark: regenerate the paper's fig13 churn."""

from repro.experiments import fig13_churn


def test_fig13(benchmark, scale, show):
    result = benchmark.pedantic(
        fig13_churn.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    moderate = [r for r in rows if r["removals_per_min"] <= 48]
    assert all(r["normalized"] > 0.7 for r in moderate)
