"""Benchmark: regenerate the paper's fig12 memory."""

from repro.experiments import fig12_memory


def test_fig12(benchmark, scale, show):
    result = benchmark.pedantic(
        fig12_memory.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    average = next(r for r in rows if r["app"] == "Average")
    assert 0.0 < average["avg_instance_mb"] < 64.0
    assert average["max_instance_mb"] >= average["avg_instance_mb"]
