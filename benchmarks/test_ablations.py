"""Ablation benchmarks for Concord's design choices (DESIGN.md s.5)."""

from repro.experiments import ablations


def test_ablation_estate(benchmark, scale, show):
    result = benchmark.pedantic(
        ablations.run_estate, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = {r["variant"]: r for r in result.rows()}
    # The E-state fast path avoids all coherence messages on repeated writes.
    assert rows["with E-state"]["coherence_msgs"] == 0
    assert rows["with E-state"]["write_ms"] <= rows["without"]["write_ms"]


def test_ablation_parallel_invalidations(benchmark, scale, show):
    result = benchmark.pedantic(
        ablations.run_parallel_inv, kwargs={"scale": scale},
        rounds=1, iterations=1)
    show(result)
    rows = {r["variant"]: r for r in result.rows()}
    assert rows["parallel"]["write_ms"] <= rows["serialized"]["write_ms"]


def test_ablation_faast_annotations(benchmark, scale, show):
    result = benchmark.pedantic(
        ablations.run_faast_annotations, kwargs={"scale": scale},
        rounds=1, iterations=1)
    show(result)
    rows = {r["variant"]: r for r in result.rows()}
    # Annotations cut version checks but only slightly (5% read-only keys).
    assert rows["annotated"]["version_checks"] <= rows["plain"]["version_checks"]


def test_ablation_virtual_nodes(benchmark, scale, show):
    result = benchmark.pedantic(
        ablations.run_virtual_nodes, kwargs={"scale": scale},
        rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    # More virtual nodes -> tighter balance; re-home volume ~1/16 always.
    assert rows[-1]["max/mean_keys"] < rows[0]["max/mean_keys"]
    assert all(r["rehomed_pct"] < 30.0 for r in rows)
