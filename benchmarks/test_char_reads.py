"""Benchmark: regenerate the paper's char reads."""

from repro.experiments import char_reads


def test_char_reads(benchmark, scale, show):
    result = benchmark.pedantic(
        char_reads.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    by_op = {r["operation"]: r["measured_ms"] for r in rows}
    assert by_op["local hit"] < by_op["remote hit"] < by_op["remote miss"]
