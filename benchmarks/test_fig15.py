"""Benchmark: regenerate the paper's fig15 transactions."""

from repro.experiments import fig15_transactions


def test_fig15(benchmark, scale, show):
    result = benchmark.pedantic(
        fig15_transactions.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    average = next(r for r in rows if r["app"] == "Average")
    assert average["vs_saga_pct"] > 0.0   # Concord beats Saga
    assert average["vs_beldi_pct"] > 0.0  # and Beldi
