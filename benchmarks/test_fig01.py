"""Benchmark: regenerate the paper's fig01 breakdown."""

from repro.experiments import fig01_breakdown


def test_fig01(benchmark, scale, show):
    result = benchmark.pedantic(
        fig01_breakdown.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    storage_pcts = [r["storage_pct"] for r in rows if r["app"] != "Average"]
    assert all(25.0 <= p <= 100.0 for p in storage_pcts)
    # Read-heavy small-item apps are the most storage-bound.
    by_app = {r["app"]: r["storage_pct"] for r in rows}
    assert by_app["SocNet"] > by_app["VidProc"]
