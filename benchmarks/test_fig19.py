"""Benchmark: sharded directory under faults, by topology (fig19 ext)."""

from repro.experiments import fig19_topology


def test_fig19(benchmark, scale, show):
    result = benchmark.pedantic(
        fig19_topology.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = {r["topology"]: r for r in result.rows()}
    assert set(rows) == {"flat", "shard4", "shard4rep", "region2"}
    for row in rows.values():
        # Sharding changes where directory state lives, never whether it
        # is coherent: zero stale copies, no dual-home entries.
        assert row["violations"] == 0
        assert row["completion_ratio"] > 0.9
    # Replica chains make the leader crash an actual failover; without
    # replication the crash cold-rebuilds and no mirror adoption happens.
    assert rows["shard4rep"]["failovers"] >= 1
    assert rows["region2"]["failovers"] >= 1
    assert rows["flat"]["failovers"] == 0
    # Sharded cells re-home shards when the crashed leader leaves and
    # rejoins the chain.
    assert rows["shard4"]["rehomed"] >= 1
    assert rows["shard4rep"]["rehomed"] >= 1
