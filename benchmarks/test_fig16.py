"""Benchmark: regenerate the paper's fig16 placement."""

from repro.experiments import fig16_placement


def test_fig16(benchmark, scale, show):
    result = benchmark.pedantic(
        fig16_placement.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    average = next(r for r in rows if r["app"] == "Average")
    assert average["reduction_pct"] > 0.0
