"""Benchmark: regenerate the paper's tab3 read mix."""

from repro.experiments import tab3_read_mix


def test_tab3(benchmark, scale, show):
    result = benchmark.pedantic(
        tab3_read_mix.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    average = next(r for r in rows if r["app"] == "Average")
    nocas_local, cas_local = average["local% (NoCAS-C)"].split(" - ")
    assert float(cas_local) > float(nocas_local)  # CAS raises local hits
