"""Benchmark: regenerate the paper's fig07 latency."""

from repro.experiments import fig07_latency


def test_fig07(benchmark, scale, show):
    result = benchmark.pedantic(
        fig07_latency.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    averages = [r for r in rows if r["app"] == "Average"]
    assert all(r["ofc/concord"] > 1.0 for r in averages)
    assert all(r["faast/concord"] > 1.0 for r in averages)
