"""Benchmark: regenerate the paper's fig08 throughput."""

from repro.experiments import fig08_throughput


def test_fig08(benchmark, scale, show):
    result = benchmark.pedantic(
        fig08_throughput.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    by_scheme = {r["scheme"]: r["max_rps"] for r in rows}
    assert by_scheme["concord"] >= by_scheme["ofc"]
    assert by_scheme["concord"] >= by_scheme["faast"]
