"""Benchmark: availability under a crash + restart (fig18 extension)."""

from repro.experiments import fig18_availability


def test_fig18(benchmark, scale, show):
    result = benchmark.pedantic(
        fig18_availability.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = {r["recovery"]: r for r in result.rows()}
    assert set(rows) == {"concord", "lease"}
    for row in rows.values():
        # The crash must not corrupt the cache: zero stale copies and no
        # directory entry pointing at the dead node after recovery.
        assert row["violations"] == 0
        assert row["recoveries"] >= 1
        assert row["completion_ratio"] > 0.95
    # The failure detector declares the crash and the domain recovers
    # while the platform keeps serving: no hard request failures.
    assert rows["concord"]["failed"] == 0
