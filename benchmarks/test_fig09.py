"""Benchmark: regenerate the paper's fig09 invalidations."""

from repro.experiments import fig09_invalidations


def test_fig09(benchmark, scale, show):
    result = benchmark.pedantic(
        fig09_invalidations.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    average = next(r for r in rows if r["app"] == "Average")
    assert 0.0 <= average["avg_invalidations"] < 3.0
    assert average["max_invalidations"] < 16  # bounded by cluster size
