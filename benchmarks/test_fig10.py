"""Benchmark: regenerate the paper's fig10 cas."""

from repro.experiments import fig10_cas


def test_fig10(benchmark, scale, show):
    result = benchmark.pedantic(
        fig10_cas.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    average = next(r for r in rows if r["app"] == "Average")
    assert average["reduction_pct"] > 0.0  # CAS helps
