"""Benchmark: regenerate the paper's fig11 write scaling."""

from repro.experiments import fig11_write_scaling


def test_fig11(benchmark, scale, show):
    result = benchmark.pedantic(
        fig11_write_scaling.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    first, last = rows[0], rows[-1]
    # Writes grow only modestly with sharers; Faa$T stays flat.
    assert last["concord_write_ms"] < first["concord_write_ms"] * 1.25
    # Concord read hits beat Faa$T's version-checked hits at any scale.
    assert all(r["concord_read_hit_ms"] < r["faast_read_hit_ms"] for r in rows
               if r["nodes"] > 1)
