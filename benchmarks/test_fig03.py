"""Benchmark: regenerate the paper's fig03 version vs data."""

from repro.experiments import fig03_version_vs_data


def test_fig03(benchmark, scale, show):
    result = benchmark.pedantic(
        fig03_version_vs_data.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    small = [r for r in rows if r["size_kb"] <= 64]
    large = [r for r in rows if r["size_kb"] >= 256]
    # Comparable cost up to 64KB; clearly cheaper probe only above.
    assert all(r["data/version"] < 1.5 for r in small)
    assert all(r["data/version"] > 1.5 for r in large)
