"""Benchmark: regenerate the paper's fig17 apta."""

from repro.experiments import fig17_apta


def test_fig17(benchmark, scale, show):
    result = benchmark.pedantic(
        fig17_apta.run, kwargs={"scale": scale}, rounds=1, iterations=1)
    show(result)
    rows = result.rows()
    assert rows
    by_env = {r["environment"]: r["mean_ms"] for r in rows}
    assert by_env["Concord-Az"] < by_env["Apta-Az"]
    assert by_env["Concord-Mem"] < by_env["Apta-Mem"]
