"""Trace summarization (Fig. 1-style breakdown) and the repro-trace CLI."""

import json

import pytest

from repro.trace.cli import main as trace_cli
from repro.trace.summary import (
    category_totals,
    format_breakdown,
    op_breakdown,
    per_app_requests,
)


def span(trace_id, span_id, category, name="s", duration=1.0, parent=None,
         **attrs):
    return {
        "trace_id": trace_id, "span_id": span_id, "parent_id": parent,
        "name": name, "category": category, "start_ms": 0.0,
        "end_ms": duration, "duration_ms": duration, "attrs": attrs,
    }


@pytest.fixture
def request_spans():
    return [
        span(1, 1, "request", "request:shop", 100.0, app="shop"),
        span(1, 2, "op", "read", 60.0, parent=1, scheme="concord"),
        span(1, 3, "compute", "compute", 20.0, parent=1),
        span(2, 4, "request", "request:shop", 200.0, app="shop"),
        span(2, 5, "op", "write", 100.0, parent=4, scheme="concord"),
        span(2, 6, "compute", "compute", 60.0, parent=4),
        span(3, 7, "request", "request:feed", 50.0, app="feed"),
        span(3, 8, "compute", "compute", 50.0, parent=7),
    ]


class TestPerAppRequests:
    def test_means_and_storage_share(self, request_spans):
        table = per_app_requests(request_spans)
        shop = table["shop"]
        assert shop["requests"] == 2
        assert shop["response_ms"] == pytest.approx(150.0)
        assert shop["storage_ms"] == pytest.approx(80.0)
        assert shop["compute_ms"] == pytest.approx(40.0)
        assert shop["storage_pct"] == pytest.approx(100.0 * 80 / 120)

    def test_pure_compute_app(self, request_spans):
        feed = per_app_requests(request_spans)["feed"]
        assert feed["storage_ms"] == 0.0
        assert feed["storage_pct"] == 0.0

    def test_no_requests_no_rows(self):
        assert per_app_requests([span(1, 1, "op", "read")]) == {}


class TestAggregations:
    def test_category_totals(self, request_spans):
        totals = category_totals(request_spans)
        assert totals["request"]["count"] == 3
        assert totals["op"]["total_ms"] == pytest.approx(160.0)
        assert totals["compute"]["mean_ms"] == pytest.approx(130.0 / 3)

    def test_op_breakdown_keyed_by_scheme_and_name(self, request_spans):
        ops = op_breakdown(request_spans)
        assert ops[("concord", "read")]["count"] == 1
        assert ops[("concord", "write")]["total_ms"] == pytest.approx(100.0)


class TestFormatBreakdown:
    def test_contains_all_tables(self, request_spans):
        text = format_breakdown(request_spans, title="t")
        assert "Per-app latency breakdown" in text
        assert "Storage operations" in text
        assert "Time by span category" in text
        assert "8 completed span(s)" in text

    def test_empty_trace(self):
        text = format_breakdown([])
        assert "0 completed span(s)" in text


class TestCli:
    def test_text_output(self, tmp_path, capsys, request_spans):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(json.dumps(s) + "\n" for s in request_spans))
        assert trace_cli([str(path)]) == 0
        out = capsys.readouterr().out
        assert "Per-app latency breakdown" in out
        assert "shop" in out

    def test_json_output(self, tmp_path, capsys, request_spans):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(json.dumps(s) + "\n" for s in request_spans))
        assert trace_cli([str(path), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["per_app"]["shop"]["requests"] == 2

    def test_missing_file(self, tmp_path, capsys):
        assert trace_cli([str(tmp_path / "nope.json")]) == 2
