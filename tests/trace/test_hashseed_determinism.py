"""Same seed, different PYTHONHASHSEED -> byte-identical trace exports.

This is the tracing layer's half of the DET01/DET03 contract: nothing in
a span — ids, lane numbers, attribute order, timestamps — may depend on
interpreter hash randomization.  The check must cross a process boundary
(hash randomization is fixed per interpreter), so the traced run executes
in subprocesses with explicitly different PYTHONHASHSEED values.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A mixed-workload-style script: FaaS requests over Concord, both export
#: formats printed, so the check covers request/invoke/op/rpc/invalidation
#: spans and the Chrome lane assignment.
SCRIPT = """
import sys
from repro.session import Session
from repro.storage import DataItem
from repro.trace import chrome_dumps, jsonl_dumps

with Session(nodes=4, seed=1234, scheme="concord", app="det",
             trace=True) as s:
    s.preload({f"k{i}": DataItem(f"v{i}", 256) for i in range(8)})
    for i in range(8):
        s.read(f"node{i % 4}", f"k{i}")
    for i in range(8):
        s.write(f"node{(i + 1) % 4}", f"k{i}", DataItem(f"w{i}", 256))
    s.advance(2_000.0)
    sys.stdout.write(jsonl_dumps(s.tracer))
    sys.stdout.write(chrome_dumps(s.tracer))
"""


def run_with_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_trace_exports_independent_of_hash_randomization():
    first = run_with_hashseed("0")
    second = run_with_hashseed("1")
    assert first, "traced run produced no output"
    assert first == second
