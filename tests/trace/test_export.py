"""Export formats: JSONL and Chrome trace_event, byte-deterministic."""

import json

import pytest

from repro.sim import Simulator
from repro.trace import (
    Tracer,
    chrome_dumps,
    export_chrome,
    export_jsonl,
    jsonl_dumps,
    load_trace,
    loads_trace,
)


def traced_run(seed: int = 3) -> Tracer:
    """A tiny deterministic run producing a few nested spans."""
    tracer = Tracer()
    sim = Simulator(seed=seed, tracer=tracer)

    def op(sim, label):
        with tracer.span(f"op:{label}", "op", parent=None, key=label):
            tracer.instant("dir:get", "directory", key=label)
            with tracer.span("storage:read", "storage", store="blob"):
                yield sim.timeout(30.0)

    sim.spawn(op(sim, "a"), name="worker-a")
    sim.spawn(op(sim, "b"), name="worker-b")
    sim.run()
    return tracer


class TestJsonl:
    def test_one_json_object_per_line(self):
        text = jsonl_dumps(traced_run())
        lines = text.strip().split("\n")
        assert len(lines) == 6  # 2 x (op + instant + storage)
        for line in lines:
            record = json.loads(line)
            assert {"trace_id", "span_id", "name", "category",
                    "start_ms", "end_ms", "duration_ms"} <= set(record)

    def test_empty_tracer_dumps_empty(self):
        tracer = Tracer()
        Simulator(seed=0, tracer=tracer)
        assert jsonl_dumps(tracer) == ""

    def test_identical_runs_byte_identical(self):
        assert jsonl_dumps(traced_run()) == jsonl_dumps(traced_run())

    def test_roundtrip_through_file(self, tmp_path):
        tracer = traced_run()
        path = tmp_path / "trace.jsonl"
        export_jsonl(tracer, path)
        assert load_trace(path) == tracer.to_dicts()


class TestChrome:
    def test_document_shape(self):
        tracer = traced_run()
        document = json.loads(chrome_dumps(tracer))
        assert document["displayTimeUnit"] == "ms"
        phases = [e["ph"] for e in document["traceEvents"]]
        assert set(phases) <= {"M", "X"}
        assert phases.count("X") == 6

    def test_thread_name_metadata_per_process(self):
        tracer = traced_run()
        document = json.loads(chrome_dumps(tracer))
        names = {e["args"]["name"] for e in document["traceEvents"]
                 if e["ph"] == "M"}
        assert {"worker-a", "worker-b"} <= names

    def test_timestamps_in_microseconds(self):
        tracer = traced_run()
        document = json.loads(chrome_dumps(tracer))
        storage = [e for e in document["traceEvents"]
                   if e["ph"] == "X" and e["name"] == "storage:read"]
        assert all(e["dur"] == pytest.approx(30_000.0) for e in storage)

    def test_distinct_processes_get_distinct_lanes(self):
        tracer = traced_run()
        document = json.loads(chrome_dumps(tracer))
        tids = {e["tid"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert len(tids) == 2

    def test_identical_runs_byte_identical(self):
        assert chrome_dumps(traced_run()) == chrome_dumps(traced_run())

    def test_roundtrip_preserves_span_tree(self, tmp_path):
        tracer = traced_run()
        path = tmp_path / "trace.json"
        export_chrome(tracer, path)
        spans = load_trace(path)
        original = tracer.to_dicts()
        assert len(spans) == len(original)
        for loaded, source in zip(spans, original):
            for key in ("trace_id", "span_id", "parent_id", "name",
                        "category", "attrs", "tid"):
                assert loaded[key] == source[key]
            assert loaded["start_ms"] == pytest.approx(source["start_ms"])
            assert loaded["duration_ms"] == pytest.approx(
                source["duration_ms"])


class TestLoadsTrace:
    def test_autodetects_jsonl(self):
        tracer = traced_run()
        assert loads_trace(jsonl_dumps(tracer)) == tracer.to_dicts()

    def test_autodetects_chrome(self):
        tracer = traced_run()
        spans = loads_trace(chrome_dumps(tracer))
        assert [s["span_id"] for s in spans] == [
            d["span_id"] for d in tracer.to_dicts()]

    def test_empty_text(self):
        assert loads_trace("") == []
        assert loads_trace("   \n") == []
