"""Unit tests for the Tracer / Span core."""

import pytest

from repro.sim import Simulator
from repro.trace import (
    INHERIT,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
)


@pytest.fixture
def tracer():
    return Tracer()


@pytest.fixture
def sim(tracer):
    return Simulator(seed=1, tracer=tracer)


class TestSpanTree:
    def test_root_span_starts_new_trace(self, sim, tracer):
        with tracer.span("a", "op", parent=None):
            pass
        with tracer.span("b", "op", parent=None):
            pass
        (a, b) = tracer.spans
        assert a.parent_id is None and b.parent_id is None
        assert a.trace_id != b.trace_id

    def test_nesting_links_parent_and_restores_context(self, sim, tracer):
        with tracer.span("outer", "op") as outer:
            assert tracer.current() == outer.context
            with tracer.span("inner", "agent") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert tracer.current() == inner.context
            assert tracer.current() == outer.context
        assert tracer.current() is None

    def test_span_times_come_from_sim_clock(self, sim, tracer):
        def proc(sim):
            with tracer.span("timed", "op"):
                yield sim.timeout(7.5)

        sim.spawn(proc(sim))
        sim.run()
        (span,) = tracer.spans
        assert span.start_ms == 0.0
        assert span.end_ms == 7.5
        assert span.duration_ms == 7.5

    def test_instant_does_not_shift_context(self, sim, tracer):
        with tracer.span("op", "op") as op:
            tracer.instant("dir:get", "directory", key="k")
            assert tracer.current() == op.context
        instant = next(s for s in tracer.spans if s.name == "dir:get")
        assert instant.duration_ms == 0.0
        assert instant.parent_id == op.span_id

    def test_explicit_parent_overrides_ambient(self, sim, tracer):
        with tracer.span("a", "op") as a:
            pass
        with tracer.span("b", "op"):
            child = tracer.span("c", "op", parent=a)
            child.end()
        c = next(s for s in tracer.spans if s.name == "c")
        assert c.parent_id == a.span_id
        assert c.trace_id == a.trace_id

    def test_open_spans_drain(self, sim, tracer):
        span = tracer.span("lingering", "op")
        assert tracer.open_spans() == [span]
        span.end()
        assert tracer.open_spans() == []

    def test_double_end_is_idempotent(self, sim, tracer):
        span = tracer.span("once", "op")
        span.end()
        span.end()
        assert len(tracer.spans) == 1

    def test_set_attaches_attribute(self, sim, tracer):
        with tracer.span("rpc", "rpc", dst="node1/svc") as span:
            span.set("status", "timeout")
        assert tracer.spans[0].attrs == {"dst": "node1/svc",
                                         "status": "timeout"}

    def test_span_ids_are_counters_not_hashes(self, sim, tracer):
        for _ in range(3):
            with tracer.span("s", "op", parent=None):
                pass
        assert [s.span_id for s in tracer.spans] == [1, 2, 3]
        assert [s.trace_id for s in tracer.spans] == [1, 2, 3]

    def test_resolve_rejects_garbage(self, sim, tracer):
        with pytest.raises(TypeError):
            tracer.resolve("not-a-context")

    def test_resolve_passthrough(self, sim, tracer):
        ctx = TraceContext(5, 9)
        assert tracer.resolve(ctx) is ctx
        assert tracer.resolve(None) is None
        assert tracer.resolve(INHERIT) is None  # nothing current yet


class TestProcessAmbientContext:
    def test_spawned_process_inherits_spawner_context(self, sim, tracer):
        seen = {}

        def child(sim):
            seen["ctx"] = tracer.current()
            return None
            yield  # pragma: no cover - generator marker

        def parent(sim):
            with tracer.span("op", "op") as op:
                seen["op"] = op.context
                sim.spawn(child(sim), daemon=True)
                yield sim.timeout(1.0)

        sim.spawn(parent(sim))
        sim.run()
        assert seen["ctx"] == seen["op"]

    def test_sibling_processes_keep_distinct_contexts(self, sim, tracer):
        order = []

        def worker(sim, label):
            with tracer.span(label, "op", parent=None) as span:
                order.append((label, span.trace_id))
                yield sim.timeout(1.0)
                assert tracer.current() == span.context

        sim.spawn(worker(sim, "w1"))
        sim.spawn(worker(sim, "w2"))
        sim.run()
        assert len({tid for _, tid in order}) == 2


class TestBinding:
    def test_span_before_bind_raises(self, tracer):
        with pytest.raises(RuntimeError):
            tracer.span("x")

    def test_rebinding_same_sim_ok(self, sim, tracer):
        assert tracer.bind(sim) is tracer

    def test_rebinding_other_sim_rejected(self, sim, tracer):
        with pytest.raises(ValueError):
            Simulator(seed=2, tracer=tracer)


class TestNullTracer:
    def test_simulator_defaults_to_null_tracer(self):
        sim = Simulator(seed=0)
        assert sim.tracer is NULL_TRACER
        assert not sim.tracer.active

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything", "op", key="k") as span:
            assert span is NULL_SPAN
            assert span.set("a", 1) is NULL_SPAN
        assert tracer.instant("e") is NULL_SPAN
        assert tracer.spans == []
        assert tracer.open_spans() == []
        assert tracer.to_dicts() == []
        assert tracer.current() is None
        assert tracer.resolve(INHERIT) is None


class TestExportOrdering:
    def test_to_dicts_sorted_by_span_id(self, sim, tracer):
        with tracer.span("outer", "op"):
            with tracer.span("inner", "agent"):
                pass
        # Closure order is inner-first; export order is span-id order.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert [d["name"] for d in tracer.to_dicts()] == ["outer", "inner"]

    def test_open_span_excluded_from_export(self, sim, tracer):
        tracer.span("open", "op")
        assert tracer.to_dicts() == []
