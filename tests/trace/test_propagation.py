"""Context propagation across RPC, timeout/retry paths, and full ops."""

import pytest

from repro.cluster import Cluster
from repro.config import LatencyModel, SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.net import Endpoint, Network, Reply, RpcTimeout
from repro.sim import Simulator
from repro.storage import DataItem
from repro.trace import Tracer


@pytest.fixture
def tracer():
    return Tracer()


@pytest.fixture
def sim(tracer):
    return Simulator(seed=7, tracer=tracer)


@pytest.fixture
def net(sim):
    return Network(sim, LatencyModel())


def echo_handler(endpoint, src, args):
    return Reply(args)
    yield  # pragma: no cover - generator marker


class TestRpcPropagation:
    def test_server_span_joins_client_trace(self, sim, net, tracer):
        server = Endpoint(net, "node1", "svc")
        server.register_handler("echo", echo_handler)
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            with tracer.span("op", "op", parent=None):
                yield from client.call("node1/svc", "echo", "x", timeout=500.0)

        sim.spawn(caller(sim))
        sim.run()
        by_name = {s.name: s for s in tracer.spans}
        op, rpc, serve = by_name["op"], by_name["rpc:echo"], by_name["serve:echo"]
        assert rpc.trace_id == op.trace_id
        assert rpc.parent_id == op.span_id
        assert serve.trace_id == op.trace_id
        assert serve.parent_id == rpc.span_id
        assert serve.attrs["src"] == "node0/svc"

    def test_notify_carries_context_to_handler(self, sim, net, tracer):
        seen = {}

        def sink(endpoint, src, args):
            seen["ctx"] = tracer.current()
            return None
            yield  # pragma: no cover - generator marker

        server = Endpoint(net, "node1", "svc")
        server.register_handler("drop", sink)
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            with tracer.span("op", "op", parent=None) as op:
                seen["op"] = op.context
                client.notify("node1/svc", "drop", "x")
                yield sim.timeout(50.0)

        sim.spawn(caller(sim))
        sim.run()
        # The handler runs inside its serve: span, which is a child of
        # the notifying operation — the notify carried the context over.
        assert seen["ctx"].trace_id == seen["op"].trace_id
        serve = next(s for s in tracer.spans if s.name == "serve:drop")
        assert serve.parent_id == seen["op"].span_id
        assert seen["ctx"] == serve.context

    def test_timeout_marks_span_and_restores_context(self, sim, net, tracer):
        client = Endpoint(net, "node0", "svc")
        outcome = {}

        def caller(sim):
            with tracer.span("op", "op", parent=None) as op:
                try:
                    yield from client.call("node9/gone", "echo", "x",
                                           timeout=100.0)
                except RpcTimeout:
                    outcome["ctx_after"] = tracer.current()
                    outcome["op"] = op.context

        sim.spawn(caller(sim))
        sim.run()
        # The failed rpc span closed and handed the context back to the op.
        assert outcome["ctx_after"] == outcome["op"]
        rpc = next(s for s in tracer.spans if s.name == "rpc:echo")
        assert rpc.attrs["status"] == "timeout"
        assert rpc.duration_ms == pytest.approx(100.0)
        assert tracer.open_spans() == []

    def test_retry_after_timeout_joins_same_trace(self, sim, net, tracer):
        server = Endpoint(net, "node1", "svc")
        server.register_handler("echo", echo_handler)
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            with tracer.span("op", "op", parent=None):
                try:
                    yield from client.call("node9/gone", "echo", "x",
                                           timeout=100.0)
                except RpcTimeout:
                    pass
                yield from client.call("node1/svc", "echo", "x", timeout=500.0)

        sim.spawn(caller(sim))
        sim.run()
        op = next(s for s in tracer.spans if s.name == "op")
        rpcs = [s for s in tracer.spans if s.name == "rpc:echo"]
        assert len(rpcs) == 2
        assert all(s.trace_id == op.trace_id for s in rpcs)
        assert all(s.parent_id == op.span_id for s in rpcs)


class TestConcordEndToEnd:
    @pytest.fixture
    def system(self, sim, tracer):
        cluster = Cluster(sim, SimConfig(num_nodes=4))
        coord = CoordinationService(cluster.network, cluster.config)
        system = ConcordSystem(cluster, app="t", coord=coord)
        cluster.storage.preload({"k": DataItem("v0", 256)})
        return system

    def drive(self, sim, op):
        return sim.run_until_complete(sim.spawn(op), limit=sim.now + 60_000.0)

    def test_no_leaked_spans_after_drain(self, sim, tracer, system):
        self.drive(sim, system.read("node1", "k"))
        self.drive(sim, system.read("node2", "k"))
        self.drive(sim, system.write("node3", "k", DataItem("v1", 256)))
        sim.run(until=sim.now + 10_000.0)
        assert tracer.open_spans() == []

    def test_op_spans_match_recorded_histograms_exactly(self, sim, tracer,
                                                        system):
        self.drive(sim, system.read("node1", "k"))
        self.drive(sim, system.read("node2", "k"))
        self.drive(sim, system.write("node3", "k", DataItem("v1", 256)))
        hist_total = sum(
            histogram.mean * histogram.count
            for histogram in system.stats.latency.values())
        op_total = sum(s.duration_ms for s in tracer.spans
                       if s.category == "op")
        assert op_total == pytest.approx(hist_total, abs=1e-9)

    def test_write_produces_one_invalidation_span_per_sharer(
            self, sim, tracer, system):
        self.drive(sim, system.read("node1", "k"))
        self.drive(sim, system.read("node2", "k"))
        write = system.write("node0", "k", DataItem("v1", 256))
        self.drive(sim, write)
        invalidations = [s for s in tracer.spans
                         if s.category == "invalidation"]
        # node1 and node2 held shared copies (the writer and home do not
        # need invalidation RPCs for themselves).
        sharers = {s.attrs["sharer"] for s in invalidations}
        assert len(invalidations) == len(sharers) >= 1
        write_op = next(s for s in tracer.spans
                        if s.category == "op" and s.name == "write")
        assert all(s.trace_id == write_op.trace_id for s in invalidations)

    def test_request_trace_covers_cross_node_work(self, sim, tracer, system):
        self.drive(sim, system.read("node1", "k"))
        read_op = next(s for s in tracer.spans if s.category == "op")
        members = [s for s in tracer.spans if s.trace_id == read_op.trace_id]
        categories = {s.category for s in members}
        assert {"op", "rpc", "rpc.server", "agent", "storage",
                "directory"} <= categories
