"""Tests for the software Apta system and its scheduler."""

import pytest

from repro.apta import AptaScheduler, AptaSystem, make_memory_tier
from repro.cluster import Cluster
from repro.config import LatencyModel, SimConfig
from repro.sim import Simulator
from repro.storage import DataItem, GlobalStorage


@pytest.fixture
def sim():
    return Simulator(seed=9)


@pytest.fixture
def cluster(sim):
    return Cluster(sim, SimConfig(num_nodes=3))


@pytest.fixture
def apta_mem(sim, cluster):
    """Mem variant: the memory tier is the terminal store."""
    return AptaSystem(cluster, make_memory_tier(cluster, 3), app="a", backing=None)


@pytest.fixture
def apta_az(sim, cluster):
    """Az variant: updates also propagate to global storage."""
    return AptaSystem(cluster, make_memory_tier(cluster, 3), app="b",
                      backing=cluster.storage)


def run(sim, gen, limit=60_000.0):
    return sim.run_until_complete(sim.spawn(gen), limit=sim.now + limit)


def V(tag, size=256):
    return DataItem(tag, size)


class TestAptaDataPath:
    def test_write_then_read(self, sim, cluster, apta_mem):
        run(sim, apta_mem.write("node0", "k", V("v1")))
        assert run(sim, apta_mem.read("node1", "k")) == V("v1")

    def test_local_hit_after_read(self, sim, cluster, apta_mem):
        run(sim, apta_mem.write("node0", "k", V("v1")))
        run(sim, apta_mem.read("node1", "k"))
        messages = cluster.network.stats.messages
        run(sim, apta_mem.read("node1", "k"))
        assert cluster.network.stats.messages == messages  # pure local hit

    def test_az_variant_writes_reach_storage(self, sim, cluster, apta_az):
        run(sim, apta_az.write("node0", "k", V("v1")))
        assert cluster.storage.peek("k").value == V("v1")

    def test_az_variant_reads_fall_back_to_storage(self, sim, cluster, apta_az):
        cluster.storage.preload({"cold": V("from-azure")})
        assert run(sim, apta_az.read("node2", "cold")) == V("from-azure")

    def test_mem_write_faster_than_az_write(self, sim, cluster, apta_mem, apta_az):
        t0 = sim.now
        run(sim, apta_mem.write("node0", "k", V("v")))
        mem_latency = sim.now - t0
        t1 = sim.now
        run(sim, apta_az.write("node0", "k", V("v")))
        az_latency = sim.now - t1
        assert az_latency > mem_latency + cluster.config.latency.storage_rtt * 0.8


class TestLazyInvalidation:
    def test_write_completes_before_sharers_invalidated(self, sim, cluster, apta_mem):
        run(sim, apta_mem.write("node0", "k", V("v1")))
        run(sim, apta_mem.read("node1", "k"))  # node1 becomes a sharer

        done = []

        def writer(sim):
            yield from apta_mem.write("node2", "k", V("v2"))
            done.append(sim.now)
            # At completion, node1 may still hold the stale copy: the
            # invalidation is lazy.
            entry = apta_mem.caches["node1"].cache.peek("k")
            done.append(entry.value if entry else None)

        sim.spawn(writer(sim))
        sim.run(until=sim.now + 50.0)
        assert done and done[1] == V("v1")  # stale right at completion
        sim.run(until=sim.now + 100.0)
        assert apta_mem.caches["node1"].cache.peek("k") is None  # eventually

    def test_stale_nodes_tracked_until_ack(self, sim, cluster, apta_mem):
        run(sim, apta_mem.write("node0", "k", V("v1")))
        run(sim, apta_mem.read("node1", "k"))

        observed = []

        def writer(sim):
            yield from apta_mem.write("node2", "k", V("v2"))
            observed.append(set(apta_mem.stale_nodes()))

        sim.spawn(writer(sim))
        sim.run(until=sim.now + 200.0)
        # Right when the write completed, the sharers (node0 wrote v1,
        # node1 read it) were still marked stale.
        assert observed == [{"node0", "node1"}]
        assert apta_mem.stale_nodes() == set()  # eventually acknowledged


class TestAptaScheduler:
    def test_scheduler_avoids_stale_nodes(self, sim, cluster, apta_mem):
        run(sim, apta_mem.write("node0", "k", V("v1")))
        run(sim, apta_mem.read("node1", "k"))
        # Make node1 stale by hand.
        home = apta_mem.memory[apta_mem.home_of("k")]
        home.stale_counts["node1"] = 1
        scheduler = AptaScheduler({"a": apta_mem})
        nodes = list(cluster.nodes.values())
        for _ in range(10):
            picked = scheduler.pick("a", "f", {}, nodes)
            assert picked.id != "node1"
        assert scheduler.unavailable_samples[-1] == 1

    def test_pre_pick_costs_a_memory_round_trip(self, sim, cluster, apta_mem):
        from repro.faas import FaasPlatform

        platform = FaasPlatform(cluster, scheduler=AptaScheduler({"a": apta_mem}))

        def probing(sim):
            yield from platform.scheduler.pre_pick(platform, "a", "f", {})
            return sim.now

        start = sim.now
        when = run(sim, probing(sim))
        assert when - start >= cluster.config.latency.internode_rtt * 0.8
        assert platform.scheduler.scheduling_queries == 1

    def test_all_stale_falls_back_to_any_node(self, sim, cluster, apta_mem):
        home = next(iter(apta_mem.memory.values()))
        for node_id in cluster.node_ids:
            home.stale_counts[node_id] = 1
        scheduler = AptaScheduler({"a": apta_mem})
        picked = scheduler.pick("a", "f", {}, list(cluster.nodes.values()))
        assert picked is not None
