"""Sampler: fixed-interval simulated-clock snapshotting."""

import pytest

from repro.sim import Simulator
from repro.telemetry import MetricsRegistry, Sampler


def make_sim():
    registry = MetricsRegistry()
    sim = Simulator(seed=1, metrics=registry)
    return sim, registry


def test_samples_on_the_simulated_grid():
    sim, registry = make_sim()
    gauge = registry.gauge("level", labelnames=())
    gauge.set_callback(lambda: sim.now)
    Sampler(sim, interval_ms=100.0).start()
    sim.run(until=450.0)
    (series,) = registry.store.all_series()
    assert [t for t, _v in series.points] == [0.0, 100.0, 200.0, 300.0, 400.0]
    # The callback evaluated at each instant: value == sample time.
    assert all(t == v for t, v in series.points)


def test_stop_ends_sampling():
    sim, registry = make_sim()
    registry.gauge("level", labelnames=()).set_callback(lambda: 1.0)
    sampler = Sampler(sim, interval_ms=100.0).start()
    sim.run(until=250.0)
    sampler.stop()
    sampler.stop()  # idempotent
    sim.run(until=1000.0)
    (series,) = registry.store.all_series()
    # One trailing wakeup may sample at the stop boundary, then silence.
    assert len(series.points) <= 4
    assert registry.samples == len(series.points)


def test_inactive_registry_is_a_noop():
    sim = Simulator(seed=1)  # NULL_REGISTRY
    sampler = Sampler(sim, interval_ms=50.0).start()
    assert sampler.running is False
    sim.run(until=500.0)
    assert sim.metrics.samples == 0


def test_start_is_idempotent():
    sim, registry = make_sim()
    registry.gauge("level", labelnames=()).set_callback(lambda: 1.0)
    sampler = Sampler(sim, interval_ms=100.0)
    sampler.start()
    sampler.start()
    sim.run(until=200.0)
    assert registry.samples == 3  # t = 0, 100, 200 — not doubled


def test_nonpositive_interval_rejected():
    sim, _registry = make_sim()
    with pytest.raises(ValueError):
        Sampler(sim, interval_ms=0.0)
    with pytest.raises(ValueError):
        Sampler(sim, interval_ms=-5.0)


def test_daemon_sampler_does_not_block_completion():
    sim, registry = make_sim()
    registry.gauge("level", labelnames=()).set_callback(lambda: 1.0)
    Sampler(sim, interval_ms=10.0).start()

    def work(sim):
        yield sim.timeout(35.0)
        return "done"

    outcome = sim.run_until_complete(sim.spawn(work(sim)), limit=1000.0)
    assert outcome == "done"
    assert registry.samples >= 4
