"""Exporters: canonical ordering, round-trips, byte determinism."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    csv_dumps,
    export_csv,
    export_jsonl,
    export_prometheus,
    jsonl_dumps,
    load_series,
    prometheus_dumps,
)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("ops_total", "Operations.",
                               labelnames=("node",))
    gauge = registry.gauge("queue_depth", "Run-queue depth.",
                           labelnames=("node",))
    # Register children in non-sorted order to exercise canonicalization.
    counter.labels(node="n1").inc(2.0)
    counter.labels(node="n0").inc(1.0)
    gauge.labels(node="n1").set(4.0)
    registry.sample(0.0)
    counter.labels(node="n0").inc(3.0)
    registry.sample(100.0)
    return registry


def test_jsonl_round_trip(tmp_path):
    registry = populated_registry()
    path = tmp_path / "out.jsonl"
    export_jsonl(registry, str(path))
    loaded = load_series(str(path))
    assert loaded == registry.to_dicts()


def test_csv_round_trip_preserves_points(tmp_path):
    registry = populated_registry()
    path = tmp_path / "out.csv"
    export_csv(registry, str(path))
    loaded = load_series(str(path))
    original = {(s["name"], tuple(sorted(s["labels"].items()))):
                [[float(t), float(v)] for t, v in s["points"]]
                for s in registry.to_dicts()}
    round_tripped = {(s["name"], tuple(sorted(s["labels"].items()))):
                     s["points"] for s in loaded}
    assert round_tripped == original


def test_canonical_series_order():
    registry = populated_registry()
    names = [series["name"] for series in registry.to_dicts()]
    assert names == sorted(names)
    # n0 before n1 despite n1 being registered first.
    ops = [s for s in registry.to_dicts() if s["name"] == "ops_total"]
    assert [s["labels"]["node"] for s in ops] == ["n0", "n1"]


def test_prometheus_format(tmp_path):
    registry = populated_registry()
    text = prometheus_dumps(registry)
    assert "# HELP ops_total Operations." in text
    assert "# TYPE ops_total counter" in text
    assert "# TYPE queue_depth gauge" in text
    assert 'ops_total{node="n0"} 4.0 100.0' in text
    # One TYPE line per family, not per series.
    assert text.count("# TYPE ops_total") == 1
    path = tmp_path / "out.prom"
    export_prometheus(registry, str(path))
    assert path.read_text() == text


def test_prometheus_is_export_only(tmp_path):
    registry = populated_registry()
    path = tmp_path / "out.prom"
    export_prometheus(registry, str(path))
    with pytest.raises(ValueError):
        load_series(str(path))


def test_empty_file_loads_empty(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert load_series(str(path)) == []


def test_dumps_accept_dict_lists():
    registry = populated_registry()
    dicts = registry.to_dicts()
    assert jsonl_dumps(dicts) == jsonl_dumps(registry)
    assert csv_dumps(dicts) == csv_dumps(registry)


def test_identical_runs_dump_identical_bytes():
    a, b = populated_registry(), populated_registry()
    assert jsonl_dumps(a) == jsonl_dumps(b)
    assert csv_dumps(a) == csv_dumps(b)
    assert prometheus_dumps(a) == prometheus_dumps(b)
