"""Registry semantics: labeling, kind discipline, null mode."""

import pytest

from repro.sim import Simulator
from repro.telemetry import (
    MetricError,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)


class TestLabeling:
    def test_label_values_keyed_in_declared_order(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops", labelnames=("node", "app"))
        counter.labels(app="a", node="n0").inc(3.0)
        # Same child regardless of kwarg order.
        assert counter.labels(node="n0", app="a").current() == 3.0

    def test_label_values_coerced_to_str(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", labelnames=("shard",))
        gauge.labels(shard=3).set(7.0)
        assert gauge.labels(shard="3").current() == 7.0

    def test_mismatched_label_set_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops", labelnames=("node",))
        with pytest.raises(MetricError):
            counter.labels(app="a")
        with pytest.raises(MetricError):
            counter.labels()

    def test_unlabeled_shorthands(self):
        registry = MetricsRegistry()
        registry.counter("total", labelnames=()).inc(2.0)
        registry.gauge("level", labelnames=()).set(5.0)
        registry.histogram("lat", labelnames=()).observe(4.0)
        registry.sample(0.0)
        values = {s.name: s.last() for s in registry.store.all_series()}
        assert values["total"] == 2.0
        assert values["level"] == 5.0
        assert values["lat_count"] == 1
        assert values["lat_sum"] == 4.0


class TestRegistration:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("ops", "help", labelnames=("node",))
        second = registry.counter("ops", "other help", labelnames=("node",))
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("ops", labelnames=())
        with pytest.raises(MetricError):
            registry.gauge("ops", labelnames=())

    def test_labelnames_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("ops", labelnames=("node",))
        with pytest.raises(MetricError):
            registry.counter("ops", labelnames=("node", "app"))

    def test_histogram_is_push_only(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", labelnames=())
        with pytest.raises(MetricError):
            histogram.set_callback(lambda: 1.0)

    def test_negative_counter_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("ops", labelnames=()).labels().inc(-1.0)


class TestSampling:
    def test_callback_overrides_pushed_value(self):
        registry = MetricsRegistry()
        state = {"v": 10.0}
        gauge = registry.gauge("level", labelnames=())
        child = gauge.labels()
        child.set(1.0)
        gauge.set_callback(lambda: state["v"])
        registry.sample(0.0)
        state["v"] = 20.0
        registry.sample(100.0)
        (series,) = registry.store.all_series()
        assert series.points == [(0.0, 10.0), (100.0, 20.0)]

    def test_sample_counts_and_series_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops", labelnames=("node",))
        counter.labels(node="n1").inc()
        counter.labels(node="n0").inc(2.0)
        registry.sample(0.0)
        registry.sample(50.0)
        assert registry.samples == 2
        series = registry.store.all_series()
        # First-touch order within the instrument, two points each.
        assert [s.labels for s in series] == [
            (("node", "n1"),), (("node", "n0"),)]
        assert all(len(s.points) == 2 for s in series)

    def test_bind_rejects_second_simulator(self):
        registry = MetricsRegistry()
        sim = Simulator(seed=1, metrics=registry)
        assert registry.sim is sim
        with pytest.raises(ValueError):
            Simulator(seed=2, metrics=registry)


class TestNullRegistry:
    def test_shared_null_registry_is_inert(self):
        assert NULL_REGISTRY.active is False
        counter = NULL_REGISTRY.counter("ops")
        counter.inc()
        counter.labels(node="n0").inc(5.0)
        child = NULL_REGISTRY.gauge("g").set_callback(lambda: 1.0)
        assert child.current() == 0.0
        NULL_REGISTRY.sample(0.0)
        assert NULL_REGISTRY.samples == 0
        assert NULL_REGISTRY.instruments() == []
        assert NULL_REGISTRY.to_dicts() == []

    def test_null_registry_rebinds_freely(self):
        registry = NullRegistry()
        assert registry.bind(object()) is registry
        assert registry.bind(object()) is registry

    def test_simulator_defaults_to_null(self):
        sim = Simulator(seed=3)
        assert sim.metrics.active is False
