"""End-to-end CLI smoke tests, byte-identical across PYTHONHASHSEEDs.

A tiny simulation exports a trace and a metrics timeline in a subprocess
pinned to one ``PYTHONHASHSEED``; then ``repro-metrics``, ``repro-trace``
and ``repro-analyze`` run (also as subprocesses) over the artifacts.
Every byte — exported files and CLI stdout — must match between hash
seeds 0 and 1, which is the strongest end-to-end statement of the
telemetry determinism contract.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

GENERATE = """\
from repro.session import Session
from repro.storage import DataItem

with Session(nodes=2, seed=7, scheme="concord",
             trace="trace.json", metrics="metrics.jsonl") as s:
    s.preload({f"k{i}": DataItem(f"v{i}", 128) for i in range(4)})
    for i in range(4):
        s.read("node0", f"k{i}")
        s.write("node1", f"k{i}", DataItem(f"w{i}", 128))
    s.advance(500.0)
    s.export_metrics("metrics.csv", fmt="csv")
    s.export_metrics("metrics.prom", fmt="prometheus")
"""


def run_cmd(args, cwd, hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, *args], cwd=cwd, env=env,
        capture_output=True, text=True, timeout=300,
    )


def generate_and_inspect(workdir: Path, hashseed: str) -> dict:
    """One full pipeline under ``hashseed``; returns every observed byte."""
    workdir.mkdir(parents=True, exist_ok=True)
    script = workdir / "generate.py"
    script.write_text(GENERATE)
    generated = run_cmd(["generate.py"], workdir, hashseed)
    assert generated.returncode == 0, generated.stderr

    outputs = {
        "metrics.jsonl": (workdir / "metrics.jsonl").read_text(),
        "metrics.csv": (workdir / "metrics.csv").read_text(),
        "metrics.prom": (workdir / "metrics.prom").read_text(),
        "trace.json": (workdir / "trace.json").read_text(),
    }
    clis = {
        "metrics-overview": ["-m", "repro.telemetry", "metrics.jsonl"],
        "metrics-anomalies": ["-m", "repro.telemetry", "metrics.jsonl",
                              "--anomalies", "--slo-latency-ms", "500"],
        "metrics-one": ["-m", "repro.telemetry", "metrics.jsonl",
                        "--metric", "cache_reads_total"],
        "metrics-json-from-csv": ["-m", "repro.telemetry", "metrics.csv",
                                  "--format", "json"],
        "trace-summary": ["-m", "repro.trace", "trace.json"],
    }
    for label, args in clis.items():
        completed = run_cmd(args, workdir, hashseed)
        assert completed.returncode == 0, (label, completed.stderr)
        assert completed.stdout, label
        outputs[label] = completed.stdout
    analyze = run_cmd(
        ["-m", "repro.analysis", "src/repro/telemetry", "--no-baseline"],
        REPO_ROOT, hashseed)
    assert analyze.returncode == 0, analyze.stdout + analyze.stderr
    outputs["analyze"] = analyze.stdout
    return outputs


@pytest.mark.slow
def test_cli_pipeline_byte_identical_across_hashseeds(tmp_path):
    seed0 = generate_and_inspect(tmp_path / "seed0", "0")
    seed1 = generate_and_inspect(tmp_path / "seed1", "1")
    assert set(seed0) == set(seed1)
    for label in seed0:
        assert seed0[label] == seed1[label], (
            f"{label} differs between PYTHONHASHSEED=0 and 1")
    # Sanity: the artifacts are non-trivial.
    assert seed0["metrics.jsonl"].count("\n") > 10
    assert "cache_reads_total" in seed0["metrics-overview"]
    assert "anomalies" in seed0["metrics-anomalies"]
    assert "0 error(s)" in seed0["analyze"]


@pytest.mark.slow
def test_metrics_cli_error_paths(tmp_path):
    missing = run_cmd(["-m", "repro.telemetry", "nope.jsonl"], tmp_path, "0")
    assert missing.returncode == 2
    bad = tmp_path / "bad.jsonl"
    bad.write_text("this is not a timeline\n")
    garbled = run_cmd(["-m", "repro.telemetry", "bad.jsonl"], tmp_path, "0")
    assert garbled.returncode == 2
    (tmp_path / "generate.py").write_text(GENERATE)
    generated = run_cmd(["generate.py"], tmp_path, "0")
    assert generated.returncode == 0, generated.stderr
    unknown = run_cmd(["-m", "repro.telemetry", "metrics.jsonl",
                       "--metric", "no_such_metric"], tmp_path, "0")
    assert unknown.returncode == 1
