"""Acceptance: byte-identical timelines and the write-burst anomaly.

The 4-node mixed-workload run is the ISSUE's acceptance scenario: with
``metrics=`` on, repeated runs must export byte-identical timelines (the
cross-``PYTHONHASHSEED`` half of that claim lives in the subprocess CLI
smoke tests).  The fig13 write-burst run must produce an invalidation
storm that the anomaly report pins to the injected simulated-time
window.
"""

import pytest

from repro.experiments.fig13_churn import WriteBurst, run_write_burst_timeline
from repro.experiments.runner import MixedRunConfig, run_mixed_workload
from repro.telemetry import detect_anomalies, jsonl_dumps


def mixed_config(**overrides) -> MixedRunConfig:
    base = dict(
        scheme="concord", num_nodes=4, cores_per_node=4,
        utilization=None, total_rps=40.0,
        duration_ms=1200.0, warmup_ms=400.0, drain_ms=400.0,
        seed=2024, metrics=True,
    )
    base.update(overrides)
    return MixedRunConfig(**base)


@pytest.mark.slow
class TestMixedRunTimelines:
    def test_repeated_runs_byte_identical(self):
        first = run_mixed_workload(mixed_config())
        second = run_mixed_workload(mixed_config())
        assert first.metrics is not None
        assert jsonl_dumps(first.metrics) == jsonl_dumps(second.metrics)

    def test_timeline_covers_all_layers(self):
        outcome = run_mixed_workload(mixed_config())
        names = {s.name for s in outcome.metrics.store.all_series()}
        for expected in (
            "node_cpu_utilization", "node_cpu_queue_length",
            "node_memory_in_use_bytes", "node_warm_containers",
            "net_messages_total", "rpc_inflight",
            "cache_reads_total", "cache_hit_ratio",
            "cache_occupancy_bytes", "cache_invalidations_sent_total",
            "directory_entries", "faas_requests_completed_total",
            "faas_request_latency_ms_count", "faas_scheduling_delay_ms_sum",
            "storage_reads_total", "storage_inflight_ops",
        ):
            assert expected in names, expected

    def test_metrics_off_leaves_no_series(self):
        outcome = run_mixed_workload(mixed_config(metrics=None))
        assert outcome.metrics is None

    def test_metrics_path_exports_jsonl(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        outcome = run_mixed_workload(mixed_config(metrics=str(path)))
        assert outcome.metrics is not None
        assert path.exists()
        assert path.read_text() == jsonl_dumps(outcome.metrics)


@pytest.mark.slow
class TestWriteBurstAnomaly:
    def test_storm_report_matches_injected_window(self):
        burst = WriteBurst(start_ms=2400.0, duration_ms=1500.0)
        registry, returned = run_write_burst_timeline(
            num_nodes=4, duration_ms=6000.0, churn_per_min=6, burst=burst)
        assert returned is burst
        storms = [a for a in detect_anomalies(registry.store.all_series())
                  if a.rule == "invalidation_storm"]
        assert storms, "injected write burst produced no storm anomaly"
        storm = storms[0]
        # The reported simulated-time window tracks the injection:
        # overlaps it, and does not wildly overshoot either edge.
        assert storm.start_ms < burst.end_ms
        assert storm.end_ms > burst.start_ms
        assert abs(storm.start_ms - burst.start_ms) <= 500.0
        assert abs(storm.end_ms - burst.end_ms) <= 500.0

    def test_no_burst_no_sustained_storm(self):
        # The organic workload can clip the low default threshold for an
        # interval or two; what it cannot do is sustain a storm window
        # anywhere near the injected burst's length.
        registry, _burst = run_write_burst_timeline(
            num_nodes=4, duration_ms=6000.0, churn_per_min=6,
            burst=WriteBurst(start_ms=0.0, duration_ms=0.0, writers=0))
        storms = [a for a in detect_anomalies(registry.store.all_series())
                  if a.rule == "invalidation_storm"]
        assert not [a for a in storms if a.end_ms - a.start_ms >= 500.0]

    def test_burst_runs_are_deterministic(self):
        def dump():
            registry, _burst = run_write_burst_timeline(
                num_nodes=4, duration_ms=4000.0, churn_per_min=6)
            return jsonl_dumps(registry)

        assert dump() == dump()
