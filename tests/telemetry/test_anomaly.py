"""Anomaly detectors over synthetic timelines.

Each detector gets a hand-built series with a known-bad window and must
report that window (in simulated milliseconds) — plus a healthy series
it must stay silent on.
"""

from repro.telemetry import (
    detect_anomalies,
    detect_cpu_queue_buildup,
    detect_hit_ratio_collapse,
    detect_invalidation_storm,
    detect_slo_latency,
)

INTERVAL = 100.0


def series(name, values, kind="counter", labels=None, start=0.0):
    return {
        "name": name, "kind": kind, "labels": labels or {}, "help": "",
        "points": [[start + i * INTERVAL, v] for i, v in enumerate(values)],
    }


def cumulative(deltas, initial=0.0):
    total = initial
    out = [total]
    for delta in deltas:
        total += delta
        out.append(total)
    return out


class TestInvalidationStorm:
    def test_flags_the_burst_window(self):
        # 1/interval baseline, then a 40/interval burst over 3 intervals.
        deltas = [1, 1, 1, 1, 40, 45, 40, 1, 1, 1]
        timeline = [series("cache_invalidations_sent_total",
                           cumulative(deltas), labels={"node": "n0"})]
        (storm,) = detect_invalidation_storm(timeline)
        assert storm.rule == "invalidation_storm"
        assert storm.start_ms == 4 * INTERVAL
        assert storm.end_ms == 7 * INTERVAL
        assert "125 invalidations" in storm.detail

    def test_sums_across_nodes(self):
        # Each node individually modest; the cluster-wide sum spikes.
        quiet = [1] * 10
        spike = [1, 1, 1, 1, 20, 20, 1, 1, 1, 1]
        timeline = [
            series("cache_invalidations_sent_total", cumulative(spike),
                   labels={"node": f"n{i}"})
            for i in range(3)
        ] + [series("cache_invalidations_sent_total", cumulative(quiet),
                    labels={"node": "n9"})]
        storms = detect_invalidation_storm(timeline)
        assert len(storms) == 1
        assert storms[0].start_ms == 4 * INTERVAL

    def test_quiet_timeline_is_clean(self):
        timeline = [series("cache_invalidations_sent_total",
                           cumulative([1] * 20))]
        assert detect_invalidation_storm(timeline) == []

    def test_single_hot_interval_below_min_samples(self):
        deltas = [1, 1, 1, 40, 1, 1, 1]
        timeline = [series("cache_invalidations_sent_total",
                           cumulative(deltas))]
        assert detect_invalidation_storm(timeline) == []


class TestCpuQueueBuildup:
    def test_flags_sustained_deep_queue(self):
        values = [0, 1, 6, 7, 8, 6, 5, 5, 1, 0]
        timeline = [series("node_cpu_queue_length", values, kind="gauge",
                           labels={"node": "node2"})]
        (buildup,) = detect_cpu_queue_buildup(timeline)
        assert buildup.start_ms == 2 * INTERVAL
        assert buildup.end_ms == 7 * INTERVAL
        assert buildup.labels == (("node", "node2"),)
        assert "peak depth 8" in buildup.detail

    def test_brief_spike_not_flagged(self):
        # Deep for only 2 samples (100 ms) — under min_duration_ms.
        values = [0, 0, 9, 9, 0, 0]
        timeline = [series("node_cpu_queue_length", values, kind="gauge",
                           labels={"node": "node0"})]
        assert detect_cpu_queue_buildup(timeline) == []

    def test_per_node_windows(self):
        deep = [6] * 10
        shallow = [1] * 10
        timeline = [
            series("node_cpu_queue_length", deep, kind="gauge",
                   labels={"node": "node1"}),
            series("node_cpu_queue_length", shallow, kind="gauge",
                   labels={"node": "node0"}),
        ]
        found = detect_cpu_queue_buildup(timeline)
        assert [dict(a.labels)["node"] for a in found] == ["node1"]


class TestHitRatioCollapse:
    def test_flags_collapse_window(self):
        reads = [20] * 12
        hits = [18, 18, 18, 18, 2, 1, 2, 18, 18, 18, 18, 18]
        labels = {"app": "SocNet", "scheme": "concord"}
        timeline = [
            series("cache_reads_total", cumulative(reads), labels=labels),
            series("cache_read_hits_total", cumulative(hits), labels=labels),
        ]
        (collapse,) = detect_hit_ratio_collapse(timeline)
        assert collapse.start_ms == 4 * INTERVAL
        assert collapse.end_ms == 7 * INTERVAL
        assert dict(collapse.labels) == labels

    def test_steady_ratio_is_clean(self):
        reads = [20] * 10
        hits = [15] * 10
        timeline = [
            series("cache_reads_total", cumulative(reads)),
            series("cache_read_hits_total", cumulative(hits)),
        ]
        assert detect_hit_ratio_collapse(timeline) == []

    def test_idle_intervals_ignored(self):
        # Low-traffic intervals (< min_reads) carry no ratio signal.
        reads = [20, 20, 2, 2, 20, 20, 20, 20, 20, 20]
        hits = [18, 18, 0, 0, 18, 18, 18, 18, 18, 18]
        timeline = [
            series("cache_reads_total", cumulative(reads)),
            series("cache_read_hits_total", cumulative(hits)),
        ]
        assert detect_hit_ratio_collapse(timeline) == []


class TestSloLatency:
    def test_flags_slo_violation_window(self):
        counts = [10] * 10
        # Windowed mean = sum_delta / count_delta; SLO 50 ms.
        sums = [200, 200, 900, 950, 900, 200, 200, 200, 200, 200]
        timeline = [
            series("faas_request_latency_ms_count", cumulative(counts),
                   labels={"app": "Chat"}),
            series("faas_request_latency_ms_sum", cumulative(sums),
                   labels={"app": "Chat"}),
        ]
        (violation,) = detect_slo_latency(timeline, slo_ms=50.0)
        assert violation.rule == "slo_latency"
        assert violation.start_ms == 2 * INTERVAL
        assert violation.end_ms == 5 * INTERVAL
        assert dict(violation.labels) == {"app": "Chat"}

    def test_within_slo_is_clean(self):
        counts = [10] * 10
        sums = [200] * 10
        timeline = [
            series("faas_request_latency_ms_count", cumulative(counts)),
            series("faas_request_latency_ms_sum", cumulative(sums)),
        ]
        assert detect_slo_latency(timeline, slo_ms=50.0) == []


class TestDetectAnomalies:
    def test_routes_kwargs_and_sorts_by_start(self):
        inv = [1, 1, 1, 1, 30, 30, 1, 1, 1, 1]
        queue = [6] * 10
        timeline = [
            series("cache_invalidations_sent_total", cumulative(inv)),
            series("node_cpu_queue_length", queue, kind="gauge",
                   labels={"node": "node0"}),
        ]
        found = detect_anomalies(timeline)
        assert [a.rule for a in found] == [
            "cpu_queue_buildup", "invalidation_storm"]
        assert found[0].start_ms <= found[1].start_ms
        # queue_min_depth routed to the queue detector only.
        relaxed = detect_anomalies(timeline, queue_min_depth=50.0)
        assert [a.rule for a in relaxed] == ["invalidation_storm"]

    def test_slo_detector_gated_on_threshold(self):
        counts = [10] * 10
        sums = [900] * 10
        timeline = [
            series("faas_request_latency_ms_count", cumulative(counts)),
            series("faas_request_latency_ms_sum", cumulative(sums)),
        ]
        assert detect_anomalies(timeline) == []
        assert [a.rule for a in
                detect_anomalies(timeline, slo_latency_ms=50.0)] == [
            "slo_latency"]
