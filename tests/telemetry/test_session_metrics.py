"""Session metrics= knob: wiring, export, zero-cost default."""

import pytest

from repro.session import Session
from repro.storage import DataItem
from repro.telemetry import MetricsRegistry, jsonl_dumps, load_series


def drive(session: Session) -> None:
    session.preload({f"k{i}": DataItem(f"v{i}", 128) for i in range(4)})
    for i in range(4):
        session.read("node0", f"k{i}")
        session.write("node1", f"k{i}", DataItem(f"w{i}", 128))
    session.advance(500.0)


def test_metrics_true_attaches_sampled_registry():
    with Session(nodes=2, seed=7, metrics=True) as session:
        drive(session)
        assert session.metrics is session.sim.metrics
        assert session.metrics.samples > 0
        names = {s.name for s in session.metrics.store.all_series()}
        # Every instrumented layer shows up on a plain concord session.
        for expected in ("node_cpu_utilization", "net_messages_total",
                         "cache_reads_total", "cache_occupancy_bytes",
                         "directory_entries", "storage_reads_total"):
            assert expected in names, expected


def test_metrics_path_exports_on_close(tmp_path):
    path = tmp_path / "timeline.jsonl"
    with Session(nodes=2, seed=7, metrics=str(path)) as session:
        drive(session)
    loaded = load_series(str(path))
    assert loaded and any(s["name"] == "cache_reads_total" for s in loaded)


def test_explicit_registry_instance_used_as_is():
    registry = MetricsRegistry()
    with Session(nodes=2, seed=7, metrics=registry) as session:
        drive(session)
        assert session.metrics is registry


def test_export_metrics_formats(tmp_path):
    with Session(nodes=2, seed=7, metrics=True) as session:
        drive(session)
        session.export_metrics(str(tmp_path / "m.jsonl"), fmt="jsonl")
        session.export_metrics(str(tmp_path / "m.csv"), fmt="csv")
        session.export_metrics(str(tmp_path / "m.prom"), fmt="prometheus")
        with pytest.raises(ValueError):
            session.export_metrics(str(tmp_path / "m.x"), fmt="xml")
    assert load_series(str(tmp_path / "m.jsonl"))
    assert load_series(str(tmp_path / "m.csv"))


def test_metrics_off_by_default():
    with Session(nodes=2, seed=7) as session:
        drive(session)
        assert session.metrics is None
        assert session.sim.metrics.active is False
        assert session.sampler.running is False
        with pytest.raises(RuntimeError):
            session.export_metrics("nowhere.jsonl")


def test_disabled_run_matches_enabled_run_results():
    # Telemetry must be observation-only: same seed, same simulated
    # outcome with metrics on and off.
    def final_state(**kwargs):
        with Session(nodes=2, seed=11, **kwargs) as session:
            drive(session)
            value = session.read("node0", "k2")
            return (session.sim.now, value)

    assert final_state() == final_state(metrics=True)


def test_repeated_sessions_export_identical_bytes():
    def dump():
        with Session(nodes=2, seed=7, metrics=True) as session:
            drive(session)
            return jsonl_dumps(session.metrics)

    assert dump() == dump()
