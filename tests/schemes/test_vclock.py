"""Vector-clock algebra: unit tests plus Hypothesis properties.

The property tests are gated on ``hypothesis`` being importable — the
repo must stay runnable in environments without it, so they skip (not
fail) when the library is absent.
"""

import pytest

from repro.schemes.vclock import ZERO, VectorClock

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dependency
    HAVE_HYPOTHESIS = False

NODES = ("n0", "n1", "n2", "n3")


class TestBasics:
    def test_zero_is_falsy_and_bottom(self):
        assert not ZERO
        clock = ZERO.increment("n0")
        assert clock.dominates(ZERO)
        assert ZERO.precedes(clock)
        assert not ZERO.precedes(ZERO)

    def test_zero_components_dropped(self):
        assert VectorClock({"n0": 0, "n1": 2}) == VectorClock({"n1": 2})
        assert len(VectorClock({"n0": 0})) == 0

    def test_increment_and_advance(self):
        clock = ZERO.increment("n0").increment("n0")
        assert clock.get("n0") == 2
        assert clock.advance("n0", 1) is clock  # no regression
        assert clock.advance("n0", 5).get("n0") == 5

    def test_items_sorted(self):
        clock = VectorClock({"b": 1, "a": 2, "c": 3})
        assert clock.items() == (("a", 2), ("b", 1), ("c", 3))
        assert clock.as_tuple() == clock.items()

    def test_compare_concurrent(self):
        left = ZERO.increment("n0")
        right = ZERO.increment("n1")
        assert left.concurrent(right)
        assert left.compare(right) is None
        assert left.merge(right).compare(left) == 1
        assert left.compare(left.merge(right)) == -1
        assert left.compare(left) == 0

    def test_hash_consistent_with_eq(self):
        assert hash(VectorClock({"a": 1})) == hash(
            VectorClock({"a": 1, "b": 0}))


if HAVE_HYPOTHESIS:
    clocks = st.builds(
        VectorClock,
        st.dictionaries(st.sampled_from(NODES),
                        st.integers(min_value=0, max_value=8)))

    @settings(max_examples=200, deadline=None)
    @given(clocks, clocks, clocks)
    def test_merge_is_associative(a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=200, deadline=None)
    @given(clocks, clocks)
    def test_merge_is_commutative_and_upper_bound(a, b):
        merged = a.merge(b)
        assert merged == b.merge(a)
        assert merged.dominates(a) and merged.dominates(b)

    @settings(max_examples=200, deadline=None)
    @given(clocks)
    def test_merge_is_idempotent(a):
        assert a.merge(a) == a
        assert a.merge(ZERO) == a

    @settings(max_examples=200, deadline=None)
    @given(clocks, clocks)
    def test_happens_before_is_antisymmetric(a, b):
        assert not (a.precedes(b) and b.precedes(a))
        # compare() agrees with the dominance predicates.
        verdict = a.compare(b)
        if verdict is None:
            assert a.concurrent(b)
        elif verdict == 0:
            assert a == b
        elif verdict == 1:
            assert b.precedes(a)
        else:
            assert a.precedes(b)

    @settings(max_examples=200, deadline=None)
    @given(clocks, clocks, clocks)
    def test_dominance_is_transitive(a, b, c):
        if a.dominates(b) and b.dominates(c):
            assert a.dominates(c)
else:  # pragma: no cover - optional dependency
    @pytest.mark.skip(reason="hypothesis not installed")
    def test_vclock_properties():
        pass
