"""The scheme registry: lookup, construction, scheduler selection."""

import pytest

from repro.apta import AptaScheduler, AptaSystem
from repro.caching import DirectStorage, FaastSystem, OfcSystem
from repro.cluster import Cluster
from repro.config import MB, SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.faas import CasScheduler, LocalityScheduler
from repro.schemes import (
    UnknownSchemeError,
    build_scheme,
    build_scheme_map,
    make_scheduler,
    register_scheme,
    registered_schemes,
    scheme_spec,
)
from repro.sim import Simulator

APPS = ("alpha", "beta")


@pytest.fixture
def cluster():
    sim = Simulator(seed=11)
    return Cluster(sim, SimConfig(num_nodes=4))


@pytest.fixture
def coord(cluster):
    return CoordinationService(cluster.network, cluster.config)


class TestLookup:
    def test_all_paper_schemes_registered(self):
        names = set(registered_schemes())
        assert {"nocache", "ofc", "faast", "concord", "concord-nocas",
                "concord-mem", "apta-az", "apta-mem"} <= names

    def test_unknown_scheme_lists_alternatives(self):
        with pytest.raises(UnknownSchemeError) as excinfo:
            scheme_spec("no-such-scheme")
        assert "concord" in str(excinfo.value)

    def test_unknown_scheme_error_is_value_error(self):
        assert issubclass(UnknownSchemeError, ValueError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scheme("concord")(lambda *a, **k: None)


class TestBuildScheme:
    def test_builds_each_scheme_type(self, cluster, coord):
        assert isinstance(
            build_scheme("nocache", cluster), DirectStorage)
        assert isinstance(
            build_scheme("ofc", cluster), OfcSystem)
        assert isinstance(
            build_scheme("faast", cluster, app="alpha"), FaastSystem)
        assert isinstance(
            build_scheme("concord", cluster, coord, app="alpha"),
            ConcordSystem)
        assert isinstance(
            build_scheme("apta-az", cluster, app="alpha"), AptaSystem)

    def test_concord_capacity_override(self, cluster, coord):
        system = build_scheme("concord", cluster, coord, app="a",
                              capacity=2 * MB)
        agent = next(iter(system.agents.values()))
        assert agent.cache.capacity_bytes == 2 * MB

    def test_concord_mem_prepare_builds_memory_tier(self, cluster, coord):
        system = build_scheme("concord-mem", cluster, coord, app="a")
        assert system.storage.name == "memtier"
        assert system.storage is not cluster.storage

    def test_extra_config_keys_ignored(self, cluster, coord):
        # The runner passes one flat config dict to whichever scheme is
        # selected; keys for other schemes must not break a builder.
        system = build_scheme("nocache", cluster, coord,
                              read_only_annotations=True,
                              ofc_shared_capacity=MB)
        assert isinstance(system, DirectStorage)


class TestBuildSchemeMap:
    def test_per_app_schemes_are_distinct(self, cluster, coord):
        schemes = build_scheme_map("concord", cluster, coord, APPS)
        assert set(schemes) == set(APPS)
        assert schemes["alpha"] is not schemes["beta"]
        assert schemes["alpha"].app == "alpha"

    def test_shared_scheme_is_one_instance(self, cluster, coord):
        schemes = build_scheme_map("ofc", cluster, coord, APPS)
        assert schemes["alpha"] is schemes["beta"]

    def test_prepare_runs_once_for_the_whole_map(self, cluster, coord):
        schemes = build_scheme_map("concord-mem", cluster, coord, APPS)
        assert schemes["alpha"].storage is schemes["beta"].storage


class TestMakeScheduler:
    def test_scheduler_kinds(self, cluster, coord):
        assert isinstance(make_scheduler("concord", {}), CasScheduler)
        assert isinstance(make_scheduler("concord-mem", {}), CasScheduler)
        assert isinstance(
            make_scheduler("concord-nocas", {}), LocalityScheduler)
        assert isinstance(make_scheduler("nocache", {}), LocalityScheduler)
        schemes = build_scheme_map("apta-az", cluster, coord, APPS)
        assert isinstance(make_scheduler("apta-az", schemes), AptaScheduler)
