"""Behavioral tests for the scheme zoo (WT / WB / TTL / causal)."""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dependency
    HAVE_HYPOTHESIS = False

from repro.caching import AccessContext
from repro.cluster import Cluster
from repro.config import SimConfig
from repro.obs import FlightRecorder
from repro.obs.events import CACHE_FLUSH_LOST, CAUSAL_MIGRATE
from repro.schemes import available, build_scheme
from repro.sim import Simulator
from repro.storage import DataItem
from repro.verify import check_scheme_invariants


@pytest.fixture
def recorder():
    return FlightRecorder()


@pytest.fixture
def sim(recorder):
    return Simulator(seed=7, obs=recorder)


@pytest.fixture
def cluster(sim):
    return Cluster(sim, SimConfig(num_nodes=4))


def run(sim, gen):
    return sim.run_until_complete(sim.spawn(gen), limit=sim.now + 60_000.0)


def settle(sim, ms=200.0):
    """Let in-flight notifications (invalidations, replication) land."""
    sim.run(until=sim.now + ms)


def item(text, size=64):
    return DataItem(text, size_bytes=size)


class TestCatalogue:
    def test_zoo_schemes_registered_with_descriptions(self):
        catalogue = dict(available())
        for name in ("write-through", "write-behind",
                     "read-through-ttl", "causal"):
            assert name in catalogue
            assert catalogue[name]  # human-readable description

    def test_consistency_levels_declared(self, cluster):
        expected = {"write-through": "eventual",
                    "write-behind": "eventual",
                    "read-through-ttl": "bounded-staleness",
                    "causal": "causal"}
        for name, level in expected.items():
            assert build_scheme(name, cluster).consistency == level


class TestWriteThrough:
    def test_write_is_synchronously_durable(self, sim, cluster):
        wt = build_scheme("write-through", cluster)
        run(sim, wt.write("node0", "k", item("v1")))
        assert cluster.storage.peek("k").value == item("v1")

    def test_peer_copy_invalidated(self, sim, cluster):
        wt = build_scheme("write-through", cluster)
        cluster.storage.preload({"k": item("v1")})
        run(sim, wt.read("node1", "k"))
        assert "k" in wt.instances["node1"].cache
        run(sim, wt.write("node0", "k", item("v2")))
        settle(sim)
        assert "k" not in wt.instances["node1"].cache
        assert run(sim, wt.read("node1", "k")) == item("v2")

    def test_invariants_clean(self, sim, cluster):
        wt = build_scheme("write-through", cluster)
        run(sim, wt.write("node0", "k", item("v1")))
        settle(sim)
        assert check_scheme_invariants(wt, cluster) == []


class TestWriteBehind:
    def test_ack_before_durability_then_flush(self, sim, cluster):
        wb = build_scheme("write-behind", cluster)
        run(sim, wb.write("node0", "k", item("v1")))
        # Acked from the dirty buffer; storage has not seen the write.
        assert cluster.storage.peek("k") is None
        assert wb.pending("node0") == 1
        settle(sim, wb.flush_interval_ms * 4)
        assert cluster.storage.peek("k").value == item("v1")
        assert wb.pending() == 0
        assert wb.writes_flushed == 1

    def test_coalescing_keeps_one_slot(self, sim, cluster):
        wb = build_scheme("write-behind", cluster,
                          wb_flush_interval_ms=10_000.0)
        run(sim, wb.write("node0", "k", item("v1")))
        run(sim, wb.write("node0", "k", item("v2")))
        assert wb.pending("node0") == 1
        assert wb.writes_enqueued == 2
        assert wb.writes_coalesced == 1
        assert check_scheme_invariants(wb, cluster) == []

    def test_buffer_bound_holds_under_backpressure(self, sim, cluster):
        wb = build_scheme("write-behind", cluster, wb_buffer_entries=4,
                          wb_flush_interval_ms=10_000.0)

        def writer():
            for index in range(16):
                yield from wb.write("node0", f"k{index}", item("v"))
                assert wb.pending("node0") <= wb.buffer_entries

        run(sim, writer())
        assert wb.backpressure_stalls > 0
        assert check_scheme_invariants(wb, cluster) == []

    def test_per_key_flush_preserves_write_order(self, sim, cluster):
        wb = build_scheme("write-behind", cluster)
        commits = []
        cluster.storage.add_write_listener(
            lambda key, value, version, writer: commits.append(
                (key, value, version)))
        run(sim, wb.write("node0", "k", item("v1")))
        settle(sim, wb.flush_interval_ms * 4)
        run(sim, wb.write("node0", "k", item("v2")))
        settle(sim, wb.flush_interval_ms * 4)
        assert [value for _k, value, _v in commits] == [item("v1"),
                                                        item("v2")]
        versions = [version for _k, _value, version in commits]
        assert versions == sorted(versions)
        assert cluster.storage.peek("k").value == item("v2")

    def test_crash_loses_and_accounts_dirty_entries(self, sim, cluster,
                                                    recorder):
        wb = build_scheme("write-behind", cluster,
                          wb_flush_interval_ms=10_000.0)
        run(sim, wb.write("node0", "a", item("v1")))
        run(sim, wb.write("node0", "b", item("v2")))
        cluster.crash_node("node0")
        assert wb.writes_lost == 2
        assert cluster.storage.peek("a") is None
        lost = [e for e in recorder.events()
                if e.type == CACHE_FLUSH_LOST]
        assert {e.key for e in lost} == {"a", "b"}
        # enqueued == flushed + lost + coalesced + pending still holds.
        assert check_scheme_invariants(wb, cluster) == []


class TestReadThroughTtl:
    def test_stale_within_ttl_fresh_after(self, sim, cluster):
        ttl = build_scheme("read-through-ttl", cluster, ttl_ms=100.0)
        cluster.storage.preload({"k": item("v1")})
        assert run(sim, ttl.read("node0", "k")) == item("v1")
        run(sim, cluster.storage.write("k", item("v2"), writer="ext"))
        # Within the lease: the stale copy is still legal to serve.
        assert run(sim, ttl.read("node0", "k")) == item("v1")
        settle(sim, 150.0)
        assert run(sim, ttl.read("node0", "k")) == item("v2")
        assert ttl.ttl_expired == 1
        assert check_scheme_invariants(ttl, cluster) == []

    def test_write_deletes_local_copy(self, sim, cluster):
        ttl = build_scheme("read-through-ttl", cluster)
        cluster.storage.preload({"k": item("v1")})
        run(sim, ttl.read("node0", "k"))
        run(sim, ttl.write("node0", "k", item("v2")))
        assert "k" not in ttl.instances["node0"].cache
        assert run(sim, ttl.read("node0", "k")) == item("v2")

    def test_rejects_nonpositive_ttl(self, cluster):
        with pytest.raises(ValueError):
            build_scheme("read-through-ttl", cluster, ttl_ms=0.0)


class TestCausal:
    def test_read_your_writes_across_migration(self, sim, cluster,
                                               recorder):
        causal = build_scheme("causal", cluster)
        ctx = AccessContext(function="fn")
        run(sim, causal.write("node0", "k", item("v1"), ctx))
        # Same session, different node: the client migrated.
        assert run(sim, causal.read("node2", "k", ctx)) == item("v1")
        assert causal.migrations == 1
        assert any(e.type == CAUSAL_MIGRATE for e in recorder.events())
        assert check_scheme_invariants(causal, cluster) == []

    def test_sessions_are_per_function(self, sim, cluster):
        causal = build_scheme("causal", cluster)
        run(sim, causal.write("node0", "k", item("v1"),
                              AccessContext(function="a")))
        run(sim, causal.read("node1", "k", AccessContext(function="b")))
        assert causal.migrations == 0
        assert set(causal.sessions) == {"a", "b"}

    def test_dead_origin_falls_back_to_storage(self, sim, cluster):
        causal = build_scheme("causal", cluster)
        ctx = AccessContext(function="fn")
        run(sim, causal.write("node0", "k", item("v1"), ctx))
        cluster.crash_node("node0")
        settle(sim)  # drain in-flight replication first
        # node1 forgets everything it applied (as if it restarted); the
        # pull to the dead origin times out and the durable write is
        # served from storage.
        causal._on_crash("node1")  # force the vc gap deterministically
        assert run(sim, causal.read("node1", "k", ctx)) == item("v1")
        assert causal.syncs >= 1
        assert causal.sync_failures >= 1
        assert check_scheme_invariants(causal, cluster) == []

    def test_restart_keeps_epoch_component(self, sim, cluster):
        causal = build_scheme("causal", cluster)
        ctx = AccessContext(function="fn")
        run(sim, causal.write("node0", "k", item("v1"), ctx))
        seq = causal.write_seq["node0"]
        cluster.crash_node("node0")
        cluster.restart_node("node0")
        run(sim, causal.restart_instance("node0"))
        assert causal.write_seq["node0"] == seq
        assert causal.instances["node0"].applied_vc.get("node0") == seq

    def test_history_feeds_session_checker(self, sim, cluster):
        causal = build_scheme("causal", cluster)
        ctx = AccessContext(function="fn")
        run(sim, causal.write("node0", "k", item("v1"), ctx))
        run(sim, causal.read("node1", "k", ctx))
        ops = [(op.op, op.key) for op in causal.history]
        assert ops == [("w", "k"), ("r", "k")]
        assert causal.verify_invariants() == []


if HAVE_HYPOTHESIS:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3),
                    min_size=1, max_size=24))
    def test_wb_buffer_bound_and_flush_order(key_indices):
        """Property: the dirty buffer never exceeds its bound, and after
        a full drain storage holds each key's last-written value with
        monotonically increasing per-key versions."""
        sim = Simulator(seed=3)
        cluster = Cluster(sim, SimConfig(num_nodes=2))
        wb = build_scheme("write-behind", cluster, wb_buffer_entries=2,
                          wb_flush_interval_ms=25.0)
        commits = []
        cluster.storage.add_write_listener(
            lambda key, value, version, writer: commits.append(
                (key, value, version)))
        last = {}

        def writer():
            for index, key_index in enumerate(key_indices):
                key = f"k{key_index}"
                value = item(f"v{index}")
                last[key] = value
                yield from wb.write("node0", key, value)
                assert wb.pending("node0") <= wb.buffer_entries

        sim.run_until_complete(sim.spawn(writer()),
                               limit=sim.now + 60_000.0)
        sim.run(until=sim.now + 25.0 * (len(key_indices) + 4))
        assert wb.pending() == 0
        assert check_scheme_invariants(wb, cluster) == []
        for key, value in last.items():
            assert cluster.storage.peek(key).value == value
        per_key_versions = {}
        for key, _value, version in commits:
            per_key_versions.setdefault(key, []).append(version)
        for versions in per_key_versions.values():
            assert versions == sorted(versions)
