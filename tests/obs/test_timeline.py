"""merge_timeline: ordering, window filtering, counts, renderers."""

from repro.obs.events import CACHE_INSTALL, FAULT_INJECT
from repro.obs.timeline import merge_timeline, render_html, render_text


def _event(seq, t, etype, node="n0", key="k", trace=0, span=0, tick=0,
           **attrs):
    return {"seq": seq, "t": t, "type": etype, "node": node, "key": key,
            "trace": trace, "span": span, "tick": tick, "attrs": attrs}


def _span(span_id, start, end, name="read", trace_id=1, **attrs):
    return {"span_id": span_id, "trace_id": trace_id, "name": name,
            "category": "op", "start_ms": start, "end_ms": end,
            "parent_id": None, "attrs": attrs}


def _series(points, name="m"):
    return {"name": name, "labels": {}, "points": points}


EVENTS = [
    _event(1, 10.0, CACHE_INSTALL, state="S"),
    _event(2, 50.0, FAULT_INJECT, node="", key="", kind="NodeCrash"),
    _event(3, 90.0, CACHE_INSTALL, state="E"),
]
SPANS = [_span(7, 5.0, 60.0), _span(8, 70.0, 80.0)]
SERIES = [_series([[10.0, 1.0], [50.0, 2.0]]),
          _series([[50.0, 4.0]], name="m2")]


class TestMerge:
    def test_rows_ordered_by_time_then_source(self):
        timeline = merge_timeline(EVENTS, spans=SPANS, series=SERIES)
        order = [(row["t"], row["source"]) for row in timeline["rows"]]
        assert order == sorted(
            order, key=lambda pair: (pair[0],
                                     {"metric": 0, "span": 1,
                                      "event": 2}[pair[1]]))
        # Same instant: the metric tick precedes the event it stamped.
        at_10 = [row["source"] for row in timeline["rows"]
                 if row["t"] == 10.0]
        assert at_10 == ["metric", "event"]

    def test_counts(self):
        timeline = merge_timeline(EVENTS, spans=SPANS, series=SERIES)
        assert timeline["counts"] == {"events": 3, "spans": 2, "ticks": 2}

    def test_metric_instants_deduplicate_across_series(self):
        timeline = merge_timeline([], series=SERIES)
        metric_rows = [row for row in timeline["rows"]
                       if row["source"] == "metric"]
        assert [row["t"] for row in metric_rows] == [10.0, 50.0]
        assert [row["tick"] for row in metric_rows] == [1, 2]
        assert [row["points"] for row in metric_rows] == [1, 2]

    def test_window_points_inside_spans_overlapping(self):
        timeline = merge_timeline(EVENTS, spans=SPANS, series=SERIES,
                                  since=40.0, until=65.0)
        assert timeline["window"] == [40.0, 65.0]
        events = [row["seq"] for row in timeline["rows"]
                  if row["source"] == "event"]
        assert events == [2]
        # Span 7 overlaps [40, 65] even though it starts at 5.0.
        spans = [row["seq"] for row in timeline["rows"]
                 if row["source"] == "span"]
        assert spans == [7]
        ticks = [row["t"] for row in timeline["rows"]
                 if row["source"] == "metric"]
        assert ticks == [50.0]

    def test_empty_inputs(self):
        timeline = merge_timeline([])
        assert timeline["rows"] == []
        assert timeline["counts"] == {"events": 0, "spans": 0, "ticks": 0}


class TestRenderers:
    def test_text_has_header_and_one_line_per_row(self):
        timeline = merge_timeline(EVENTS, spans=SPANS, series=SERIES)
        text = render_text(timeline, title="tl")
        lines = text.splitlines()
        assert lines[0].startswith(
            "tl: window=[start, end]ms events=3 spans=2 metric_ticks=2")
        assert len(lines) == 2 + len(timeline["rows"])
        assert any("fault.inject" in line and "kind=NodeCrash" in line
                   for line in lines)

    def test_text_window_bounds_in_header(self):
        timeline = merge_timeline(EVENTS, since=40.0, until=65.0)
        assert "window=[40.000, 65.000]ms" in render_text(timeline)

    def test_html_is_self_contained_table(self):
        timeline = merge_timeline(EVENTS, spans=SPANS, series=SERIES)
        html = render_html(timeline, title="t<l")
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</table></body></html>\n")
        assert "t&lt;l" in html  # title is escaped
        assert html.count('<tr class="') == len(timeline["rows"])

    def test_event_attrs_render_sorted(self):
        timeline = merge_timeline(
            [_event(1, 1.0, CACHE_INSTALL, z=1, a=2)])
        assert "a=2 z=1" in render_text(timeline)
