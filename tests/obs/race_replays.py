"""Replay the three pre-fix PR 4 races through a real FlightRecorder.

Each builder drives a real Simulator + FlightRecorder through the event
sequence the corresponding race produced *before* its fix landed, ending
with the coherence-checker violation it caused.  The checked-in JSONL
fixtures and golden explain transcripts under ``fixtures/`` are
generated from these builders (byte-identical on every run — that is
itself asserted), so ``repro-inspect explain`` is pinned against the
exact causal chains the races leave behind:

- ``e_write_clobber``: the direct-to-storage E write committed the
  in-place cache update *before* the storage ack, so a concurrent
  writer's newer version was overwritten with an older one.
- ``write_reply_clobber``: the home-write reply installed its payload
  unconditionally, clobbering a newer entry that had landed in between.
- ``barred_install``: a read install landed while the recovery barrier
  for a failed home was raised — after the eviction sweep, so no
  directory tracked the new copy.
"""

from repro.obs import FlightRecorder
from repro.obs.events import (
    BARRIER_LIFT,
    BARRIER_RAISE,
    CACHE_INSTALL,
    CACHE_UPDATE,
    DIR_EXCLUSIVE,
    DIR_SHARER,
    VERIFY_VIOLATION,
)
from repro.sim import Simulator

#: The key every race fixture revolves around.
KEY = "user:42"


def _record(steps) -> FlightRecorder:
    """Emit ``(delay_ms, type, node, key, attrs)`` steps on a real sim."""
    recorder = FlightRecorder()
    sim = Simulator(seed=0, obs=recorder)

    def script(sim):
        obs = sim.obs
        for delay_ms, etype, node, key, attrs in steps:
            if delay_ms:
                yield sim.timeout(delay_ms)
            obs.emit(etype, node=node, key=key, **attrs)

    sim.run_until_complete(sim.spawn(script(sim)))
    return recorder


def e_write_clobber() -> FlightRecorder:
    """In-place E update without the storage-version compare."""
    return _record([
        (1.0, CACHE_INSTALL, "node1", KEY,
         {"state": "E", "version": 2, "src": "rfo"}),
        (0.5, DIR_EXCLUSIVE, "node0", KEY, {"owner": "node1"}),
        # The racing E write read storage v1 before the other writer's
        # v2 commit, then updated the cache unconditionally.
        (2.0, CACHE_UPDATE, "node1", KEY, {"version": 1, "prev": 2}),
        (1.5, VERIFY_VIOLATION, "node1", KEY,
         {"detail": "node1: stale copy of 'user:42' "
                    "(cached 'v1' != stored 'v2')"}),
    ])


def write_reply_clobber() -> FlightRecorder:
    """Home-write reply installed over a newer entry."""
    return _record([
        (1.0, CACHE_INSTALL, "node2", KEY,
         {"state": "S", "version": 3, "src": "read"}),
        (0.5, DIR_SHARER, "node0", KEY, {"sharer": "node2", "state": "S",
                                         "sharers": 1}),
        # A slow home-write reply from before v3 finally arrives and
        # installs its stale payload unconditionally.
        (2.5, CACHE_INSTALL, "node2", KEY,
         {"state": "S", "version": 2, "src": "write_reply"}),
        (1.0, VERIFY_VIOLATION, "node2", KEY,
         {"detail": "node2: stale copy of 'user:42' "
                    "(cached 'v2' != stored 'v3')"}),
    ])


def barred_install() -> FlightRecorder:
    """Read install while the recovery barrier was raised."""
    return _record([
        (1.0, BARRIER_RAISE, "node1", "", {"member": "node3"}),
        # The in-flight read misses the _key_barred guard and installs
        # after the recovery eviction sweep has already visited node2.
        (0.5, CACHE_INSTALL, "node2", KEY,
         {"state": "S", "version": 0, "src": "read"}),
        (1.5, BARRIER_LIFT, "node1", "", {"member": "node3"}),
        (1.0, VERIFY_VIOLATION, "node2", KEY,
         {"detail": "node2: caches 'user:42' but no directory "
                    "tracks it"}),
    ])


#: fixture name -> (builder, the race id explain must diagnose).
RACES = {
    "e_write_clobber": (e_write_clobber, "e-write-clobber"),
    "write_reply_clobber": (write_reply_clobber, "write-reply-clobber"),
    "barred_install": (barred_install, "barred-install"),
}
