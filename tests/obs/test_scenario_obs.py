"""Fault scenarios with obs=: fingerprint neutrality and auto-dump."""

import pytest

from repro.faults import FaultPlan, run_fault_scenario
from repro.obs import load_events, loads_events
from repro.obs.events import FAULT_INJECT

NODES = [f"node{i}" for i in range(4)]
DURATION_MS = 2500.0
RPS = 16.0
HORIZON_MS = 1500.0
SEED = 21


def _plan():
    return FaultPlan.random(
        seed=SEED, node_ids=NODES, horizon_ms=HORIZON_MS,
        crashes=1, restart=True, drops=1, delays=0, brownouts=0,
    )


def _run(obs):
    return run_fault_scenario(
        _plan(), seed=SEED, num_nodes=len(NODES),
        duration_ms=DURATION_MS, rps=RPS, obs=obs,
    )


@pytest.fixture(scope="module")
def obs_on():
    return _run(obs=True)


@pytest.fixture(scope="module")
def obs_off():
    return _run(obs=None)


class TestFingerprintNeutrality:
    def test_recorder_does_not_perturb_the_run(self, obs_on, obs_off):
        # The recorder is purely passive: same plan, same seed, same
        # fingerprint — counters, telemetry bytes, violations — with and
        # without it attached.
        assert obs_on.fingerprint() == obs_off.fingerprint()

    def test_obs_jsonl_only_on_request(self, obs_on, obs_off):
        assert obs_off.obs_jsonl == ""
        assert obs_on.obs_jsonl != ""


class TestRecording:
    def test_obs_jsonl_parses_and_covers_the_faults(self, obs_on):
        events = loads_events(obs_on.obs_jsonl)
        assert events
        injected = [e for e in events if e["type"] == FAULT_INJECT]
        assert len(injected) == len(obs_on.applied)
        kinds = [e["attrs"]["kind"] for e in injected]
        assert [kind for _t, kind, _detail in obs_on.applied] == kinds

    def test_events_time_ordered(self, obs_on):
        events = loads_events(obs_on.obs_jsonl)
        stamps = [(e["t"], e["seq"]) for e in events]
        assert stamps == sorted(stamps)

    def test_replay_is_byte_identical(self, obs_on):
        assert _run(obs=True).obs_jsonl == obs_on.obs_jsonl


class TestAutoDump:
    def test_dump_path_written_at_first_fault(self, tmp_path, obs_on):
        target = tmp_path / "flight.jsonl"
        outcome = _run(obs=str(target))
        assert outcome.fingerprint() == obs_on.fingerprint()
        assert target.exists()
        # The on-disk dump is the final autodump: a prefix of the full
        # recording, ending at a dump-trigger event.
        dumped = load_events(target)
        assert dumped and dumped[-1]["type"] == FAULT_INJECT
        full = loads_events(outcome.obs_jsonl)
        assert dumped == full[:len(dumped)]
