"""Self-profiling: profiled run equivalence, attribution, wheel gauges."""

import pytest

from repro.obs.selfprof import SelfProfiler, install_wheel_gauges, \
    render_profile
from repro.session import Session
from repro.sim import SimulationError, Simulator
from repro.sim.profiled import profiled_run
from repro.storage import DataItem
from repro.telemetry import jsonl_dumps


def _loaded_session():
    session = Session(nodes=2, seed=9, scheme="concord", metrics=True,
                      metrics_interval_ms=50.0)
    session.preload({f"k{i}": DataItem("v0", 64) for i in range(4)})
    for i in range(4):
        session.sim.spawn(
            session.system.write("node0", f"k{i}", DataItem(f"v{i}", 64)))
        session.sim.spawn(session.system.read("node1", f"k{i}"))
    return session


class TestProfiledRunEquivalence:
    def test_same_outcome_as_plain_run(self):
        plain = _loaded_session()
        plain.sim.run(until=800.0)
        plain.close()

        profiled = _loaded_session()
        profiler = SelfProfiler()
        profiler.run(profiled.sim, until=800.0)
        profiled.close()

        assert profiled.sim.now == plain.sim.now == 800.0
        # Simulated behaviour is byte-identical: same telemetry export.
        assert jsonl_dumps(profiled.metrics) == jsonl_dumps(plain.metrics)

    def test_attribution_populated(self):
        session = _loaded_session()
        profiler = SelfProfiler()
        profiler.run(session.sim, until=800.0)
        session.close()
        assert profiler.wall_s and profiler.dispatches
        assert set(profiler.wall_s) == set(profiler.dispatches)
        assert all(spent >= 0.0 for spent in profiler.wall_s.values())
        assert sum(profiler.dispatches.values()) > 10
        # The protocol work must attribute to real repo layers.
        assert set(profiler.wall_s) & {
            "core", "net", "sim", "coord", "caching", "cluster", "telemetry"}

    def test_report_and_render(self):
        session = _loaded_session()
        profiler = SelfProfiler()
        profiler.run(session.sim, until=400.0)
        session.close()
        rows = profiler.report()
        assert rows == sorted(rows, key=lambda r: (-r["wall_s"], r["layer"]))
        assert sum(row["share"] for row in rows) == pytest.approx(1.0)
        text = render_profile(profiler)
        assert text.startswith("self-profile:")
        assert rows[0]["layer"] in text

    def test_until_in_the_past_rejected(self):
        sim = Simulator(seed=0)
        sim.run(until=10.0)
        with pytest.raises(SimulationError):
            profiled_run(sim, lambda: 0.0, lambda e, f: "x",
                         lambda layer, spent: None, until=5.0)

    def test_drained_run_advances_to_until(self):
        sim = Simulator(seed=0)
        profiled_run(sim, lambda: 0.0, lambda e, f: "x",
                     lambda layer, spent: None, until=25.0)
        assert sim.now == 25.0


class TestWheelGauges:
    def test_gauges_sampled_into_registry(self):
        session = _loaded_session()
        install_wheel_gauges(session.sim)
        session.advance(300.0)
        session.close()
        text = jsonl_dumps(session.metrics)
        for name in ("sim_wheel_live_entries", "sim_wheel_imm_depth",
                     "sim_wheel_pending_days", "sim_wheel_freelist_entries",
                     "sim_wheel_horizon_ms", "sim_schedule_entries_total"):
            assert name in text

    def test_noop_without_metrics(self):
        sim = Simulator(seed=0)
        install_wheel_gauges(sim)  # Null registry: must not raise
        sim.run(until=10.0)
