"""repro-inspect CLI: exit codes, formats, windows, golden content."""

import io
import json
from pathlib import Path

import pytest

from repro.cli_common import EXIT_FAILURE, EXIT_OK, EXIT_USAGE
from repro.obs.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
DUMP = str(FIXTURES / "e_write_clobber.jsonl")


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestTimeline:
    def test_text_timeline(self):
        code, text = run_cli("timeline", DUMP)
        assert code == EXIT_OK
        assert "events=4" in text
        assert "cache.install" in text and "verify.violation" in text

    def test_json_timeline(self):
        code, text = run_cli("timeline", DUMP, "--format", "json")
        assert code == EXIT_OK
        payload = json.loads(text)
        assert payload["counts"]["events"] == 4
        assert [row["type"] for row in payload["rows"]][0] == "cache.install"

    def test_html_timeline(self):
        code, text = run_cli("timeline", DUMP, "--format", "html")
        assert code == EXIT_OK
        assert text.startswith("<!DOCTYPE html>")

    def test_window_filters_events(self):
        code, text = run_cli("timeline", DUMP,
                             "--since", "1.4", "--until", "3.6")
        assert code == EXIT_OK
        assert "events=2" in text

    def test_out_writes_file(self, tmp_path):
        target = tmp_path / "tl.txt"
        code, text = run_cli("timeline", DUMP, "--out", str(target))
        assert code == EXIT_OK and text == ""
        assert "cache.install" in target.read_text()

    def test_missing_dump_is_usage_error(self, tmp_path):
        code, text = run_cli("timeline", str(tmp_path / "nope.jsonl"))
        assert code == EXIT_USAGE
        assert "no such dump file" in text

    def test_malformed_dump_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        code, text = run_cli("timeline", str(bad))
        assert code == EXIT_USAGE
        assert "not a flight-recorder dump" in text

    def test_empty_trace_file_is_accepted(self, tmp_path):
        empty = tmp_path / "trace.jsonl"
        empty.write_text("")
        code, text = run_cli("timeline", DUMP, "--trace", str(empty))
        assert code == EXIT_OK
        assert "spans=0" in text

    def test_bad_trace_file_is_usage_error(self, tmp_path):
        bad = tmp_path / "trace.json"
        for content in ("{nope", "[]"):  # unparsable; JSON but not spans
            bad.write_text(content)
            code, text = run_cli("timeline", DUMP, "--trace", str(bad))
            assert code == EXIT_USAGE
            assert "not a repro trace export" in text


class TestExplain:
    def test_explains_violating_keys_by_default(self):
        code, text = run_cli("explain", DUMP)
        assert code == EXIT_OK
        assert "e-write-clobber" in text
        assert "user:42" in text

    def test_explicit_key(self):
        code, text = run_cli("explain", DUMP, "--key", "user:42")
        assert code == EXIT_OK
        assert "e-write-clobber" in text

    def test_json_format(self):
        code, text = run_cli("explain", DUMP, "--format", "json")
        assert code == EXIT_OK
        payload = json.loads(text)
        (explained,) = payload["explanations"]
        assert [f["race"] for f in explained["findings"]] == \
            ["e-write-clobber"]

    def test_no_violations_exits_failure(self, tmp_path):
        clean = tmp_path / "clean.jsonl"
        clean.write_text(json.dumps({
            "seq": 1, "t": 1.0, "type": "cache.install", "node": "n0",
            "key": "k", "trace": 0, "span": 0, "tick": 0,
            "attrs": {"version": 1}}) + "\n")
        code, text = run_cli("explain", str(clean))
        assert code == EXIT_FAILURE
        assert "no verify violations" in text

    def test_window_can_exclude_the_violation(self):
        # The violation fires at t=5.0; a window ending before it leaves
        # nothing to explain.
        code, text = run_cli("explain", DUMP, "--until", "4.0")
        assert code == EXIT_FAILURE
        assert "no verify violations" in text

    @pytest.mark.parametrize("name,race", [
        ("e_write_clobber", "e-write-clobber"),
        ("write_reply_clobber", "write-reply-clobber"),
        ("barred_install", "barred-install"),
    ])
    def test_all_three_golden_races_diagnosed(self, name, race):
        code, text = run_cli("explain", str(FIXTURES / f"{name}.jsonl"))
        assert code == EXIT_OK
        assert race in text
