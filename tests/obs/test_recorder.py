"""FlightRecorder unit tests: ring semantics, stamping, auto-dump."""

import pytest

from repro.obs import (
    NULL_RECORDER,
    FlightRecorder,
    NullRecorder,
    load_events,
)
from repro.obs.events import (
    CACHE_INSTALL,
    CACHE_UPDATE,
    FAULT_INJECT,
    VERIFY_VIOLATION,
)
from repro.sim import Simulator


def make_sim(recorder=None, **kwargs):
    return Simulator(seed=0, obs=recorder, **kwargs)


class TestEmission:
    def test_events_stamped_with_sim_time(self):
        recorder = FlightRecorder()
        sim = make_sim(recorder)
        sim.run(until=12.5)
        recorder.emit(CACHE_INSTALL, node="n0", key="k", state="S")
        (event,) = recorder.events()
        assert event.t == 12.5
        assert event.type == CACHE_INSTALL
        assert event.node == "n0" and event.key == "k"
        assert event.attrs == {"state": "S"}

    def test_seq_is_dense_and_one_based(self):
        recorder = FlightRecorder()
        make_sim(recorder)
        for _ in range(5):
            recorder.emit(CACHE_UPDATE, node="n0", key="k")
        assert [e.seq for e in recorder.events()] == [1, 2, 3, 4, 5]

    def test_trace_and_tick_default_to_zero(self):
        recorder = FlightRecorder()
        make_sim(recorder)
        recorder.emit(CACHE_INSTALL, node="n0", key="k")
        (event,) = recorder.events()
        assert event.trace == 0 and event.span == 0 and event.tick == 0

    def test_emit_before_bind_raises(self):
        recorder = FlightRecorder()
        with pytest.raises(RuntimeError, match="bind"):
            recorder.emit(CACHE_INSTALL, node="n0", key="k")

    def test_rebind_to_other_sim_rejected(self):
        recorder = FlightRecorder()
        sim = make_sim(recorder)
        assert recorder.bind(sim) is recorder  # same sim is idempotent
        with pytest.raises(ValueError, match="already bound"):
            Simulator(seed=1, obs=recorder)


class TestRing:
    def test_capacity_overwrites_oldest(self):
        recorder = FlightRecorder(capacity=4)
        make_sim(recorder)
        for index in range(10):
            recorder.emit(CACHE_UPDATE, node="n0", key=f"k{index}")
        assert len(recorder) == 4
        assert recorder.dropped == 6
        assert [e.key for e in recorder.events()] == ["k6", "k7", "k8", "k9"]
        assert [e.seq for e in recorder.events()] == [7, 8, 9, 10]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_clear_resets_ring_but_not_seq(self):
        recorder = FlightRecorder(capacity=2)
        make_sim(recorder)
        for _ in range(3):
            recorder.emit(CACHE_UPDATE, node="n0", key="k")
        recorder.clear()
        assert len(recorder) == 0
        recorder.emit(CACHE_UPDATE, node="n0", key="k")
        assert recorder.events()[0].seq == 4


class TestAutoDump:
    def test_fault_inject_dumps_ring(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(dump_path=str(path))
        make_sim(recorder)
        recorder.emit(CACHE_INSTALL, node="n0", key="k", state="S")
        assert not path.exists()
        recorder.emit(FAULT_INJECT, kind="NodeCrash", detail="n1")
        assert recorder.autodumps == 1
        events = load_events(path)
        assert [e["type"] for e in events] == [CACHE_INSTALL, FAULT_INJECT]

    def test_verify_violation_dumps_ring(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(dump_path=str(path))
        make_sim(recorder)
        recorder.emit(VERIFY_VIOLATION, node="n0", key="k", detail="stale")
        assert path.exists() and recorder.autodumps == 1

    def test_no_dump_without_path(self):
        recorder = FlightRecorder()
        make_sim(recorder)
        recorder.emit(FAULT_INJECT, kind="NodeCrash", detail="n1")
        assert recorder.autodumps == 0


class TestNullRecorder:
    def test_shared_singleton_is_default(self):
        sim = Simulator(seed=0)
        assert sim.obs is NULL_RECORDER
        assert not sim.obs.active

    def test_null_operations_are_noops(self):
        null = NullRecorder()
        null.emit(CACHE_INSTALL, node="n0", key="k")
        assert len(null) == 0
        assert null.events() == [] and null.to_dicts() == []
        assert null.bind(object()) is null

    def test_active_recorder_flag(self):
        assert FlightRecorder().active is True
        assert NULL_RECORDER.active is False
