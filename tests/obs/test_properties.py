"""Property tests: ring-eviction order and JSONL round-trip determinism."""

import os
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import FlightRecorder, jsonl_dumps, loads_events
from repro.obs.events import CACHE_INSTALL, CACHE_UPDATE, INV_SEND
from repro.sim import Simulator

REPO_ROOT = Path(__file__).resolve().parents[2]

_TYPES = [CACHE_INSTALL, CACHE_UPDATE, INV_SEND]

#: (delay_ms, type_index, node_index) emission scripts.
emission_scripts = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=len(_TYPES) - 1),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1, max_size=120,
)


def record_script(script, capacity):
    recorder = FlightRecorder(capacity=capacity)
    sim = Simulator(seed=0, obs=recorder)

    def emitter(sim):
        obs = sim.obs
        for delay_ms, type_index, node_index in script:
            if delay_ms:
                yield sim.timeout(delay_ms)
            obs.emit(_TYPES[type_index], node=f"n{node_index}", key="k",
                     step=type_index)

    sim.run_until_complete(sim.spawn(emitter(sim)))
    return recorder


class TestRingOrder:
    @given(script=emission_scripts,
           capacity=st.integers(min_value=1, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_eviction_preserves_time_and_seq_order(self, script, capacity):
        recorder = record_script(script, capacity)
        events = recorder.events()
        assert len(events) == min(len(script), capacity)
        assert recorder.dropped == max(0, len(script) - capacity)
        stamps = [(e.t, e.seq) for e in events]
        assert stamps == sorted(stamps)
        # Eviction discards a prefix: survivors are the newest emissions.
        assert [e.seq for e in events] == list(
            range(len(script) - len(events) + 1, len(script) + 1))


class TestRoundTrip:
    @given(script=emission_scripts)
    @settings(max_examples=40, deadline=None)
    def test_dump_load_round_trips(self, script):
        recorder = record_script(script, capacity=200)
        dump = jsonl_dumps(recorder)
        assert loads_events(dump) == recorder.to_dicts()
        # Canonical form: re-dumping the parsed events is byte-identical.
        assert jsonl_dumps(loads_events(dump)) == dump


_SUBPROCESS_SCRIPT = """\
import sys
from repro.obs import FlightRecorder, jsonl_dumps
from repro.obs.events import CACHE_INSTALL, CACHE_UPDATE, INV_SEND
from repro.sim import Simulator

recorder = FlightRecorder()
sim = Simulator(seed=3, obs=recorder)

def emitter(sim):
    obs = sim.obs
    for index in range(50):
        yield sim.timeout(1.5)
        obs.emit([CACHE_INSTALL, CACHE_UPDATE, INV_SEND][index % 3],
                 node=f"n{index % 4}", key=f"k{index % 7}",
                 version=index, tags={"a": 1, "z": 2, "m": 3})

sim.run_until_complete(sim.spawn(emitter(sim)))
sys.stdout.write(jsonl_dumps(recorder))
"""


def _dump_under_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_dump_bytes_identical_across_hashseeds():
    assert _dump_under_hashseed("0") == _dump_under_hashseed("1")
