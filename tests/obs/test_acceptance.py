"""End-to-end acceptance: one merged timeline for a crash+partition run.

A Session records all three observability signals (flight recorder,
tracer, metrics) while a FaultInjector replays a NodeCrash plus a
NetworkPartition under live traffic.  The exports then have to join into
ONE timeline — through the library and through the ``repro-inspect``
CLI — with protocol events carrying real span ids and metric ticks, and
the injected faults visible in the same window.
"""

import io

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, NetworkPartition, NodeCrash
from repro.obs import load_events
from repro.obs.cli import main
from repro.obs.events import FAULT_INJECT
from repro.obs.timeline import merge_timeline
from repro.session import Session
from repro.storage import DataItem
from repro.telemetry import load_series
from repro.trace import load_trace

RUN_MS = 2000.0

PLAN = FaultPlan(seed=13, events=(
    NodeCrash(at_ms=300.0, node="node3"),
    NetworkPartition(at_ms=600.0, duration_ms=200.0,
                     groups=(("node0", "node1", "node2"), ("node3",))),
))


def _traffic(session):
    """Background load across the fault window; faulted ops may fail."""
    def driver(sim):
        system = session.system
        for step in range(40):
            key = f"k{step % 6}"
            try:
                yield from system.write(
                    "node0", key, DataItem(f"v{step}", 64))
                yield from system.read("node1", key)
            except Exception:
                pass  # ops racing the crash/partition are allowed to fail
            yield sim.timeout(40.0)
    return driver


@pytest.fixture(scope="module")
def exports(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("acceptance")
    dump, trace, metrics = (tmp / "flight.jsonl", tmp / "trace.jsonl",
                            tmp / "metrics.jsonl")
    with Session(nodes=4, seed=13, scheme="concord", trace=True,
                 metrics=True, metrics_interval_ms=100.0,
                 obs=str(dump)) as session:
        session.preload({f"k{i}": DataItem("v0", 64) for i in range(6)})
        injector = FaultInjector(session.cluster, PLAN,
                                 systems=(session.system,))
        injector.start()
        session.sim.spawn(_traffic(session)(session.sim), name="load")
        session.advance(RUN_MS)
        assert len(injector.applied) == len(PLAN)
        # Drain: let RPC timeouts fire and in-flight ops finish so every
        # span is closed before the exports are written.
        session.advance(8000.0)
        session.export_trace(str(trace), fmt="jsonl")
        session.export_metrics(str(metrics), fmt="jsonl")
    return dump, trace, metrics


class TestMergedTimeline:
    def test_all_three_signals_in_one_window(self, exports):
        dump, trace, metrics = exports
        timeline = merge_timeline(
            load_events(dump),
            spans=load_trace(trace),
            series=load_series(str(metrics)),
            since=0.0, until=RUN_MS,
        )
        counts = timeline["counts"]
        assert counts["events"] > 0
        assert counts["spans"] > 0
        assert counts["ticks"] > 0

        events = [row for row in timeline["rows"]
                  if row["source"] == "event"]
        # Cross-signal correlation: protocol events emitted inside traced
        # operations carry the ambient span ids and the metric tick.
        assert any(row["trace"] and row["span"] for row in events)
        assert any(row["tick"] > 0 for row in events)

        faults = [row for row in events if row["type"] == FAULT_INJECT]
        assert sorted(row["attrs"]["kind"] for row in faults) == \
            ["NetworkPartition", "NodeCrash"]

    def test_event_span_ids_resolve_to_real_spans(self, exports):
        dump, trace, _metrics = exports
        span_ids = {span["span_id"] for span in load_trace(trace)}
        stamped = [event for event in load_events(dump) if event["span"]]
        assert stamped
        assert {event["span"] for event in stamped} <= span_ids

    def test_cli_renders_the_merged_timeline(self, exports):
        dump, trace, metrics = exports
        out = io.StringIO()
        code = main(["timeline", str(dump), "--trace", str(trace),
                     "--metrics", str(metrics),
                     "--since", "0", "--until", str(RUN_MS)], out=out)
        text = out.getvalue()
        assert code == 0
        assert "fault.inject" in text and "kind=NodeCrash" in text
        assert "kind=NetworkPartition" in text
        assert "  span    " in text and "  metric  " in text

    def test_autodump_preserved_the_pre_fault_recording(self, exports):
        dump, _trace, _metrics = exports
        # obs= was a path: the ring was dumped at each injected fault and
        # re-exported on close; the file must at least cover both faults.
        events = load_events(dump)
        kinds = [event["attrs"]["kind"] for event in events
                 if event["type"] == FAULT_INJECT]
        assert kinds == ["NodeCrash", "NetworkPartition"]
