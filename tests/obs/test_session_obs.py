"""Session obs= wiring: recording, export-on-close, determinism."""

import pytest

from repro.obs import FlightRecorder, jsonl_dumps, load_events
from repro.obs.events import EVENT_TYPES
from repro.session import Session
from repro.storage import DataItem


def _drive(session):
    session.preload({"k": DataItem("v0", 64), "j": DataItem("w0", 64)})
    session.write("node0", "k", DataItem("v1", 64))
    session.read("node1", "k")
    session.write("node1", "j", DataItem("w1", 64))
    session.read("node0", "j")


class TestWiring:
    def test_obs_true_records_protocol_events(self):
        with Session(nodes=2, seed=3, scheme="concord", obs=True) as s:
            _drive(s)
            assert isinstance(s.obs, FlightRecorder)
            assert len(s.obs) > 0
            events = s.obs.events()
            assert {e.type for e in events} <= EVENT_TYPES
            stamps = [(e.t, e.seq) for e in events]
            assert stamps == sorted(stamps)

    def test_obs_off_by_default(self):
        with Session(nodes=2, seed=3, scheme="concord") as s:
            _drive(s)
            assert s.obs is None
            assert not s.sim.obs.active

    def test_empty_recorder_instance_is_kept(self):
        # Regression: FlightRecorder defines __len__, so an empty
        # instance is falsy — wiring must not drop it.
        recorder = FlightRecorder(capacity=128)
        with Session(nodes=2, seed=3, scheme="concord", obs=recorder) as s:
            assert s.obs is recorder
            _drive(s)
        assert len(recorder) > 0

    def test_obs_path_exports_on_close(self, tmp_path):
        target = tmp_path / "flight.jsonl"
        with Session(nodes=2, seed=3, scheme="concord",
                     obs=str(target)) as s:
            _drive(s)
            assert s.obs.dump_path == str(target)
        events = load_events(target)
        assert events and all(e["type"] in EVENT_TYPES for e in events)

    def test_export_obs_requires_obs(self, tmp_path):
        with Session(nodes=2, seed=3, scheme="concord") as s:
            with pytest.raises(RuntimeError, match="obs"):
                s.export_obs(str(tmp_path / "x.jsonl"))

    def test_export_obs_explicit(self, tmp_path):
        target = tmp_path / "flight.jsonl"
        with Session(nodes=2, seed=3, scheme="concord", obs=True) as s:
            _drive(s)
            s.export_obs(str(target))
        assert load_events(target) == s.obs.to_dicts()


class TestDeterminism:
    def test_same_seed_same_dump(self):
        dumps = []
        for _ in range(2):
            with Session(nodes=2, seed=5, scheme="concord", obs=True) as s:
                _drive(s)
                dumps.append(jsonl_dumps(s.obs))
        assert dumps[0] == dumps[1]

    def test_recorder_does_not_change_simulated_outcome(self):
        outcomes = []
        for obs in (None, True):
            with Session(nodes=2, seed=5, scheme="concord", obs=obs) as s:
                _drive(s)
                outcomes.append((s.sim.now, s.read("node0", "k")))
        assert outcomes[0] == outcomes[1]
