"""Unit tests for the key→shard→home router."""

import pytest

from repro.core.hashring import EmptyRingError
from repro.shard import ShardRouter

MEMBERS = [f"node{i}" for i in range(6)]
KEYS = [f"key-{i}" for i in range(500)]


class TestResolution:
    def test_shard_of_is_stable_and_in_range(self):
        router = ShardRouter(MEMBERS, num_shards=8)
        for key in KEYS:
            shard = router.shard_of(key)
            assert 0 <= shard < 8
            assert router.shard_of(key) == shard

    def test_home_is_shard_leader(self):
        router = ShardRouter(MEMBERS, num_shards=8, replication=2)
        for key in KEYS:
            assert router.home(key) == router.leader_of(router.shard_of(key))

    def test_deterministic_across_instances(self):
        a = ShardRouter(MEMBERS, num_shards=8, replication=2)
        b = ShardRouter(reversed(MEMBERS), num_shards=8, replication=2)
        assert a.table() == b.table()
        assert all(a.home(k) == b.home(k) for k in KEYS)

    def test_chain_has_distinct_members_leader_first(self):
        router = ShardRouter(MEMBERS, num_shards=8, replication=3)
        for shard in range(8):
            chain = router.chain_of(shard)
            assert len(chain) == 3
            assert len(set(chain)) == 3
            assert chain[0] == router.leader_of(shard)

    def test_followers_are_chain_tail(self):
        router = ShardRouter(MEMBERS, num_shards=4, replication=2)
        for key in KEYS[:50]:
            chain = router.chain_of(router.shard_of(key))
            assert router.followers(key) == chain[1:]

    def test_replication_capped_by_membership(self):
        router = ShardRouter(["a", "b"], num_shards=4, replication=3)
        for shard in range(4):
            assert set(router.chain_of(shard)) == {"a", "b"}

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(MEMBERS, num_shards=0)
        with pytest.raises(ValueError):
            ShardRouter(MEMBERS, num_shards=4, replication=0)


class TestMembershipChanges:
    def test_leader_failover_promotes_next_in_chain(self):
        router = ShardRouter(MEMBERS, num_shards=8, replication=3)
        for shard in range(8):
            chain = router.chain_of(shard)
            survivor = router.copy()
            survivor.remove(chain[0])
            assert survivor.leader_of(shard) == chain[1]

    def test_remove_preserves_surviving_chain_order(self):
        router = ShardRouter(MEMBERS, num_shards=8, replication=3)
        victim = MEMBERS[2]
        before = {s: router.chain_of(s) for s in range(8)}
        router.remove(victim)
        for shard in range(8):
            survivors = [m for m in before[shard] if m != victim]
            # The old survivors stay in order as the chain prefix; the
            # tail refills from the ring.
            assert list(router.chain_of(shard))[:len(survivors)] == survivors

    def test_join_only_promotes_the_joiner(self):
        router = ShardRouter(MEMBERS, num_shards=8, replication=1)
        before = {s: router.leader_of(s) for s in range(8)}
        router.add("fresh")
        for shard in range(8):
            after = router.leader_of(shard)
            assert after == before[shard] or after == "fresh"

    def test_rehomed_keys_matches_reduced_router(self):
        router = ShardRouter(MEMBERS, num_shards=8, replication=2)
        victim = MEMBERS[0]
        rehomed = router.rehomed_keys(KEYS, victim)
        reduced = router.copy()
        reduced.remove(victim)
        for key, target in rehomed.items():
            assert router.home(key) == victim
            assert reduced.home(key) == target

    def test_rehomed_keys_empty_and_last_member_raise(self):
        with pytest.raises(EmptyRingError):
            ShardRouter(num_shards=4).rehomed_keys(KEYS, "ghost")
        with pytest.raises(EmptyRingError):
            ShardRouter(["solo"], num_shards=4).rehomed_keys(KEYS, "solo")

    def test_leader_of_memberless_raises(self):
        with pytest.raises(EmptyRingError):
            ShardRouter(num_shards=4).leader_of(0)

    def test_with_members_keeps_topology_parameters(self):
        router = ShardRouter(MEMBERS, num_shards=16, replication=2,
                             virtual_nodes=32)
        rebuilt = router.with_members(["x", "y", "z"])
        assert rebuilt.num_shards == 16
        assert rebuilt.replication == 2
        assert rebuilt.virtual_nodes == 32
        assert rebuilt.members == {"x", "y", "z"}


class TestSplit:
    def test_split_is_linear_hash(self):
        router = ShardRouter(MEMBERS, num_shards=4)
        before = {k: router.shard_of(k) for k in KEYS}
        router.split()
        assert router.num_shards == 8
        for key in KEYS:
            assert router.shard_of(key) in (before[key], before[key] + 4)
