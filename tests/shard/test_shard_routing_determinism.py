"""Shard routing and re-homing must not depend on PYTHONHASHSEED.

The routing chain (md5 key hash → shard → preference-list chain) never
touches ``hash()``, so the shard table, every key's home, and the set of
keys a membership change re-homes must be byte-identical across
interpreter hash seeds.  These tests pin that in subprocesses — the
in-process Hypothesis properties cannot see a different hash seed.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

SNIPPET = """\
import json
from repro.shard import ShardRouter

members = [f"node{i}" for i in range(6)]
keys = [f"key-{i}" for i in range(200)]
router = ShardRouter(members, num_shards=8, replication=2)
rehomed = router.rehomed_keys(keys, router.leader_of(0))
print(json.dumps({
    "table": router.table(),
    "homes": {k: router.home(k) for k in keys},
    "shards": {k: router.shard_of(k) for k in keys},
    "rehomed": rehomed,
}, sort_keys=True))
"""


def routing_snapshot(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_SRC)
    proc = subprocess.run(
        [sys.executable, "-c", SNIPPET],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_routing_identical_across_hash_seeds():
    snap0 = routing_snapshot("0")
    snap1 = routing_snapshot("1")
    snap2 = routing_snapshot("12345")
    assert snap0 == snap1 == snap2
    # Sanity: the snapshot is substantive, not an empty accident.
    decoded = json.loads(snap0)
    assert len(decoded["homes"]) == 200
    assert len(decoded["table"]) == 8
    assert decoded["rehomed"]
