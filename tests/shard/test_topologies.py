"""Topology presets, smoke plans, and the sharded end-to-end scenario."""

import pytest

from repro.faults.plan import FaultPlan, NodeCrash
from repro.shard.topologies import (
    TOPOLOGIES,
    node_ids,
    run_topology_scenario,
    shard_leader,
    smoke_plan,
)


class TestPresets:
    def test_expected_cells(self):
        assert set(TOPOLOGIES) == {"flat", "shard4", "shard4rep", "region2"}

    def test_scenario_kwargs_shapes(self):
        assert "shards" not in TOPOLOGIES["flat"].scenario_kwargs()
        assert TOPOLOGIES["shard4"].scenario_kwargs()["shards"] == 4
        assert TOPOLOGIES["shard4rep"].scenario_kwargs()["replication"] == 2
        region2 = TOPOLOGIES["region2"].scenario_kwargs()
        assert region2["regions"] == 2
        # Regional cells drain longer: unreachability reports trail the
        # RPC timeout, so eject/rejoin churn outlives the heal.
        assert region2["settle_ms"] > TOPOLOGIES["shard4"].settle_ms

    def test_shard_leader_is_deterministic_and_a_member(self):
        for name in ("shard4", "shard4rep", "region2"):
            topology = TOPOLOGIES[name]
            leader = shard_leader(topology)
            assert leader in node_ids()
            assert shard_leader(topology) == leader

    def test_shard_leader_rejects_flat(self):
        with pytest.raises(ValueError):
            shard_leader(TOPOLOGIES["flat"])


class TestSmokePlans:
    def test_sharded_plans_crash_the_shard0_leader(self):
        for name in ("shard4", "shard4rep"):
            plan = smoke_plan(name)
            crashes = [e for e in plan.events if e.kind == "NodeCrash"]
            assert len(crashes) == 1
            assert crashes[0].node == shard_leader(TOPOLOGIES[name])
            assert "NodeRestart" in plan.kinds()

    def test_region2_plan_adds_a_region_partition(self):
        plan = smoke_plan("region2")
        kinds = plan.kinds()
        assert "NodeCrash" in kinds
        assert "RegionPartition" in kinds


class TestEndToEnd:
    def test_shard4_smoke_is_coherent_and_fails_over(self):
        outcome = run_topology_scenario("shard4", seed=0)
        assert outcome.violations == []
        assert outcome.completed > 0
        assert outcome.shard_failovers >= 1
        assert outcome.shards_rehomed >= 1
        assert len(outcome.shard_table) == 4

    def test_replay_fingerprints_match(self):
        first = run_topology_scenario("shard4rep", seed=3)
        second = run_topology_scenario("shard4rep", seed=3)
        assert first.fingerprint() == second.fingerprint()

    def test_custom_plan_overrides_smoke_plan(self):
        victim = shard_leader(TOPOLOGIES["shard4"])
        plan = FaultPlan(events=(NodeCrash(at_ms=1000.0, node=victim),))
        outcome = run_topology_scenario("shard4", seed=0, plan=plan)
        assert outcome.violations == []
        # Crash without restart: the leader stays dead, its shards
        # permanently fail over to the survivors.
        assert victim not in {chain[0] for chain in outcome.shard_table}
