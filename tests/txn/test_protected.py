"""Tests for protected (escalated) transaction execution."""

import pytest

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.sim import Simulator
from repro.storage import DataItem
from repro.txn import ConcordTxnRuntime
from repro.txn.manager import TxnContext


@pytest.fixture
def sim():
    return Simulator(seed=77)


@pytest.fixture
def cluster(sim):
    return Cluster(sim, SimConfig(num_nodes=4))


@pytest.fixture
def concord(cluster):
    coord = CoordinationService(cluster.network, cluster.config)
    return ConcordSystem(cluster, app="prot", coord=coord)


@pytest.fixture
def runtime(concord):
    return ConcordTxnRuntime(concord)


def V(tag):
    return DataItem(tag, 128)


class TestProtection:
    def test_escalated_txn_cannot_be_squashed(self, sim, cluster, runtime, concord):
        """Force escalation via the internal threshold, then verify a
        hostile plain writer waits rather than squashing."""
        cluster.storage.preload({"x": V("x0")})
        runtime.ESCALATION_THRESHOLD = 0  # first attempt is escalated
        plain_done = []

        def txn_body(txn):
            yield from txn.write("x", V("x-final"))
            yield txn.runtime.sim.timeout(100.0)  # long speculation window
            return "ok"

        def hostile(sim):
            yield sim.timeout(20.0)
            yield from concord.write("node2", "x", V("hostile"))
            plain_done.append(sim.now)

        txn_proc = sim.spawn(runtime.run("node0", txn_body))
        sim.spawn(hostile(sim))
        sim.run(until=sim.now + 60_000.0)
        assert txn_proc.value == "ok"
        assert runtime.aborts == 0  # never squashed
        assert plain_done  # the hostile writer eventually proceeded
        # The hostile write was serialized after the txn's commit.
        assert cluster.storage.peek("x").value == V("hostile")

    def test_local_access_waits_for_protected_txn(self, sim, cluster, runtime, concord):
        cluster.storage.preload({"y": V("y0")})
        runtime.ESCALATION_THRESHOLD = 0
        observed = []

        def txn_body(txn):
            yield from txn.write("y", V("y-committed"))
            yield txn.runtime.sim.timeout(80.0)
            return "done"

        def local_reader(sim):
            yield sim.timeout(10.0)
            value = yield from concord.read("node0", "y")
            observed.append((sim.now, value))

        sim.spawn(runtime.run("node0", txn_body))
        sim.spawn(local_reader(sim))
        sim.run(until=sim.now + 60_000.0)
        when, value = observed[0]
        # The reader either serialized before the transaction (old value)
        # or waited for the commit — it must never observe the speculative
        # value while the transaction is still open (commit is at ~80ms+).
        if value == V("y-committed"):
            assert when > 80.0
        else:
            assert value == V("y0")

    def test_two_escalated_txns_serialize(self, sim, cluster, runtime):
        cluster.storage.preload({"z": V("z0")})
        runtime.ESCALATION_THRESHOLD = 0
        order = []

        def make_body(tag):
            def body(txn):
                value = yield from txn.read("z")
                yield txn.runtime.sim.timeout(30.0)
                yield from txn.write("z", V(tag))
                order.append((tag, value.payload))
                return tag
            return body

        p1 = sim.spawn(runtime.run("node0", make_body("first")))
        p2 = sim.spawn(runtime.run("node1", make_body("second")))
        sim.run(until=sim.now + 120_000.0)
        assert p1.triggered and p2.triggered
        assert runtime.commits == 2
        # The second to run observed the first one's committed value.
        later = order[1]
        assert later[1] in ("first", "second", "z0")
        assert len({o[0] for o in order}) == 2

    def test_done_event_fires_on_abort_too(self, sim, cluster, runtime, concord):
        cluster.storage.preload({"w": V("w0")})

        def txn_body(txn):
            yield from txn.read("w")
            yield txn.runtime.sim.timeout(50.0)
            return "ok"

        def conflicting_writer(sim):
            yield sim.timeout(10.0)
            yield from concord.write("node2", "w", V("boom"))

        txn_proc = sim.spawn(runtime.run("node0", txn_body, max_attempts=5))
        sim.spawn(conflicting_writer(sim))
        sim.run(until=sim.now + 120_000.0)
        assert txn_proc.triggered  # retried (possibly escalated) and finished
        # No transaction context may linger.
        for manager in runtime.managers.values():
            assert manager.active == {}
