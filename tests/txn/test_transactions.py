"""Tests for Concord transactions and the Saga/Beldi baselines."""

import pytest

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.sim import Simulator
from repro.storage import DataItem
from repro.txn import BeldiRunner, ConcordTxnRuntime, SagaRunner, TXN_APPS, TxnAborted


@pytest.fixture
def sim():
    return Simulator(seed=21)


@pytest.fixture
def cluster(sim):
    return Cluster(sim, SimConfig(num_nodes=4))


@pytest.fixture
def concord(cluster):
    coord = CoordinationService(cluster.network, cluster.config)
    return ConcordSystem(cluster, app="txnapp", coord=coord)


@pytest.fixture
def runtime(concord):
    return ConcordTxnRuntime(concord)


def run(sim, gen, limit=300_000.0):
    return sim.run_until_complete(sim.spawn(gen), limit=sim.now + limit)


def V(tag):
    return DataItem(tag, 128)


class TestCommit:
    def test_simple_transaction_commits(self, sim, cluster, runtime):
        cluster.storage.preload({"a": V("a0"), "b": V("b0")})

        def body(txn):
            a = yield from txn.read("a")
            yield from txn.write("b", V(f"b<-{a.payload}"))
            return "done"

        assert run(sim, runtime.run("node0", body)) == "done"
        assert runtime.commits == 1
        assert cluster.storage.peek("b").value == V("b<-a0")

    def test_buffered_writes_invisible_until_commit(self, sim, cluster, runtime, concord):
        cluster.storage.preload({"x": V("x0")})
        observations = []

        def body(txn):
            yield from txn.write("x", V("x1"))
            # Mid-transaction, storage still holds the old value.
            observations.append(cluster.storage.peek("x").value)
            yield txn.runtime.sim.timeout(5.0)
            return True

        run(sim, runtime.run("node0", body))
        assert observations == [V("x0")]
        assert cluster.storage.peek("x").value == V("x1")

    def test_read_your_own_writes(self, sim, cluster, runtime):
        cluster.storage.preload({"x": V("x0")})

        def body(txn):
            yield from txn.write("x", V("x1"))
            value = yield from txn.read("x")
            return value

        assert run(sim, runtime.run("node0", body)) == V("x1")

    def test_speculation_cleared_after_commit(self, sim, cluster, runtime, concord):
        cluster.storage.preload({"x": V("x0")})

        def body(txn):
            yield from txn.read("x")
            yield from txn.write("x", V("x1"))
            return True

        run(sim, runtime.run("node1", body))
        entry = concord.agents["node1"].cache.peek("x")
        assert entry is not None
        assert not entry.speculative
        assert not entry.pinned


class TestConflicts:
    def test_remote_write_squashes_reader_txn(self, sim, cluster, runtime, concord):
        """A transaction that read x gets squashed when another node
        writes x (conflict detected via the invalidation message)."""
        cluster.storage.preload({"x": V("x0"), "y": V("y0")})
        timeline = []

        def slow_txn(txn):
            value = yield from txn.read("x")
            timeline.append(("read", value))
            yield txn.runtime.sim.timeout(100.0)  # hold speculation open
            yield from txn.write("y", V("y1"))
            return "committed"

        def writer(sim):
            yield sim.timeout(30.0)
            yield from concord.write("node2", "x", V("x-conflict"))

        txn_proc = sim.spawn(runtime.run("node0", slow_txn))
        sim.spawn(writer(sim))
        sim.run(until=sim.now + 60_000.0)
        assert txn_proc.value == "committed"  # retried and succeeded
        assert runtime.aborts >= 1
        # The retry observed the conflicting value.
        assert timeline[-1] == ("read", V("x-conflict"))

    def test_remote_read_squashes_writer_txn(self, sim, cluster, runtime, concord):
        cluster.storage.preload({"x": V("x0")})

        def writing_txn(txn):
            yield from txn.write("x", V("x-spec"))
            yield txn.runtime.sim.timeout(100.0)
            return "done"

        reads = []

        def reader(sim):
            yield sim.timeout(30.0)
            value = yield from concord.read("node2", "x")
            reads.append(value)

        txn_proc = sim.spawn(runtime.run("node0", writing_txn))
        sim.spawn(reader(sim))
        sim.run(until=sim.now + 120_000.0)
        assert txn_proc.value == "done"
        assert runtime.aborts >= 1
        # The concurrent reader never saw the speculative value.
        assert reads == [V("x0")]

    def test_local_conflict_between_transactions(self, sim, cluster, runtime):
        cluster.storage.preload({"x": V("x0")})
        order = []

        def txn_a(txn):
            yield from txn.write("x", V("a"))
            yield txn.runtime.sim.timeout(50.0)
            order.append("a")
            return "a"

        def txn_b(txn):
            yield txn.runtime.sim.timeout(10.0)
            value = yield from txn.read("x")
            order.append(("b-read", value.payload))
            return "b"

        pa = sim.spawn(runtime.run("node0", txn_a))
        pb = sim.spawn(runtime.run("node0", txn_b))
        sim.run(until=sim.now + 120_000.0)
        assert pa.value == "a" and pb.value == "b"
        assert runtime.aborts >= 1
        # b never observed the uncommitted "a" value.
        for item in order:
            if isinstance(item, tuple):
                assert item[1] in ("x0", "a")  # either pre- or post-commit

    def test_non_txn_local_write_squashes_speculation(self, sim, cluster, runtime, concord):
        cluster.storage.preload({"x": V("x0")})

        def txn_body(txn):
            yield from txn.read("x")
            yield txn.runtime.sim.timeout(80.0)
            return "ok"

        def plain_writer(sim):
            yield sim.timeout(20.0)
            yield from concord.write("node0", "x", V("plain"))

        txn_proc = sim.spawn(runtime.run("node0", txn_body))
        sim.spawn(plain_writer(sim))
        sim.run(until=sim.now + 60_000.0)
        assert txn_proc.value == "ok"
        assert runtime.aborts >= 1

    def test_escalation_guarantees_progress(self, sim, cluster, runtime, concord):
        """Under constant conflicting traffic, priority escalation (global
        lock) still lets the transaction commit."""
        cluster.storage.preload({"x": V("x0")})
        stop = []

        def hostile(sim):
            i = 0
            while not stop:
                yield sim.timeout(15.0)
                yield from concord.write("node2", "x", V(f"h{i}"))
                i += 1

        def txn_body(txn):
            value = yield from txn.read("x")
            yield txn.runtime.sim.timeout(40.0)
            yield from txn.write("x", V("txn-final"))
            return value

        sim.spawn(hostile(sim), daemon=True)
        txn_proc = sim.spawn(runtime.run("node0", txn_body, max_attempts=30))
        sim.run(until=sim.now + 600_000.0)
        stop.append(True)
        assert txn_proc.triggered
        assert runtime.commits == 1


class TestBaselines:
    def test_saga_commits_without_contention(self, sim, cluster):
        saga = SagaRunner(cluster)
        app = TXN_APPS["HotelBooking"]
        cluster.storage.preload({k: V("init") for k in app.keyspace()})
        assert run(sim, saga.run(app, entity=0)) is True
        assert saga.commits == 1
        assert saga.compensations == 0

    def test_saga_compensates_on_conflict(self, sim, cluster):
        saga = SagaRunner(cluster)
        app = TXN_APPS["OnlineBanking"]
        cluster.storage.preload({k: V("init") for k in app.keyspace()})

        def interferer(sim):
            yield sim.timeout(100.0)
            # Clobber a key the saga reads at every step but never writes.
            yield from cluster.storage.write(
                app.steps[0].reads[1].format(e=0), V("intruder"), writer="x")

        sim.spawn(interferer(sim))
        run(sim, saga.run(app, entity=0))
        assert saga.commits == 1
        assert saga.compensations > 0

    def test_beldi_commits_and_logs(self, sim, cluster):
        beldi = BeldiRunner(cluster)
        app = TXN_APPS["OnlineShopping"]
        cluster.storage.preload({k: V("init") for k in app.keyspace()})
        writes_before = cluster.storage.stats.writes
        assert run(sim, beldi.run(app, entity=0)) is True
        # Logging cost: many more storage writes than data writes.
        log_writes = cluster.storage.stats.writes - writes_before
        assert log_writes > len(app.steps) * 2

    def test_beldi_aborts_on_conflict(self, sim, cluster):
        beldi = BeldiRunner(cluster)
        app = TXN_APPS["HealthRecords"]
        cluster.storage.preload({k: V("init") for k in app.keyspace()})

        def interferer(sim):
            yield sim.timeout(150.0)
            yield from cluster.storage.write(
                app.steps[0].reads[0].format(e=0), V("intruder"), writer="x")

        sim.spawn(interferer(sim))
        run(sim, beldi.run(app, entity=0))
        assert beldi.aborts >= 1
        assert beldi.commits == 1

    def test_txn_apps_have_paper_shape(self):
        assert len(TXN_APPS) == 5
        for app in TXN_APPS.values():
            assert 6 <= len(app.steps) <= 8  # "sequence of 6-8 functions"
