"""The Session facade: wiring, driving, tracing lifecycle."""

import json

import pytest

from repro.caching import DirectStorage
from repro.core import ConcordSystem
from repro.schemes import UnknownSchemeError
from repro.session import Session
from repro.storage import DataItem
from repro.trace import Tracer, load_trace


class TestWiring:
    def test_defaults_build_a_concord_cluster(self):
        with Session() as s:
            assert isinstance(s.system, ConcordSystem)
            assert len(s.cluster.node_ids) == 4
            assert s.storage is s.cluster.storage
            assert s.tracer is None

    def test_scheme_selection_through_registry(self):
        with Session(scheme="nocache") as s:
            assert isinstance(s.system, DirectStorage)

    def test_unknown_scheme_raises(self):
        with pytest.raises(UnknownSchemeError):
            Session(scheme="definitely-not-a-scheme")

    def test_scheme_config_passthrough(self):
        with Session(scheme="concord", capacity=1024) as s:
            agent = next(iter(s.system.agents.values()))
            assert agent.cache.capacity_bytes == 1024

    def test_node_and_core_counts(self):
        with Session(nodes=6, cores_per_node=2) as s:
            assert len(s.cluster.node_ids) == 6
            node = s.cluster.node("node0")
            assert node.cores.capacity == 2


class TestDriving:
    def test_read_write_round_trip(self):
        with Session(seed=9) as s:
            s.preload({"k": DataItem("v0", 256)})
            assert s.read("node1", "k").payload == "v0"
            s.write("node2", "k", DataItem("v1", 256))
            assert s.read("node3", "k").payload == "v1"

    def test_clock_advances(self):
        with Session(seed=9) as s:
            s.preload({"k": DataItem("v0", 256)})
            before = s.sim.now
            s.read("node1", "k")
            after_read = s.sim.now
            assert after_read > before
            s.advance(250.0)
            assert s.sim.now == after_read + 250.0

    def test_run_arbitrary_generator(self):
        with Session(seed=9) as s:
            def op(sim):
                yield sim.timeout(5.0)
                return "done"

            result = s.run(op(s.sim))
            assert result.value == "done"
            assert result.finished_ms == result.started_ms + 5.0
            assert result.duration_ms == 5.0

    def test_positional_config_warns_but_works(self):
        with pytest.warns(DeprecationWarning):
            s = Session(2, 9)
        assert len(s.cluster.node_ids) == 2
        s.close()

    def test_positional_plus_keyword_collision_raises(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                Session(2, nodes=4)

    def test_identical_sessions_identical_results(self):
        def trial():
            with Session(seed=33) as s:
                s.preload({"k": DataItem("v0", 256)})
                s.read("node1", "k")
                s.write("node2", "k", DataItem("v1", 256))
                return s.sim.now

        assert trial() == trial()


class TestTracing:
    def test_trace_true_collects_spans(self):
        with Session(seed=9, trace=True) as s:
            s.preload({"k": DataItem("v0", 256)})
            s.read("node1", "k")
            assert s.tracer is not None
            assert any(span.category == "op" for span in s.tracer.spans)
            assert s.tracer.open_spans() == []

    def test_trace_path_exports_chrome_on_close(self, tmp_path):
        path = tmp_path / "session.json"
        with Session(seed=9, trace=str(path)) as s:
            s.preload({"k": DataItem("v0", 256)})
            s.read("node1", "k")
        document = json.loads(path.read_text())
        assert document["traceEvents"]
        spans = load_trace(path)
        assert any(span["category"] == "op" for span in spans)

    def test_trace_accepts_existing_tracer(self):
        tracer = Tracer()
        with Session(seed=9, trace=tracer) as s:
            assert s.tracer is tracer
            s.preload({"k": DataItem("v0", 256)})
            s.read("node1", "k")
        assert tracer.spans

    def test_export_jsonl_format(self, tmp_path):
        path = tmp_path / "session.jsonl"
        with Session(seed=9, trace=True) as s:
            s.preload({"k": DataItem("v0", 256)})
            s.read("node1", "k")
            s.export_trace(str(path), fmt="jsonl")
        spans = load_trace(path)
        assert spans == s.tracer.to_dicts()

    def test_export_without_tracer_raises(self, tmp_path):
        with Session(seed=9) as s:
            with pytest.raises(RuntimeError):
                s.export_trace(str(tmp_path / "x.json"))

    def test_export_unknown_format_rejected(self, tmp_path):
        with Session(seed=9, trace=True) as s:
            with pytest.raises(ValueError):
                s.export_trace(str(tmp_path / "x.bin"), fmt="protobuf")
