"""Known-bad protocol snippets (PRO*); parsed by tests, never imported."""


class BadAgent:
    def __init__(self, sim, endpoint, lock):
        self.sim = sim
        self.endpoint = endpoint
        self.lock = lock
        self.endpoint.register_handler("orphan", self._handle_orphan)
        self.endpoint.register_handler("ghost", self._handle_ghost)

    def _handle_orphan(self, endpoint, src, args):
        return None
        yield

    def ask(self, key):
        value = yield from self.endpoint.call(
            "node1/peer", "missing_method", key, size_bytes=8,
            timeout=1000.0)
        return value

    def fire(self, key):
        yield from self.endpoint.call(
            "node1/peer", "orphan", key, size_bytes=8)

    def leaky(self, key):
        yield self.lock.acquire()
        yield self.sim.timeout(1.0)
        self.lock.release()

    def never_releases(self):
        yield self.lock.acquire()

    def disciplined(self):
        yield self.lock.acquire()
        try:
            yield self.sim.timeout(1.0)
        finally:
            self.lock.release()
