"""Known-bad protocol snippets (PRO*); parsed by tests, never imported."""


class BadAgent:
    def __init__(self, sim, endpoint, lock):
        self.sim = sim
        self.endpoint = endpoint
        self.lock = lock
        self.endpoint.register_handler("orphan", self._handle_orphan)
        self.endpoint.register_handler("ghost", self._handle_ghost)

    def _handle_orphan(self, endpoint, src, args):
        return None
        yield

    def ask(self, key):
        value = yield from self.endpoint.call(
            "node1/peer", "missing_method", key, size_bytes=8,
            timeout=1000.0)
        return value

    def fire(self, key):
        yield from self.endpoint.call(
            "node1/peer", "orphan", key, size_bytes=8)

    def leaky(self, key):
        yield self.lock.acquire()
        yield self.sim.timeout(1.0)
        self.lock.release()

    def never_releases(self):
        yield self.lock.acquire()

    def disciplined(self):
        yield self.lock.acquire()
        try:
            yield self.sim.timeout(1.0)
        finally:
            self.lock.release()

    def sneaky_else_release(self):
        # The release sits in the else: of a try nested in the finally —
        # the handler path leaks the lock.  Containment-style scanning
        # used to accept this.
        yield self.lock.acquire()
        try:
            yield self.sim.timeout(1.0)
        finally:
            try:
                self.flush()
            except OSError:
                pass
            else:
                self.lock.release()

    def escalated_conditional(self):
        # Conditional release in the finally is the accepted idiom: the
        # condition models whether the lock is still held.
        yield self.lock.acquire()
        try:
            yield self.sim.timeout(1.0)
        finally:
            if self.escalated:
                self.lock.release()

    def grant_assigned(self):
        grant = self.lock.acquire()
        yield grant
        try:
            yield self.sim.timeout(1.0)
        finally:
            self.lock.release()

    def flush(self):
        return None
