"""Known-bad tracing snippets (TRC*); parsed by tests, never imported.

Lives under a ``core/`` directory on purpose: TRC01 only applies to the
protocol layers (``core/`` and ``caching/``).
"""


class BadTracedAgent:
    def __init__(self, endpoint):
        self.endpoint = endpoint

    def dropped_call(self, key):
        value = yield from self.endpoint.call(
            "node1/peer", "read", key, size_bytes=8, timeout=1000.0)
        return value

    def dropped_notify(self, key):
        self.endpoint.notify("node1/peer", "evicted", key, size_bytes=8)
        return None
        yield

    def connected_call(self, key):
        value = yield from self.endpoint.call(
            "node1/peer", "read", key, size_bytes=8, timeout=1000.0,
            trace=INHERIT)  # noqa: F821 - parsed, never imported
        return value
