"""Resolution fixture: JobSpec targets into the sibling module."""

from repro.bench import JobSpec

GOOD = JobSpec(name="g", target="jobs_module:run")
GOOD_ATTR = JobSpec(name="a", target="jobs_module:Runner.run")
BAD_MISSING = JobSpec(name="m", target="jobs_module:absent")    # line 7: BEN01
