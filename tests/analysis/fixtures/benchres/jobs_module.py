"""Resolution fixture: the module bench targets point into."""


def run(scale=1.0):
    return {"scale": scale}


class Runner:
    @staticmethod
    def run():
        return {}


def outer():
    def inner():  # not module-level: unreachable as a target
        return {}
    return inner
