"""Known-bad telemetry idioms; MET01 must fire at the marked lines."""


class Instrumented:
    def __init__(self, metrics):
        self.sharers = {"node0", "node1"}
        self.metrics = metrics

    def unlabeled_counter(self):
        self.metrics.counter("ops_total", "Total ops.")        # line 10

    def unlabeled_gauge(self, registry):
        registry.gauge("depth", "Queue depth.")                # line 13

    def labeled_ok(self):
        self.metrics.counter(
            "ops_total", "Total ops.", labelnames=("node",))

    def unlabeled_histogram(self, registry):
        registry.histogram("latency_ms", "Latency.")           # line 20

    def bad_lambda_callback(self, gauge):
        gauge.set_callback(lambda: list(self.sharers)[0])      # line 23

    def bad_comprehension_callback(self, gauge):
        gauge.set_callback(
            lambda: [n for n in self.sharers][0])              # line 27

    def good_reduction_callback(self, gauge):
        gauge.set_callback(lambda: len(self.sharers))

    def good_sorted_callback(self, gauge):
        gauge.set_callback(lambda: sorted(self.sharers)[0])

    def bad_local_def_callback(self, gauge):
        def sample():
            return tuple(self.sharers)                         # line 37

        gauge.set_callback(sample)

    def unrelated_builder_not_flagged(self, widgets):
        # .counter() on a non-registry receiver is not MET01's business.
        widgets.counter("clicks")
