"""Known-bad bench-job idioms; BEN01 must fire at the marked lines."""

from repro.bench import JobSpec

MODULE = "repro.bench._testing"


def helper():
    return {"n": 1}


def target_fstring(mod):
    return JobSpec(name="x", target=f"{mod}:run")            # line 13: BEN01


def target_callable_object():
    return JobSpec(name="x", target=helper)                  # line 17: BEN01


def target_bad_format():
    return JobSpec(name="x", target="just_a_module")         # line 21: BEN01


def target_computed_name():
    return JobSpec(name="x", target=MODULE + ":echo")        # line 25: BEN01


def args_with_set():
    return JobSpec(name="x", target="m:fn",
                   args={"keys": {1, 2, 3}})                 # line 30: BEN01


def args_with_set_comp(items):
    return JobSpec(name="x", target="m:fn",
                   args={"keys": {i for i in items}})        # line 35: BEN01


def args_with_lambda():
    return JobSpec(name="x", target="m:fn",
                   args={"callback": lambda: 1})             # line 40: BEN01


def args_with_bytes():
    return JobSpec(name="x", target="m:fn",
                   args={"blob": b"raw"})                    # line 45: BEN01


def clean_dynamic_values(name, scale):
    # Dynamic *values* are fine — JobSpec canonicalizes at runtime.
    return JobSpec(name=name, target="m:fn",
                   args={"name": name, "scale": scale})


def clean_sorted_list():
    return JobSpec(name="x", target="m:fn",
                   args={"keys": sorted({1, 2, 3})})  # noqa: BEN01


def clean_unanalyzed_module():
    # "m:fn" is outside the analyzed tree: resolution is skipped.
    return JobSpec(name="x", target="some.other.module:entry")
