"""Clean twin of ``bad_schemes.py``.

Lives under a ``schemes/`` directory, so direct construction is the
registry-builder idiom SCH01 permits; every concrete scheme class
declares its consistency level.
"""


class StorageAPI:
    """Stand-in root; the real one lives in repro.caching.base."""

    consistency = ""


class _HelperBase(StorageAPI):
    """Underscore-prefixed helper base: exempt from the declaration rule."""


class RegisteredScheme(_HelperBase):
    consistency = "eventual"


def build_registered(cluster, coord, app, **_):
    """Builder in a schemes/ module: direct construction is allowed."""
    return RegisteredScheme()
