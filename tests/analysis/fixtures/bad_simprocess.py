"""Known-bad sim-process snippets (SIM*); parsed by tests, never imported."""


def bad_yield_process(sim):
    yield sim.timeout(1.0)
    yield 42


def blocking_process(sim, path):
    yield sim.timeout(1.0)
    data = open(path).read()
    yield sim.timeout(float(len(data)))


def value_generator(items):
    # Host-side data generator: yields only tuples, never stepped by the
    # kernel — must NOT be flagged by SIM01.
    for item in items:
        yield (item, len(item))


def peeking_process(sim):
    yield sim.timeout(sim._now + 1.0)
