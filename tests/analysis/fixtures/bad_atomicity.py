"""Pre-fix replicas of the protocol races the coherence checker caught.

Each racy method reproduces, in miniature, one of the three races fixed
in the fault-injection PR; the ``*_fixed`` twin is the post-fix shape and
must stay clean.  Parsed by tests, never imported.
"""

EXCLUSIVE = "E"


class RacyAgent:
    def __init__(self, sim, cache, directory, storage, endpoint, lock):
        self.sim = sim
        self.cache = cache
        self.directory = directory
        self.storage = storage
        self.endpoint = endpoint
        self.lock = lock

    # -- race 1: E-state direct write updated the cache before storage --
    def write_direct(self, key, value):
        entry = self.cache.get(key)
        yield self.lock.acquire()
        try:
            if entry.state == EXCLUSIVE:
                entry.value = value
                entry.size_bytes = len(value)
                yield from self.storage.write(key, value)
        finally:
            self.lock.release()

    def write_direct_fixed(self, key, value):
        yield self.lock.acquire()
        try:
            version = yield from self.storage.write(key, value)
            current = self.cache.get(key)
            if current is not None and current.version <= version:
                current.value = value
                current.size_bytes = len(value)
                current.version = version
        finally:
            self.lock.release()

    # -- race 2: grant reply raced recovery; stale snapshot decided the
    # install --------------------------------------------------------------
    def refresh_grant(self, key):
        entry = self.cache.get(key)
        value = yield from self.endpoint.call(
            "node1/home", "rfo", key, size_bytes=8, timeout=1000.0)
        if entry is not None:
            self.cache.put(key, value)
        return value

    def refresh_grant_fixed(self, key):
        value = yield from self.endpoint.call(
            "node1/home", "rfo", key, size_bytes=8, timeout=1000.0)
        entry = self.cache.get(key)
        if entry is not None:
            self.cache.put(key, value)
        return value

    # -- race 3: directory entry torn across the storage write ----------
    def home_write(self, key, value, requester):
        entry = self.directory.get(key)
        entry.owner = requester
        yield from self.storage.write(key, value)
        entry.state = EXCLUSIVE

    def home_write_fixed(self, key, value, requester):
        yield from self.storage.write(key, value)
        entry = self.directory.get(key)
        entry.owner = requester
        entry.state = EXCLUSIVE
