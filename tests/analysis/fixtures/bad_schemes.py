"""Known-bad fixture for the SCH* scheme-discipline rules."""


class StorageAPI:
    """Stand-in root; the real one lives in repro.caching.base."""

    consistency = ""


class _HelperBase(StorageAPI):
    """Underscore-prefixed helper base: exempt from the declaration rule."""


class BareScheme(_HelperBase):  # line 14: SCH01 (no consistency declared)
    """Concrete scheme (via the helper base) with no consistency level."""

    def read(self, node_id, key):
        return None


class TtlScheme(StorageAPI):
    """Declared consistency: clean on the declaration check."""

    consistency = "bounded-staleness"


class EmptyLevelScheme(StorageAPI):  # line 27: SCH01 (empty string literal)
    consistency = ""


def build_experiment(cluster):
    scheme = BareScheme()  # line 32: SCH01 (direct construction)
    other = TtlScheme()  # line 33: SCH01 (direct construction)
    return scheme, other
