"""Known-bad determinism snippets (DET*); parsed by tests, never imported."""
import time
import random


def jitter():
    return random.random()


def fanout(members: set):
    for member in members:
        handle(member)


def fanout_sorted(members: set):
    for member in sorted(members):
        handle(member)


def dedup(items):
    return [id(item) for item in items]


def waived_fanout(members: set):
    for member in members:  # noqa: DET02
        handle(member)


def handle(member):
    return member


def fanout_rebound_sorted(members: set):
    # sorted() rebinding kills set-ness: iteration order is fixed.
    members = sorted(members)
    for member in members:
        handle(member)


def fanout_rebound_late(members: set):
    for member in members:      # still a set here: flagged
        handle(member)
    members = sorted(members)
    for member in members:      # a list now: clean
        handle(member)
