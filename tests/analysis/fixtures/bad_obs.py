"""Known-bad flight-recorder idioms; OBS01 must fire at the marked lines."""

from repro.obs.events import CACHE_INSTALL


class Emitter:
    def __init__(self, obs):
        self.obs = obs
        self.sharers = {"node0", "node1"}

    def literal_event_type(self):
        self.obs.emit("cache.install", node="n0")              # line 12

    def formatted_event_type(self, op):
        if self.obs.active:
            self.obs.emit(f"cache.{op}", node="n0")            # line 16

    def interned_ok(self):
        self.obs.emit(CACHE_INSTALL, node="n0")

    def set_order_attr(self):
        if self.obs.active:
            self.obs.emit(CACHE_INSTALL,
                          holders=list(self.sharers))          # line 24

    def sorted_set_attr_ok(self):
        if self.obs.active:
            self.obs.emit(CACHE_INSTALL, holders=sorted(self.sharers))

    def reduced_set_attr_ok(self):
        if self.obs.active:
            self.obs.emit(CACHE_INSTALL, holders=len(self.sharers))

    def unguarded_expensive(self, entries):
        self.obs.emit(CACHE_INSTALL, count=len(entries))       # line 35

    def guarded_expensive_ok(self, entries):
        obs = self.obs
        if obs is not None and obs.active:
            obs.emit(CACHE_INSTALL, count=len(entries))

    def unguarded_cheap_ok(self, node_id):
        self.obs.emit(CACHE_INSTALL, node=node_id)

    def unrelated_emitter_not_flagged(self, signal):
        # .emit() on a non-recorder receiver is not OBS01's business.
        signal.emit("clicked", x=1)
