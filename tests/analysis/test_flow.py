"""CFG builder: golden graphs, structural invariants, path queries.

The golden tests pin ``CFG.describe()`` for three representative shapes
(branch join, loop with continue-out-of-try, raise inside try/finally)
so builder changes surface as readable diffs.  The Hypothesis tests
fuzz nested statement shapes against the two invariants every rule
relies on: each own-body statement lands in exactly one block, and
terminal blocks (raise/return) have no out-edges.
"""

import ast

from hypothesis import given, settings, strategies as st

from repro.analysis import flow

SRC = '''
def diamond(self):
    ready = self.prepare()
    if ready:
        self.fast_path()
    else:
        self.slow_path()
    return ready

def retry_loop(self):
    while self.pending:
        try:
            yield self.endpoint.call()
        except TimeoutError:
            continue
        self.done += 1
    self.finish()

def guarded(self):
    entry = self.cache.get("k")
    yield self.lock.acquire()
    try:
        if entry is None:
            raise KeyError("k")
        entry.value = 1
    finally:
        self.lock.release()
'''

FUNCS = {func.name: func for func in ast.parse(SRC).body}

GOLDEN = {
    "diamond": [
        "B0[Assign@3 If@4] -> [B1,B2]",
        "B1[Expr@5] -> [B3]",
        "B2[Expr@7] -> [B3]",
        "B3[Return@8] -> []",
    ],
    "retry_loop": [
        "B0[] -> [B1]",
        "B1[While@11] -> [B3,B2]",
        "B2[Expr@17] -> []",
        "B3[Try@12] -> [B4]",
        "B4[Expr@13] -> [B5,B6]",
        "B5[Continue@15] -> [B1]",
        "B6[AugAssign@16] -> [B1]",
    ],
    "guarded": [
        "B0[Assign@20 Expr@21 Try@22] -> [B1]",
        "B1[If@23] -> [B2,B3,B4]",
        "B2[Raise@24] -> []",
        "B3[Assign@25] -> [B4]",
        "B4[Expr@27] -> []",
    ],
}


def test_golden_cfgs():
    for name, expected in GOLDEN.items():
        assert flow.build_cfg(FUNCS[name]).describe() == expected, name


# ---------------------------------------------------------------------------
# Hypothesis: random nested statement shapes
# ---------------------------------------------------------------------------
_SIMPLE = st.sampled_from([
    "x = 1", "y = x + 1", "pass", "log(x)", "yield x", "return",
    "raise ValueError()", "break", "continue",
])


def _compound(children):
    body = st.lists(children, min_size=1, max_size=3)
    short = st.lists(children, min_size=0, max_size=2)
    return st.one_of(
        st.tuples(st.just("if"), body, short),
        st.tuples(st.just("while"), body),
        st.tuples(st.just("for"), body),
        st.tuples(st.just("try"), body, body, short),
        st.tuples(st.just("with"), body),
    )


_STMTS = st.recursive(_SIMPLE, _compound, max_leaves=12)
_BODIES = st.lists(_STMTS, min_size=1, max_size=5)


def _render(block, indent):
    lines = []
    for stmt in block:
        if isinstance(stmt, str):
            lines.append(indent + stmt)
            continue
        kind = stmt[0]
        inner = indent + "    "
        if kind == "if":
            lines.append(indent + "if cond:")
            lines.extend(_render(stmt[1], inner))
            if stmt[2]:
                lines.append(indent + "else:")
                lines.extend(_render(stmt[2], inner))
        elif kind == "while":
            lines.append(indent + "while cond:")
            lines.extend(_render(stmt[1], inner))
        elif kind == "for":
            lines.append(indent + "for item in seq:")
            lines.extend(_render(stmt[1], inner))
        elif kind == "try":
            lines.append(indent + "try:")
            lines.extend(_render(stmt[1], inner))
            lines.append(indent + "except OSError:")
            lines.extend(_render(stmt[2], inner))
            if stmt[3]:
                lines.append(indent + "finally:")
                lines.extend(_render(stmt[3], inner))
        else:  # with
            lines.append(indent + "with ctx():")
            lines.extend(_render(stmt[1], inner))
    return lines


def _parse_func(body):
    source = "\n".join(["def fuzzed():"] + _render(body, "    "))
    return ast.parse(source).body[0]


@settings(max_examples=200, deadline=None)
@given(_BODIES)
def test_every_statement_in_exactly_one_block(body):
    func = _parse_func(body)
    cfg = flow.build_cfg(func)
    own = list(flow.own_statements(func.body))
    lowered = list(cfg.statements())
    assert len(lowered) == len(own)
    seen = set()
    for stmt in lowered:
        assert stmt not in seen, "statement lowered into two blocks"
        seen.add(stmt)
    assert seen == set(own)


@settings(max_examples=200, deadline=None)
@given(_BODIES)
def test_terminal_blocks_have_no_out_edges(body):
    cfg = flow.build_cfg(_parse_func(body))
    for block in cfg.blocks:
        if block.terminal:
            assert block.succ == [], block.describe()


@settings(max_examples=100, deadline=None)
@given(_BODIES)
def test_locate_roundtrip(body):
    cfg = flow.build_cfg(_parse_func(body))
    for stmt in cfg.statements():
        block, index = cfg.locate(stmt)
        assert block.stmts[index] is stmt


# ---------------------------------------------------------------------------
# Path queries
# ---------------------------------------------------------------------------
def _stmt_at(func, lineno):
    for stmt in flow.own_statements(func.body):
        if stmt.lineno == lineno:
            return stmt
    raise AssertionError(f"no statement at line {lineno}")


def test_find_path_witness_through_suspension():
    func = FUNCS["guarded"]
    cfg = flow.build_cfg(func)
    snapshot = _stmt_at(func, 20)   # entry = self.cache.get("k")
    use = _stmt_at(func, 25)        # entry.value = 1
    witness = flow.find_path(
        cfg, snapshot, use,
        between=lambda s: flow.contains_yield(s) is not None)
    assert witness is not None and witness.lineno == 21


def test_find_path_kill_blocks_all_routes():
    func = FUNCS["guarded"]
    cfg = flow.build_cfg(func)
    snapshot = _stmt_at(func, 20)
    use = _stmt_at(func, 25)
    blocked = flow.find_path(
        cfg, snapshot, use,
        kill=lambda s: flow.contains_yield(s) is not None)
    assert blocked is None


def test_find_path_loop_back_edge():
    func = FUNCS["retry_loop"]
    cfg = flow.build_cfg(func)
    bump = _stmt_at(func, 16)       # self.done += 1
    call = _stmt_at(func, 13)       # yield self.endpoint.call()
    # The back-edge makes the call reachable again from the bump.
    assert flow.find_path(cfg, bump, call) is call


def test_unreachable_after_infinite_loop():
    func = ast.parse(
        "def spin():\n"
        "    while True:\n"
        "        tick()\n"
        "    after()\n").body[0]
    cfg = flow.build_cfg(func)
    first = _stmt_at(func, 3)
    after = _stmt_at(func, 4)
    assert flow.find_path(cfg, first, after) is None
