"""Interprocedural may-suspend summaries: fixpoint and resolution."""

import ast

from repro.analysis.summaries import ProjectSummaries

SRC = '''
class Agent:
    def leaf_sleep(self):
        yield self.sim.timeout(1.0)

    def delegate(self):
        yield from self.leaf_sleep()

    def chain(self):
        yield from self.delegate()

    def keys_snapshot(self):
        return ("a", "b")

    def emit(self):
        yield from self.keys_snapshot()
        yield self.sim.timeout(1.0)

    def plain(self):
        return 42

    def reads_storage(self):
        yield from self.storage.read("k")


class Impl:
    def read(self):
        return 1
'''

TREE = ast.parse(SRC)
FUNCS = {}
for _cls in TREE.body:
    for _node in _cls.body:
        FUNCS[_node.name] = _node


def summaries():
    return ProjectSummaries([TREE])


def test_direct_yield_suspends():
    assert summaries().may_suspend(FUNCS["leaf_sleep"])


def test_delegation_is_transitive():
    project = summaries()
    assert project.may_suspend(FUNCS["delegate"])
    assert project.may_suspend(FUNCS["chain"])


def test_plain_function_does_not_suspend():
    assert not summaries().may_suspend(FUNCS["plain"])


def test_proven_nonsuspending_delegation():
    # `yield from self.keys_snapshot()` delegates to a yield-free method
    # of the same class: that statement is not a suspension point, while
    # the timeout on the next line is.
    project = summaries()
    emit = FUNCS["emit"]
    first, second = emit.body
    assert project.suspension_in(first, emit) is None
    assert project.suspension_in(second, emit) is not None
    assert project.may_suspend(emit)


def test_known_attrs_not_laundered_by_name_collision():
    # Impl.read never yields, but `self.storage.read(...)` is the
    # storage surface — a bare-name coincidence with an analyzed method
    # must not prove the delegation non-suspending.
    project = summaries()
    func = FUNCS["reads_storage"]
    assert project.stmt_suspends(func.body[0], func)
    assert project.may_suspend(func)


def test_unknown_function_assumed_suspending():
    foreign = ast.parse("def foreign():\n    yield 1\n").body[0]
    assert summaries().may_suspend(foreign)
