"""Regression: two identically-seeded runs produce identical metrics.

This is the runtime half of the determinism contract the static rules
enforce (see tests/analysis/test_clean_tree.py): after fixing the
hash-ordered set iterations and id()-keyed dedup the DET* rules flagged,
a seeded mixed-workload run must be exactly reproducible — every latency
percentile, access counter and message count bit-for-bit equal.
"""

import pytest

from repro.experiments.runner import MixedRunConfig, run_mixed_workload


def _histogram(h) -> tuple:
    return tuple(h._samples)


def _access(stats) -> dict:
    return {
        "ops": {kind.value: n for kind, n in sorted(
            stats.ops.items(), key=lambda item: item[0].value)},
        "latency": {kind.value: _histogram(h) for kind, h in sorted(
            stats.latency.items(), key=lambda item: item[0].value)},
        "invalidations_per_write": _histogram(stats.invalidations_per_write),
        "version_checks": stats.version_checks,
    }


def _fingerprint(outcome) -> dict:
    return {
        "per_app": {
            app: (stats.mean_latency_ms, stats.p50_latency_ms,
                  stats.p99_latency_ms, stats.completed,
                  stats.storage_fraction)
            for app, stats in sorted(outcome.per_app.items())
        },
        "access": _access(outcome.access),
        "sharer_samples": list(outcome.sharer_samples),
        "cache_peaks": dict(outcome.cache_peaks),
        "network_messages": outcome.network_messages,
        "storage_reads": outcome.storage_reads,
        "storage_writes": outcome.storage_writes,
    }


@pytest.mark.parametrize("scheme", ["concord", "faast"])
def test_seeded_runs_reproduce_exactly(scheme):
    def run():
        config = MixedRunConfig(
            scheme=scheme, num_nodes=2, cores_per_node=4,
            apps=("TrainT", "SocNet"),
            total_rps=25.0, utilization=None,
            duration_ms=700.0, warmup_ms=250.0, drain_ms=1200.0,
            sample_every_ms=100.0, seed=2024,
        )
        return run_mixed_workload(config)

    first = _fingerprint(run())
    second = _fingerprint(run())
    assert first == second


def test_different_seeds_diverge():
    def run(seed):
        config = MixedRunConfig(
            scheme="concord", num_nodes=2, cores_per_node=4,
            apps=("SocNet",), total_rps=25.0, utilization=None,
            duration_ms=700.0, warmup_ms=250.0, drain_ms=1200.0, seed=seed,
        )
        return run_mixed_workload(config)

    first = _fingerprint(run(1))
    second = _fingerprint(run(2))
    assert first != second  # the seed actually reaches the workload
