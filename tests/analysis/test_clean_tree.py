"""Tier-1 gate: the shipped tree passes its own static analysis.

This is the CI wiring of the determinism contract — any new ambient
randomness, unordered set iteration, non-event yield, blocking I/O or
unbalanced lock acquire in ``src/repro`` fails the default pytest run.
Waive deliberate exceptions inline with ``# noqa: RULEID`` or accept
them in ``analysis-baseline.json`` at the repo root.
"""

from pathlib import Path

from repro.analysis import Analyzer, Baseline
from repro.analysis.cli import BASELINE_NAME
from repro.analysis.engine import BASELINE_FIXME_REASON

REPO_ROOT = Path(__file__).resolve().parents[2]
SOURCE_TREE = REPO_ROOT / "src" / "repro"


def _baseline() -> Baseline:
    path = REPO_ROOT / BASELINE_NAME
    return Baseline.load(path) if path.exists() else Baseline()


def test_source_tree_is_clean():
    report = Analyzer(baseline=_baseline()).run([SOURCE_TREE])
    assert report.files > 80, "analyzer saw suspiciously few files"
    assert not report.parse_errors, report.parse_errors
    rendered = "\n".join(
        f"{f.location}: {f.rule} {f.message}" for f in report.findings)
    assert not report.findings, f"static analysis findings:\n{rendered}"


def test_analysis_package_itself_is_analyzed():
    report = Analyzer().run([SOURCE_TREE / "analysis"])
    assert report.files >= 8
    assert not report.findings


def test_baseline_entries_carry_rationale():
    """Every accepted finding must say *why* it is acceptable.

    The waiver policy (DESIGN.md): a baseline entry without a written
    one-line justification is indistinguishable from a rubber-stamped
    bug, so the FIXME placeholder ``--write-baseline`` emits for new
    entries must never be committed.
    """
    path = REPO_ROOT / BASELINE_NAME
    assert path.exists(), "analysis-baseline.json missing at repo root"
    baseline = Baseline.load(path)
    for key, reason in sorted(baseline.entries.items()):
        assert reason and reason.strip(), f"empty rationale for {key}"
        assert reason != BASELINE_FIXME_REASON, (
            f"unjustified suppression {key}: replace the FIXME with a "
            "one-line reason why this finding is acceptable")
