"""The agent-op vs model-checker coverage cross-check."""

import json
from pathlib import Path

from repro.analysis import protocol_surface


def test_shipped_tree_fully_covered():
    report = protocol_surface.check()
    assert report["ok"], report["problems"]
    assert set(report["agent_ops"]) == set(protocol_surface.OP_COVERAGE)
    # Every lifecycle transition we acknowledge actually exists.
    assert set(report["lifecycle_events"]) == set(
        protocol_surface.LIFECYCLE_EVENTS)
    assert report["unmapped_model_events"] == []


def test_agent_op_extraction_matches_protocol():
    ops = protocol_surface.agent_ops()
    assert ops == {"read", "write", "rfo", "fetch_downgrade",
                   "invalidate", "external_write", "dir_replicate"}


def test_model_event_extraction():
    events = protocol_surface.model_events()
    assert {"Read", "Write", "RecoverOnFail"} <= events


def test_uncovered_op_fails(tmp_path):
    agent = tmp_path / "agent.py"
    agent.write_text(
        "class A:\n"
        "    def _install(self):\n"
        "        handlers = {\n"
        "            'read': self._handle_read,\n"
        "            'mystery_op': self._handle_mystery,\n"
        "        }\n"
    )
    model = tmp_path / "model.py"
    model.write_text("def t(add, node):\n    add(f'Read({node})', None)\n")
    report = protocol_surface.check(agent_path=agent, model_path=model)
    assert not report["ok"]
    assert any("mystery_op" in problem for problem in report["problems"])
    # Ops dropped from the agent make their OP_COVERAGE entries stale.
    assert any("no longer registers" in problem
               for problem in report["problems"])


def test_vanished_model_event_fails(tmp_path):
    agent = tmp_path / "agent.py"
    agent.write_text(
        "class A:\n"
        "    def _install(self):\n"
        "        handlers = {'read': self._handle_read,\n"
        "                    'write': self._handle_write,\n"
        "                    'rfo': self._handle_rfo,\n"
        "                    'fetch_downgrade': self._handle_fd,\n"
        "                    'invalidate': self._handle_inv,\n"
        "                    'external_write': self._handle_ext}\n"
    )
    model = tmp_path / "model.py"
    model.write_text("def t(add, node):\n    add(f'Read({node})', None)\n")
    report = protocol_surface.check(agent_path=agent, model_path=model)
    assert not report["ok"]
    assert any("Write" in problem and "no longer declares" in problem
               for problem in report["problems"])


def test_cli_json_output(capsys):
    code = protocol_surface.main(["--format=json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True
    assert payload["problems"] == []


def test_cli_text_output(capsys):
    code = protocol_surface.main([])
    out = capsys.readouterr().out
    assert code == 0
    assert "protocol-surface coverage: OK" in out
