"""Each rule fires on its known-bad fixture at the expected location."""

from pathlib import Path

import pytest

from repro.analysis import Analyzer

FIXTURES = Path(__file__).parent / "fixtures"


def run_on(filename: str, select=None):
    analyzer = Analyzer(select=select)
    return analyzer.run([FIXTURES / filename])


def keys(report):
    return {(f.rule, f.line) for f in report.findings}


class TestDeterminismRules:
    @pytest.fixture(scope="class")
    def report(self):
        return Analyzer().run([FIXTURES / "bad_determinism.py"])

    def test_banned_import_and_call(self, report):
        assert ("DET01", 2) in keys(report)   # import time
        assert ("DET01", 7) in keys(report)   # random.random()

    def test_plain_random_import_alone_not_flagged(self, report):
        # Only *uses* of the global generator are banned; a module may
        # import random to construct seeded random.Random instances.
        assert ("DET01", 3) not in keys(report)

    def test_set_iteration_flagged(self, report):
        assert ("DET02", 11) in keys(report)

    def test_sorted_iteration_clean(self, report):
        assert not any(f.rule == "DET02" and f.symbol == "fanout_sorted"
                       for f in report.findings)

    def test_id_call_flagged(self, report):
        assert ("DET03", 21) in keys(report)

    def test_inline_waiver_suppresses(self, report):
        assert report.waived == 1
        assert not any(f.symbol == "waived_fanout" for f in report.findings)

    def test_sorted_rebinding_kills_setness(self, report):
        # members = sorted(members) makes the name a list; iterating it
        # afterwards is deterministic and must not be flagged.
        assert not any(f.rule == "DET02"
                       and f.symbol == "fanout_rebound_sorted"
                       for f in report.findings)

    def test_setness_is_position_aware(self, report):
        # Before the sorted() rebinding the name is still a set (line
        # 41, flagged); after it, a list (line 44, clean).
        assert ("DET02", 41) in keys(report)
        assert not any(f.rule == "DET02" and f.line == 44
                       for f in report.findings)


class TestSimProcessRules:
    @pytest.fixture(scope="class")
    def report(self):
        return Analyzer().run([FIXTURES / "bad_simprocess.py"])

    def test_non_event_yield_flagged(self, report):
        assert ("SIM01", 6) in keys(report)

    def test_value_generator_exempt(self, report):
        # Yields only tuples, is never kernel-stepped: not a sim process.
        assert not any(f.symbol == "value_generator"
                       for f in report.findings)

    def test_blocking_io_flagged(self, report):
        assert ("SIM02", 11) in keys(report)

    def test_kernel_private_state_flagged(self, report):
        assert ("SIM03", 23) in keys(report)


class TestProtocolRules:
    @pytest.fixture(scope="class")
    def report(self):
        return Analyzer().run([FIXTURES / "bad_protocol.py"])

    def test_unregistered_method_flagged(self, report):
        found = [f for f in report.findings
                 if f.rule == "PRO01" and "missing_method" in f.message]
        assert found and found[0].line == 17
        assert found[0].severity == "error"

    def test_dead_handler_warned(self, report):
        found = [f for f in report.findings
                 if f.rule == "PRO01" and "never called" in f.message]
        assert found and found[0].severity == "warning"

    def test_unresolved_handler_reference(self, report):
        assert any(f.rule == "PRO01" and "_handle_ghost" in f.message
                   for f in report.findings)

    def test_registered_and_called_method_clean(self, report):
        # "orphan" is registered and invoked: no surface-match finding.
        assert not any(f.rule == "PRO01" and "'orphan'" in f.message
                       for f in report.findings)

    def test_call_without_timeout_flagged(self, report):
        assert ("PRO02", 23) in keys(report)

    def test_call_with_timeout_clean(self, report):
        assert not any(f.rule == "PRO02" and f.symbol == "BadAgent.ask"
                       for f in report.findings)

    def test_lock_unprotected_yield(self, report):
        found = [f for f in report.findings
                 if f.rule == "PRO03" and f.symbol == "BadAgent.leaky"]
        assert found and found[0].line == 27
        assert "yield" in found[0].message

    def test_lock_never_released(self, report):
        assert any(f.rule == "PRO03"
                   and f.symbol == "BadAgent.never_releases"
                   for f in report.findings)

    def test_try_finally_discipline_clean(self, report):
        assert not any(f.symbol == "BadAgent.disciplined"
                       for f in report.findings)

    def test_release_in_else_of_nested_try_flagged(self, report):
        # The release sits in the else: of a try nested inside the
        # finally — the handler path leaks the lock.  Regression for the
        # containment-based scan that accepted this.
        found = [f for f in report.findings
                 if f.rule == "PRO03"
                 and f.symbol == "BadAgent.sneaky_else_release"]
        assert found and "yield" in found[0].message

    def test_conditional_release_in_finally_clean(self, report):
        assert not any(f.rule == "PRO03"
                       and f.symbol == "BadAgent.escalated_conditional"
                       for f in report.findings)

    def test_assigned_grant_clean(self, report):
        # grant = lock.acquire(); yield grant — the yield completes the
        # acquire, it does not escape with the lock held.
        assert not any(f.rule == "PRO03"
                       and f.symbol == "BadAgent.grant_assigned"
                       for f in report.findings)


class TestAtomicityRules:
    @pytest.fixture(scope="class")
    def report(self):
        return Analyzer(select=["ATM01", "ATM02", "INT01"]).run(
            [FIXTURES / "bad_atomicity.py"])

    def test_planted_races_and_nothing_else(self, report):
        # The three pre-fix protocol races, each caught by its rule; the
        # *_fixed twins contribute nothing.
        assert keys(report) == {
            ("ATM01", 25),   # stale entry.state guard after lock wait
            ("INT01", 27),   # cache fields mutated before storage commit
            ("ATM01", 50),   # stale snapshot decides the install
            ("INT01", 65),   # directory owner set before storage write
            ("ATM02", 67),   # entry torn across the storage suspension
        }

    def test_stale_guard_race(self, report):
        found = [f for f in report.findings
                 if f.rule == "ATM01"
                 and f.symbol == "RacyAgent.write_direct"]
        assert found and "entry" in found[0].message

    def test_torn_directory_update(self, report):
        found = [f for f in report.findings
                 if f.rule == "ATM02"
                 and f.symbol == "RacyAgent.home_write"]
        assert found and "suspension" in found[0].message

    def test_fixed_versions_clean(self, report):
        assert not any(f.symbol.endswith("_fixed")
                       for f in report.findings)


class TestTracingRules:
    @pytest.fixture(scope="class")
    def report(self):
        return Analyzer().run([FIXTURES / "core" / "bad_tracing.py"])

    def test_call_without_trace_flagged(self, report):
        assert any(f.rule == "TRC01"
                   and f.symbol == "BadTracedAgent.dropped_call"
                   for f in report.findings)

    def test_notify_without_trace_flagged(self, report):
        assert any(f.rule == "TRC01"
                   and f.symbol == "BadTracedAgent.dropped_notify"
                   for f in report.findings)

    def test_annotated_site_clean(self, report):
        assert not any(f.rule == "TRC01"
                       and f.symbol == "BadTracedAgent.connected_call"
                       for f in report.findings)

    def test_scoped_to_protocol_layers(self):
        # The same RPC-without-trace= pattern outside core//caching/ is
        # not TRC01's business (bad_protocol.py has such sites).
        report = run_on("bad_protocol.py", select=["TRC01"])
        assert not report.findings


class TestTelemetryRules:
    @pytest.fixture(scope="class")
    def report(self):
        return Analyzer().run([FIXTURES / "bad_telemetry.py"])

    def test_unlabeled_instruments_flagged(self, report):
        assert ("MET01", 10) in keys(report)   # counter without labelnames
        assert ("MET01", 13) in keys(report)   # gauge without labelnames
        assert ("MET01", 20) in keys(report)   # histogram without labelnames

    def test_explicit_labelnames_clean(self, report):
        assert not any(f.rule == "MET01"
                       and f.symbol == "Instrumented.labeled_ok"
                       for f in report.findings)

    def test_set_materializing_lambda_flagged(self, report):
        assert any(f.rule == "MET01"
                   and f.symbol == "Instrumented.bad_lambda_callback"
                   for f in report.findings)

    def test_set_comprehension_callback_flagged(self, report):
        assert any(f.rule == "MET01"
                   and f.symbol == "Instrumented.bad_comprehension_callback"
                   for f in report.findings)

    def test_order_insensitive_callbacks_clean(self, report):
        for symbol in ("Instrumented.good_reduction_callback",
                       "Instrumented.good_sorted_callback"):
            assert not any(f.rule == "MET01" and f.symbol == symbol
                           for f in report.findings)

    def test_local_def_callback_flagged(self, report):
        assert any(f.rule == "MET01" and f.line == 37
                   for f in report.findings)

    def test_non_registry_receiver_clean(self, report):
        assert not any(
            f.rule == "MET01"
            and f.symbol == "Instrumented.unrelated_builder_not_flagged"
            for f in report.findings)


class TestBenchRules:
    @pytest.fixture(scope="class")
    def report(self):
        return Analyzer(select=["BEN01"]).run([FIXTURES / "bad_bench.py"])

    def test_fstring_target_flagged(self, report):
        assert any(f.rule == "BEN01" and f.symbol == "target_fstring"
                   for f in report.findings)

    def test_callable_object_target_flagged(self, report):
        assert any(f.rule == "BEN01"
                   and f.symbol == "target_callable_object"
                   for f in report.findings)

    def test_bad_format_target_flagged(self, report):
        assert any(f.rule == "BEN01" and f.symbol == "target_bad_format"
                   for f in report.findings)

    def test_computed_target_flagged(self, report):
        assert any(f.rule == "BEN01" and f.symbol == "target_computed_name"
                   for f in report.findings)

    def test_unserializable_args_flagged(self, report):
        for symbol in ("args_with_set", "args_with_set_comp",
                       "args_with_lambda", "args_with_bytes"):
            assert any(f.rule == "BEN01" and f.symbol == symbol
                       for f in report.findings), symbol

    def test_dynamic_values_and_foreign_modules_clean(self, report):
        for symbol in ("clean_dynamic_values", "clean_unanalyzed_module"):
            assert not any(f.rule == "BEN01" and f.symbol == symbol
                           for f in report.findings), symbol

    def test_inline_waiver_suppresses(self, report):
        assert not any(f.symbol == "clean_sorted_list"
                       for f in report.findings)
        assert report.waived >= 1

    def test_cross_module_resolution(self):
        report = Analyzer(select=["BEN01"]).run([FIXTURES / "benchres"])
        assert [(f.rule, f.line) for f in report.findings] == [("BEN01", 7)]


class TestObsRules:
    @pytest.fixture(scope="class")
    def report(self):
        return Analyzer().run([FIXTURES / "bad_obs.py"])

    def test_literal_event_type_flagged(self, report):
        assert ("OBS01", 12) in keys(report)

    def test_formatted_event_type_flagged(self, report):
        assert ("OBS01", 16) in keys(report)

    def test_interned_constant_clean(self, report):
        assert not any(f.rule == "OBS01"
                       and f.symbol == "Emitter.interned_ok"
                       for f in report.findings)

    def test_set_materializing_attr_flagged(self, report):
        assert ("OBS01", 24) in keys(report)

    def test_order_safe_set_attrs_clean(self, report):
        for symbol in ("Emitter.sorted_set_attr_ok",
                       "Emitter.reduced_set_attr_ok"):
            assert not any(f.rule == "OBS01" and f.symbol == symbol
                           for f in report.findings)

    def test_unguarded_expensive_args_flagged(self, report):
        assert ("OBS01", 35) in keys(report)

    def test_guarded_and_cheap_emits_clean(self, report):
        for symbol in ("Emitter.guarded_expensive_ok",
                       "Emitter.unguarded_cheap_ok"):
            assert not any(f.rule == "OBS01" and f.symbol == symbol
                           for f in report.findings)

    def test_non_recorder_receiver_clean(self, report):
        assert not any(
            f.rule == "OBS01"
            and f.symbol == "Emitter.unrelated_emitter_not_flagged"
            for f in report.findings)


class TestSchemeRules:
    @pytest.fixture(scope="class")
    def report(self):
        return Analyzer().run([FIXTURES / "bad_schemes.py"])

    def test_missing_consistency_flagged(self, report):
        assert ("SCH01", 14) in keys(report)

    def test_empty_consistency_literal_flagged(self, report):
        assert ("SCH01", 27) in keys(report)

    def test_declared_scheme_class_clean(self, report):
        assert not any(f.rule == "SCH01" and f.symbol == "TtlScheme"
                       for f in report.findings)

    def test_helper_base_exempt(self, report):
        assert not any(f.rule == "SCH01" and f.symbol == "_HelperBase"
                       for f in report.findings)

    def test_direct_construction_flagged(self, report):
        # Both instantiations in build_experiment — the scheme lives in
        # the same module, but the module is not under a schemes/ dir.
        assert ("SCH01", 32) in keys(report)
        assert ("SCH01", 33) in keys(report)

    def test_builder_module_construction_allowed(self):
        report = Analyzer().run(
            [FIXTURES / "schemes" / "clean_schemes.py"])
        assert not any(f.rule == "SCH01" for f in report.findings)


def test_select_restricts_rules():
    report = run_on("bad_determinism.py", select=["DET02"])
    assert {f.rule for f in report.findings} == {"DET02"}


def test_unknown_select_rejected():
    with pytest.raises(ValueError):
        Analyzer(select=["NOPE99"])
