"""Engine behavior: baseline suppression, CLI formats, exit codes."""

import json
from pathlib import Path

from repro.analysis import Analyzer, Baseline, all_rules
from repro.analysis.cli import main as cli_main
from repro.analysis.engine import Finding

FIXTURES = Path(__file__).parent / "fixtures"


class TestBaseline:
    def test_round_trip_suppresses(self, tmp_path):
        report = Analyzer().run([FIXTURES / "bad_determinism.py"])
        assert report.findings
        baseline_path = tmp_path / "analysis-baseline.json"
        Baseline.dump(report.findings, baseline_path)

        rerun = Analyzer(baseline=Baseline.load(baseline_path)).run(
            [FIXTURES / "bad_determinism.py"])
        assert rerun.findings == []
        assert rerun.baselined == len(report.findings)
        assert rerun.exit_code() == 0

    def test_matches_on_symbol_not_line(self):
        baseline = Baseline([{
            "rule": "DET02",
            "path": "tests/analysis/fixtures/bad_determinism.py",
            "symbol": "fanout",
        }])
        moved = Finding(
            rule="DET02", path="tests/analysis/fixtures/bad_determinism.py",
            line=999, col=4, message="m", symbol="fanout")
        assert baseline.suppresses(moved)

    def test_other_symbol_not_suppressed(self):
        baseline = Baseline([{"rule": "DET02", "path": "p", "symbol": "f"}])
        other = Finding(rule="DET02", path="p", line=1, col=0,
                        message="m", symbol="g")
        assert not baseline.suppresses(other)


class TestReport:
    def test_exit_codes(self):
        report = Analyzer().run([FIXTURES / "bad_protocol.py"])
        assert report.exit_code() == 1
        clean = Analyzer(select=["DET01"]).run([FIXTURES / "bad_protocol.py"])
        assert clean.findings == []
        assert clean.exit_code() == 0

    def test_strict_fails_on_warnings(self):
        report = Analyzer(select=["PRO01"]).run(
            [FIXTURES / "bad_protocol.py"])
        assert report.warnings
        errors_only = [f for f in report.findings if f.severity == "error"]
        warning_report = Analyzer(select=["PRO01"]).run(
            [FIXTURES / "bad_protocol.py"])
        warning_report.findings = [
            f for f in warning_report.findings if f.severity == "warning"]
        assert warning_report.exit_code(strict=False) == 0
        assert warning_report.exit_code(strict=True) == 1
        assert errors_only  # the fixture still has PRO01 errors


class TestCli:
    def test_json_format(self, capsys):
        code = cli_main([
            "--format", "json", "--no-baseline",
            str(FIXTURES / "bad_determinism.py"),
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["errors"] == len(payload["findings"]) > 0
        first = payload["findings"][0]
        assert {"rule", "path", "line", "col", "message",
                "severity", "symbol"} <= set(first)

    def test_text_format_mentions_location(self, capsys):
        code = cli_main(["--no-baseline",
                         str(FIXTURES / "bad_determinism.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "bad_determinism.py:2" in out
        assert "DET01" in out
        assert "1 waived" in out

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rules():
            assert rule_id in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        target = tmp_path / "tree"
        target.mkdir()
        (target / "pyproject.toml").write_text("[project]\nname='x'\n")
        bad = target / "mod.py"
        bad.write_text("def f(s: set):\n    for x in s:\n        print(x)\n")
        assert cli_main(["--write-baseline", str(bad)]) == 0
        capsys.readouterr()
        assert cli_main([str(bad)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out


def test_rule_catalogue_complete():
    ids = set(all_rules())
    assert {"DET01", "DET02", "DET03", "SIM01", "SIM02", "SIM03",
            "PRO01", "PRO02", "PRO03"} <= ids
