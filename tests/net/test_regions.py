"""Unit tests for the multi-region topology and RTT matrix."""

import pytest

from repro.net.regions import RegionTopology

NODES = [f"node{i}" for i in range(6)]


class TestConstruction:
    def test_even_round_robins_nodes(self):
        topo = RegionTopology.even(NODES, regions=("east", "west"))
        assert topo.nodes_in("east") == ("node0", "node2", "node4")
        assert topo.nodes_in("west") == ("node1", "node3", "node5")

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionTopology((), {})
        with pytest.raises(ValueError):
            RegionTopology(("a", "a"), {})
        with pytest.raises(ValueError):
            RegionTopology(("a",), {"n": "ghost"})
        with pytest.raises(ValueError):
            RegionTopology(("a", "b"), {}, extra_rtt_ms=-1.0)
        with pytest.raises(ValueError):
            RegionTopology(("a", "b"), {}, storage_region="ghost")
        with pytest.raises(ValueError):
            RegionTopology(("a", "b"), {},
                           extra_rtt_ms={("a", "ghost"): 10.0})

    def test_matrix_is_symmetric(self):
        topo = RegionTopology(
            ("a", "b", "c"), {},
            extra_rtt_ms={("a", "b"): 40.0, ("b", "c"): 80.0})
        assert topo.extra_rtt_ms("a", "b") == topo.extra_rtt_ms("b", "a") == 40.0
        assert topo.extra_rtt_ms("c", "b") == 80.0
        # Unlisted pairs cost nothing extra.
        assert topo.extra_rtt_ms("a", "c") == 0.0


class TestCosts:
    def test_intra_region_is_exactly_free(self):
        """The zero-extra guarantee that keeps single-region runs
        byte-identical to runs with no topology at all."""
        topo = RegionTopology.even(NODES, regions=("east", "west"))
        assert topo.extra_rtt_ms("east", "east") == 0.0
        assert topo.extra_one_way_ms("node0", "node2") == 0.0
        assert topo.storage_extra_ms("node0") == 0.0

    def test_cross_region_pays_half_rtt_each_way(self):
        topo = RegionTopology.even(NODES, extra_rtt_ms=60.0)
        assert topo.extra_one_way_ms("node0", "node1") == 30.0
        assert topo.extra_one_way_ms("node1", "node0") == 30.0

    def test_storage_pays_full_rtt_from_remote_region(self):
        topo = RegionTopology.even(NODES, extra_rtt_ms=60.0)
        # Storage defaults to the first region ("east" = node0's).
        assert topo.storage_extra_ms("node1") == 60.0

    def test_control_plane_resolves_to_default_region(self):
        topo = RegionTopology.even(NODES, extra_rtt_ms=60.0)
        assert topo.region_of("coordinator") == "east"
        assert topo.extra_one_way_ms("coordinator", "node0") == 0.0
        assert topo.extra_one_way_ms("coordinator", "node1") == 30.0

    def test_nodes_in_unknown_region_raises(self):
        topo = RegionTopology.even(NODES)
        with pytest.raises(ValueError):
            topo.nodes_in("ghost")
