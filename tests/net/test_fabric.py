"""Unit tests for the message fabric."""

import pytest

from repro.config import KB, LatencyModel
from repro.net import Endpoint, Message, Network, sizeof
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim, LatencyModel())


def make_sink(net, node, service="svc"):
    """Endpoint that records every raw message it receives."""
    ep = Endpoint(net, node, service)
    ep.received = []
    ep._receive, original = (lambda m: ep.received.append(m)), ep._receive
    return ep


class TestSizeof:
    def test_none_is_zero(self):
        assert sizeof(None) == 0

    def test_bytes_and_str(self):
        assert sizeof(b"abcd") == 4
        assert sizeof("hello") == 5

    def test_numbers(self):
        assert sizeof(3) == 8
        assert sizeof(2.5) == 8
        assert sizeof(True) == 1

    def test_containers_sum(self):
        assert sizeof([b"ab", b"c"]) == 3
        assert sizeof({"k": b"abc"}) == 1 + 3

    def test_declared_size_wins(self):
        class Declared:
            size_bytes = 12 * KB

        assert sizeof(Declared()) == 12 * KB


class TestNetworkDelivery:
    def test_remote_delivery_has_latency(self, sim, net):
        sink = make_sink(net, "node1")
        src = Endpoint(net, "node0", "svc")
        net.send(Message("node0/svc", "node1/svc", "ping", "x", 0))
        sim.run()
        assert len(sink.received) == 1
        assert sim.now == pytest.approx(net.latency.one_way(0))
        del src

    def test_local_delivery_is_instant(self, sim, net):
        sink = make_sink(net, "node0", "b")
        Endpoint(net, "node0", "a")
        net.send(Message("node0/a", "node0/b", "ping", "x", 0))
        sim.run()
        assert len(sink.received) == 1
        assert sim.now == 0.0

    def test_payload_size_slows_delivery(self, sim, net):
        make_sink(net, "node1")
        Endpoint(net, "node0", "svc")
        net.send(Message("node0/svc", "node1/svc", "data", "x", 100 * KB))
        sim.run()
        assert sim.now == pytest.approx(net.latency.one_way(100 * KB))
        assert sim.now > net.latency.one_way(0)

    def test_duplicate_address_rejected(self, net):
        Endpoint(net, "node0", "svc")
        with pytest.raises(ValueError):
            Endpoint(net, "node0", "svc")

    def test_message_to_unknown_endpoint_dropped(self, sim, net):
        Endpoint(net, "node0", "svc")
        net.send(Message("node0/svc", "node9/ghost", "ping", "x", 0))
        sim.run()
        assert net.stats.dropped == 1

    def test_stats_record_kind_and_bytes(self, sim, net):
        make_sink(net, "node1")
        Endpoint(net, "node0", "svc")
        net.send(Message("node0/svc", "node1/svc", "inv", "x", 10))
        net.send(Message("node0/svc", "node1/svc", "inv", "x", 20))
        sim.run()
        assert net.stats.messages == 2
        assert net.stats.bytes == 30
        assert net.stats.by_kind["inv"] == 2


class TestNodeFailures:
    def test_message_to_down_node_dropped(self, sim, net):
        sink = make_sink(net, "node1")
        Endpoint(net, "node0", "svc")
        net.fail_node("node1")
        net.send(Message("node0/svc", "node1/svc", "ping", "x", 0))
        sim.run()
        assert sink.received == []
        assert net.stats.dropped == 1

    def test_message_from_down_node_dropped(self, sim, net):
        sink = make_sink(net, "node1")
        Endpoint(net, "node0", "svc")
        net.fail_node("node0")
        net.send(Message("node0/svc", "node1/svc", "ping", "x", 0))
        sim.run()
        assert sink.received == []

    def test_inflight_message_to_node_that_fails_is_dropped(self, sim, net):
        sink = make_sink(net, "node1")
        Endpoint(net, "node0", "svc")
        net.send(Message("node0/svc", "node1/svc", "ping", "x", 0))
        net.fail_node("node1")  # fails while message is in flight
        sim.run()
        assert sink.received == []

    def test_restore_node_resumes_delivery(self, sim, net):
        sink = make_sink(net, "node1")
        Endpoint(net, "node0", "svc")
        net.fail_node("node1")
        net.restore_node("node1")
        net.send(Message("node0/svc", "node1/svc", "ping", "x", 0))
        sim.run()
        assert len(sink.received) == 1

    def test_is_down(self, net):
        net.fail_node("node3")
        assert net.is_down("node3")
        assert not net.is_down("node4")
