"""Unit tests for the RPC layer."""

import pytest

from repro.config import KB, LatencyModel
from repro.net import Endpoint, Network, Reply, RpcError, RpcTimeout
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim, LatencyModel())


def echo_handler(endpoint, src, args):
    return Reply(args)
    yield  # pragma: no cover - generator marker


def slow_handler(endpoint, src, args):
    yield endpoint.sim.timeout(50.0)
    return Reply("late")


class TestCall:
    def test_round_trip_value(self, sim, net):
        server = Endpoint(net, "node1", "svc")
        server.register_handler("echo", echo_handler)
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            value = yield from client.call("node1/svc", "echo", {"k": 1})
            return (value, sim.now)

        p = sim.spawn(caller(sim))
        sim.run()
        value, when = p.value
        assert value == {"k": 1}
        # Request and echoed response each carry the 9-byte payload.
        assert when == pytest.approx(2 * net.latency.one_way(sizeof_dict()))

    def test_reply_size_drives_latency(self, sim, net):
        server = Endpoint(net, "node1", "svc")

        def big_handler(endpoint, src, args):
            return Reply("data", size_bytes=200 * KB)
            yield  # pragma: no cover

        server.register_handler("fetch", big_handler)
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            yield from client.call("node1/svc", "fetch", None, size_bytes=0)
            return sim.now

        p = sim.spawn(caller(sim))
        sim.run()
        expected = net.latency.one_way(0) + net.latency.one_way(200 * KB)
        assert p.value == pytest.approx(expected)

    def test_timeout_on_dead_destination(self, sim, net):
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            try:
                yield from client.call("node9/gone", "echo", None, timeout=100.0)
            except RpcTimeout as exc:
                return ("timeout", exc.dst, sim.now)

        p = sim.spawn(caller(sim))
        sim.run()
        assert p.value == ("timeout", "node9/gone", 100.0)

    def test_timeout_when_server_crashes_mid_call(self, sim, net):
        server = Endpoint(net, "node1", "svc")
        server.register_handler("slow", slow_handler)
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            try:
                yield from client.call("node1/svc", "slow", None, timeout=200.0)
            except RpcTimeout:
                return "timeout"

        def crasher(sim):
            yield sim.timeout(10.0)  # after request delivered, before reply
            net.fail_node("node1")

        p = sim.spawn(caller(sim))
        sim.spawn(crasher(sim))
        sim.run()
        assert p.value == "timeout"

    def test_unknown_method_raises_rpc_error(self, sim, net):
        Endpoint(net, "node1", "svc")
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            try:
                yield from client.call("node1/svc", "nope", None)
            except RpcError as exc:
                return str(exc)

        p = sim.spawn(caller(sim))
        sim.run()
        assert "no handler" in p.value

    def test_handler_rpc_error_propagates(self, sim, net):
        server = Endpoint(net, "node1", "svc")

        def failing(endpoint, src, args):
            raise RpcError("declined")
            yield  # pragma: no cover

        server.register_handler("fail", failing)
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            try:
                yield from client.call("node1/svc", "fail", None)
            except RpcError as exc:
                return str(exc)

        p = sim.spawn(caller(sim))
        sim.run()
        assert p.value == "declined"

    def test_late_response_after_timeout_is_ignored(self, sim, net):
        server = Endpoint(net, "node1", "svc")
        server.register_handler("slow", slow_handler)
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            try:
                yield from client.call("node1/svc", "slow", None, timeout=5.0)
            except RpcTimeout:
                pass
            yield sim.timeout(500.0)
            return "done"

        p = sim.spawn(caller(sim))
        sim.run()
        assert p.value == "done"

    def test_concurrent_calls_multiplex(self, sim, net):
        server = Endpoint(net, "node1", "svc")
        server.register_handler("echo", echo_handler)
        client = Endpoint(net, "node0", "svc")
        results = []

        def caller(sim, tag):
            value = yield from client.call("node1/svc", "echo", tag)
            results.append(value)

        for tag in ("a", "b", "c"):
            sim.spawn(caller(sim, tag))
        sim.run()
        assert sorted(results) == ["a", "b", "c"]


class TestNotify:
    def test_notify_invokes_handler_without_response(self, sim, net):
        server = Endpoint(net, "node1", "svc")
        seen = []

        def handler(endpoint, src, args):
            seen.append((src, args))
            return None
            yield  # pragma: no cover

        server.register_handler("ping", handler)
        client = Endpoint(net, "node0", "svc")
        client.notify("node1/svc", "ping", "hello")
        sim.run()
        assert seen == [("node0/svc", "hello")]
        # Only the request traveled; no response message.
        assert net.stats.messages == 1


class TestEndpointLifecycle:
    def test_close_unregisters(self, sim, net):
        ep = Endpoint(net, "node0", "svc")
        ep.close()
        assert net.endpoint("node0/svc") is None
        # Address can be reused after close.
        Endpoint(net, "node0", "svc")

    def test_crash_interrupts_inflight_handler(self, sim, net):
        server = Endpoint(net, "node1", "svc")
        progress = []

        def handler(endpoint, src, args):
            progress.append("start")
            yield endpoint.sim.timeout(100.0)
            progress.append("finish")  # must never run

        server.register_handler("work", handler)
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            try:
                yield from client.call("node1/svc", "work", None, timeout=50.0)
            except RpcTimeout:
                pass

        def crasher(sim):
            yield sim.timeout(10.0)
            net.fail_node("node1")

        sim.spawn(caller(sim))
        sim.spawn(crasher(sim))
        sim.run()
        assert progress == ["start"]


class TestMetaPiggyback:
    """Scheme metadata rides requests and replies (the causal scheme's
    vector clocks use exactly this channel)."""

    def test_request_meta_reaches_meta_handler(self, sim, net):
        server = Endpoint(net, "node1", "svc")
        seen = []

        def handler(endpoint, src, args, meta):
            seen.append(meta)
            return Reply("ok")
            yield  # pragma: no cover - generator marker

        server.register_handler("put", handler, meta=True)
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            return (yield from client.call(
                "node1/svc", "put", "payload", meta={"vc": 3}))

        p = sim.spawn(caller(sim))
        sim.run()
        assert p.value == "ok"
        assert seen == [{"vc": 3}]

    def test_plain_handler_never_sees_meta(self, sim, net):
        server = Endpoint(net, "node1", "svc")
        server.register_handler("echo", echo_handler)  # 3-arg handler
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            return (yield from client.call(
                "node1/svc", "echo", "x", meta="ignored"))

        p = sim.spawn(caller(sim))
        sim.run()
        assert p.value == "x"

    def test_reply_meta_returned_with_with_meta(self, sim, net):
        server = Endpoint(net, "node1", "svc")

        def handler(endpoint, src, args):
            return Reply("value", meta=("clock", 7))
            yield  # pragma: no cover - generator marker

        server.register_handler("get", handler)
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            return (yield from client.call(
                "node1/svc", "get", None, with_meta=True))

        p = sim.spawn(caller(sim))
        sim.run()
        assert p.value == ("value", ("clock", 7))

    def test_reply_meta_defaults_to_none(self, sim, net):
        server = Endpoint(net, "node1", "svc")
        server.register_handler("echo", echo_handler)
        client = Endpoint(net, "node0", "svc")

        def caller(sim):
            return (yield from client.call(
                "node1/svc", "echo", "x", with_meta=True))

        p = sim.spawn(caller(sim))
        sim.run()
        assert p.value == ("x", None)

    def test_notify_carries_meta(self, sim, net):
        server = Endpoint(net, "node1", "svc")
        seen = []

        def handler(endpoint, src, args, meta):
            seen.append((args, meta))
            return Reply(True)
            yield  # pragma: no cover - generator marker

        server.register_handler("repl", handler, meta=True)
        client = Endpoint(net, "node0", "svc")
        client.notify("node1/svc", "repl", ("k", 1), size_bytes=8,
                      meta={"n0": 1})
        sim.run()
        assert seen == [(("k", 1), {"n0": 1})]


def sizeof_dict():
    """Size of the {"k": 1} request payload used above."""
    return 1 + 8
