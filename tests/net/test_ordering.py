"""Tests for per-pair FIFO delivery and endpoint service queueing."""

import pytest

from repro.cluster import Cluster
from repro.config import LatencyModel, SimConfig
from repro.net import Endpoint, Message, Network, Reply
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=3)


@pytest.fixture
def net(sim):
    return Network(sim, LatencyModel())


class TestFifoPerPair:
    def test_small_message_cannot_overtake_large(self, sim, net):
        """A later small message between the same pair must not arrive
        before an earlier large one (TCP/gRPC connection ordering)."""
        received = []
        sink = Endpoint(net, "node1", "svc")
        sink._receive = lambda m: received.append(m.kind)
        Endpoint(net, "node0", "svc")
        net.send(Message("node0/svc", "node1/svc", "big", "x", 512 * 1024))
        net.send(Message("node0/svc", "node1/svc", "small", "y", 1))
        sim.run()
        assert received == ["big", "small"]

    def test_different_pairs_are_independent(self, sim, net):
        received = []
        sink = Endpoint(net, "node2", "svc")
        sink._receive = lambda m: received.append(m.kind)
        Endpoint(net, "node0", "svc")
        Endpoint(net, "node1", "svc")
        net.send(Message("node0/svc", "node2/svc", "big-from-0", "x", 512 * 1024))
        net.send(Message("node1/svc", "node2/svc", "small-from-1", "y", 1))
        sim.run()
        # The small message from a different sender overtakes freely.
        assert received == ["small-from-1", "big-from-0"]

    def test_fifo_applies_per_direction(self, sim, net):
        """Ordering is per (src, dst) direction, not global."""
        got_at_1, got_at_0 = [], []
        a = Endpoint(net, "node0", "svc")
        b = Endpoint(net, "node1", "svc")
        a._receive = lambda m: got_at_0.append(m.kind)
        b._receive = lambda m: got_at_1.append(m.kind)
        net.send(Message("node0/svc", "node1/svc", "fwd-big", "x", 512 * 1024))
        net.send(Message("node1/svc", "node0/svc", "rev-small", "y", 1))
        sim.run()
        assert got_at_0 == ["rev-small"]  # reverse direction unaffected
        assert got_at_1 == ["fwd-big"]


class TestServiceQueueing:
    def _make_server(self, net, service_time, cpu=None):
        server = Endpoint(net, "node1", "srv", service_time_ms=service_time,
                          cpu=cpu)

        def handler(endpoint, src, args):
            return Reply(args)
            yield  # pragma: no cover

        server.register_handler("op", handler)
        return server

    def test_requests_queue_on_busy_agent(self, sim, net):
        self._make_server(net, service_time=10.0)
        client = Endpoint(net, "node0", "cli")
        finish = []

        def caller(sim, tag):
            yield from client.call("node1/srv", "op", tag)
            finish.append((tag, sim.now))

        for tag in ("a", "b", "c"):
            sim.spawn(caller(sim, tag))
        sim.run()
        times = [t for _tag, t in finish]
        # Each response is ~service_time after the previous: serialization.
        assert times[1] - times[0] == pytest.approx(10.0, abs=0.5)
        assert times[2] - times[1] == pytest.approx(10.0, abs=0.5)

    def test_zero_service_time_is_concurrent(self, sim, net):
        self._make_server(net, service_time=0.0)
        client = Endpoint(net, "node0", "cli")
        finish = []

        def caller(sim, tag):
            yield from client.call("node1/srv", "op", tag)
            finish.append(sim.now)

        for tag in ("a", "b"):
            sim.spawn(caller(sim, tag))
        sim.run()
        assert finish[0] == pytest.approx(finish[1])

    def test_service_consumes_node_cpu(self, sim):
        """An agent's service slice competes with function compute."""
        cluster = Cluster(sim, SimConfig(num_nodes=2, cores_per_node=1))
        node1 = cluster.node("node1")
        server = Endpoint(cluster.network, "node1", "srv",
                          service_time_ms=5.0, cpu=node1.cores)

        def handler(endpoint, src, args):
            return Reply("ok")
            yield  # pragma: no cover

        server.register_handler("op", handler)
        client = Endpoint(cluster.network, "node0", "cli")

        # Occupy the node's single core with "function work" for 50 ms.
        def function_work(sim):
            yield node1.cores.acquire()
            yield sim.timeout(50.0)
            node1.cores.release()

        responded = []

        def caller(sim):
            yield sim.timeout(1.0)  # arrive while the core is busy
            yield from client.call("node1/srv", "op", None)
            responded.append(sim.now)

        sim.spawn(function_work(sim))
        sim.spawn(caller(sim))
        sim.run()
        # The RPC could not be serviced until the core freed at t=50.
        assert responded[0] > 50.0
