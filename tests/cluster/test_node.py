"""Unit tests for nodes and the cluster."""

import pytest

from repro.cluster import Cluster, Node
from repro.config import MB, SimConfig
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def config():
    return SimConfig(num_nodes=4, cores_per_node=2)


@pytest.fixture
def cluster(sim, config):
    return Cluster(sim, config)


class TestNodeMemory:
    def test_container_unused_memory(self, sim):
        node = Node(sim, "node0")
        c = node.add_container("app1", "f1", memory_alloc=128 * MB, memory_used=24 * MB)
        assert c.unused_memory == 104 * MB

    def test_unused_memory_sums_per_app(self, sim):
        node = Node(sim, "node0")
        node.add_container("app1", "f1", memory_used=24 * MB)
        node.add_container("app1", "f2", memory_used=60 * MB)
        node.add_container("app2", "g1", memory_used=10 * MB)
        assert node.unused_memory("app1") == (128 - 24) * MB + (128 - 60) * MB
        assert node.unused_memory("app2") == (128 - 10) * MB

    def test_memory_exhaustion_raises(self, sim):
        config = SimConfig(memory_per_node=256 * MB)
        node = Node(sim, "node0", config)
        node.add_container("a", "f")
        node.add_container("a", "f")
        with pytest.raises(MemoryError):
            node.add_container("a", "f")

    def test_remove_container(self, sim):
        node = Node(sim, "node0")
        c = node.add_container("app1", "f1")
        assert node.remove_container(c.id) is c
        assert node.remove_container(c.id) is None
        assert node.containers_of("app1") == []

    def test_containers_of_filters_by_function(self, sim):
        node = Node(sim, "node0")
        node.add_container("app1", "f1")
        node.add_container("app1", "f2")
        assert len(node.containers_of("app1")) == 2
        assert len(node.containers_of("app1", "f1")) == 1

    def test_used_more_than_alloc_contributes_zero(self, sim):
        node = Node(sim, "node0")
        node.add_container("app1", "f1", memory_alloc=128 * MB, memory_used=150 * MB)
        assert node.unused_memory("app1") == 0


class TestNodeLoad:
    def test_overloaded_when_queue_forms(self, sim, config):
        node = Node(sim, "node0", config)
        node.cores.acquire()
        node.cores.acquire()
        assert not node.overloaded
        node.cores.acquire()  # queues
        assert node.overloaded
        assert node.load == pytest.approx(1.5)


class TestCluster:
    def test_builds_configured_nodes(self, cluster):
        assert len(cluster.nodes) == 4
        assert cluster.node("node0").id == "node0"

    def test_add_node(self, cluster):
        node = cluster.add_node()
        assert node.id == "node4"
        with pytest.raises(ValueError):
            cluster.add_node("node4")

    def test_crash_silences_network(self, sim, cluster):
        cluster.crash_node("node1")
        assert not cluster.node("node1").alive
        assert cluster.network.is_down("node1")
        assert cluster.alive_nodes() == [
            cluster.node(n) for n in ("node0", "node2", "node3")
        ]

    def test_crash_listeners_fire_once(self, cluster):
        crashed = []
        cluster.on_crash(crashed.append)
        cluster.crash_node("node2")
        cluster.crash_node("node2")  # idempotent
        assert crashed == ["node2"]

    def test_restart_clears_containers(self, sim, cluster):
        node = cluster.node("node1")
        node.add_container("app1", "f1")
        cluster.crash_node("node1")
        cluster.restart_node("node1")
        assert node.alive
        assert node.containers == {}
        assert not cluster.network.is_down("node1")
