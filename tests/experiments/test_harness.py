"""Smoke tests of the experiment harness (tiny scales).

The benchmarks exercise the experiments at full size; these tests keep the
harness itself covered by the fast unit suite: configs resolve, runs
complete, rows carry the expected columns.
"""

import pytest

from repro.experiments import (
    LOAD_LEVELS,
    MixedRunConfig,
    run_mixed_workload,
    unloaded_latency,
)


class TestMixedRunConfig:
    def test_load_levels(self):
        assert set(LOAD_LEVELS) == {"low", "medium", "high"}
        assert LOAD_LEVELS["low"] < LOAD_LEVELS["medium"] < LOAD_LEVELS["high"]

    def test_rps_resolution_from_utilization(self):
        config = MixedRunConfig(utilization=0.5, num_nodes=4, cores_per_node=8)
        rps = config.resolved_total_rps()
        assert rps > 0
        # Doubling utilization doubles the rate.
        double = MixedRunConfig(utilization=1.0, num_nodes=4, cores_per_node=8)
        assert double.resolved_total_rps() == pytest.approx(2 * rps)

    def test_explicit_rps_wins(self):
        config = MixedRunConfig(utilization=0.5, total_rps=123.0)
        assert config.resolved_total_rps() == 123.0

    def test_unknown_scheme_rejected(self):
        config = MixedRunConfig(scheme="bogus", duration_ms=100, warmup_ms=50)
        with pytest.raises(ValueError):
            run_mixed_workload(config)


class TestTinyRuns:
    @pytest.mark.parametrize("scheme", ["nocache", "ofc", "faast", "concord"])
    def test_schemes_run_and_report(self, scheme):
        config = MixedRunConfig(
            scheme=scheme, num_nodes=2, cores_per_node=4,
            apps=("TrainT", "SocNet"),
            total_rps=20.0, utilization=None,
            duration_ms=800.0, warmup_ms=300.0, drain_ms=1500.0,
        )
        outcome = run_mixed_workload(config)
        assert set(outcome.per_app) == {"TrainT", "SocNet"}
        completed = sum(s.completed for s in outcome.per_app.values())
        assert completed > 0
        assert outcome.access.reads > 0

    def test_trace_knob_collects_and_exports(self, tmp_path):
        from repro.trace import load_trace
        from repro.trace.summary import per_app_requests

        path = tmp_path / "run.json"
        config = MixedRunConfig(
            scheme="concord", num_nodes=2, cores_per_node=4,
            apps=("TrainT",),
            total_rps=10.0, utilization=None,
            duration_ms=600.0, warmup_ms=200.0, drain_ms=1500.0,
            trace=str(path),
        )
        outcome = run_mixed_workload(config)
        assert outcome.tracer is not None
        assert outcome.tracer.open_spans() == []
        spans = load_trace(path)
        assert any(s["category"] == "request" for s in spans)
        traced = per_app_requests(spans)
        assert "TrainT" in traced

    def test_trace_off_by_default(self):
        config = MixedRunConfig(
            scheme="nocache", num_nodes=2, cores_per_node=4,
            apps=("TrainT",), total_rps=10.0, utilization=None,
            duration_ms=400.0, warmup_ms=200.0, drain_ms=1000.0,
        )
        outcome = run_mixed_workload(config)
        assert outcome.tracer is None

    def test_concord_collects_sharers_and_memory(self):
        config = MixedRunConfig(
            scheme="concord", num_nodes=2, cores_per_node=4,
            apps=("SocNet",), total_rps=30.0, utilization=None,
            duration_ms=1000.0, warmup_ms=300.0,
            sample_every_ms=100.0,
        )
        outcome = run_mixed_workload(config)
        assert outcome.sharer_samples
        assert "SocNet" in outcome.sharer_samples_per_app
        assert outcome.cache_peaks  # at least one instance held data

    def test_unloaded_latency_returns_all_apps(self):
        latencies = unloaded_latency(
            "concord", apps=("TrainT",), num_nodes=2, cores_per_node=4,
            requests=2)
        assert set(latencies) == {"TrainT"}
        assert latencies["TrainT"] > 0


class TestCheapExperiments:
    def test_fig03_rows(self):
        from repro.experiments import fig03_version_vs_data

        result = fig03_version_vs_data.run()
        assert len(result.rows()) == 7
        assert {"size_kb", "version_ms", "data_ms"} <= set(result.rows()[0])

    def test_char_reads_ordering(self):
        from repro.experiments import char_reads

        rows = {r["operation"]: r["measured_ms"] for r in char_reads.run().rows()}
        assert rows["local hit"] < rows["remote hit"] < rows["remote miss"]

    def test_verify_protocol_clean(self):
        from repro.experiments import verify_protocol

        for row in verify_protocol.run().rows():
            assert row["violations"] == 0
            assert row["deadlocks"] == 0

    def test_ablation_virtual_nodes_balance(self):
        from repro.experiments.ablations import run_virtual_nodes

        rows = run_virtual_nodes().rows()
        assert rows[-1]["max/mean_keys"] < rows[0]["max/mean_keys"]
