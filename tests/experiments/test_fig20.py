"""fig20 scheme shootout: catalogue coverage and hash-seed identity."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.fig20_scheme_shootout import run
from repro.schemes import available_names

REPO_ROOT = Path(__file__).resolve().parents[2]

SCRIPT = """
import sys
from repro.experiments.fig20_scheme_shootout import run

sys.stdout.write(run(scale=0.25, seed=11).render())
"""


@pytest.fixture(scope="module")
def result():
    return run(scale=0.25, seed=11)


class TestShootout:
    def test_every_registered_scheme_raced(self, result):
        assert [row["scheme"] for row in result.rows()] == list(
            available_names())

    def test_zoo_schemes_present(self, result):
        raced = {row["scheme"] for row in result.rows()}
        assert {"write-through", "write-behind", "read-through-ttl",
                "causal"} <= raced

    def test_consistency_column_is_the_declared_level(self, result):
        levels = {row["scheme"]: row["consistency"]
                  for row in result.rows()}
        assert levels["concord"] == "sequential"
        assert levels["causal"] == "causal"
        assert levels["read-through-ttl"] == "bounded-staleness"

    def test_no_scheme_violates_its_own_invariants(self, result):
        for row in result.rows():
            assert row["violations"] == 0, row["scheme"]

    def test_crash_cells_only_for_restartable_schemes(self, result):
        by_scheme = {row["scheme"]: row for row in result.rows()}
        # Zoo schemes expose restart_instance and get a crash cell...
        assert "crash_completed" in by_scheme["write-behind"]
        assert "crash_lost" in by_scheme["write-behind"]
        # ...the baselines without a rejoin hook leave it blank.
        assert "crash_completed" not in by_scheme["ofc"]

    def test_nocache_is_the_degenerate_point(self, result):
        row = next(r for r in result.rows() if r["scheme"] == "nocache")
        assert row["hit_ratio"] == 0.0
        assert row["stale_reads"] == 0


def run_with_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_fig20_byte_identical_across_hashseeds():
    first = run_with_hashseed("0")
    second = run_with_hashseed("1")
    assert first, "fig20 produced no output"
    assert first == second
    assert "Scheme shootout" in first
