"""The run_all driver: parallel parity, failure isolation, CLI errors."""

import pytest

from repro.experiments import run_all


def rendered_section(stdout: str) -> str:
    """Everything above the wall-time summary table (which is allowed to
    differ between runs)."""
    marker = "=" * 60
    assert marker in stdout
    return stdout.split(marker)[0]


class TestSelection:
    def test_list_prints_every_experiment(self, capsys):
        assert run_all.main(["--list"]) == 0
        listed = capsys.readouterr().out.split()
        assert listed == list(run_all.EXPERIMENTS)

    def test_unknown_only_is_usage_error_listing_valid_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_all.main(["--only", "fig03,figXX"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown experiments: figXX" in err
        assert "valid names:" in err
        assert "fig08" in err

    def test_run_experiment_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            run_all.run_experiment("nope")


class TestParallelParity:
    CHEAP = "fig01,fig03"

    def test_parallel_output_byte_identical_to_serial(self, capsys):
        assert run_all.main(
            ["--only", self.CHEAP, "--scale", "0.3"]) == 0
        serial = capsys.readouterr().out
        assert run_all.main(
            ["--only", self.CHEAP, "--scale", "0.3", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert rendered_section(serial) == rendered_section(parallel)
        assert "fig01" in serial and "fig03" in serial

    def test_journal_resume_skips_completed(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        args = ["--only", "fig03", "--scale", "0.3", "--journal", journal]
        assert run_all.main(args) == 0
        first = capsys.readouterr().out
        assert run_all.main(args) == 0
        second = capsys.readouterr().out
        assert "(journal)" in second
        assert rendered_section(first) == rendered_section(second)


class TestFailureIsolation:
    def test_failing_experiment_reported_not_fatal(self, monkeypatch,
                                                   capsys):
        def explode(scale=1.0):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(run_all.EXPERIMENTS, "fig01", explode)
        assert run_all.main(["--only", "fig01,fig03", "--scale", "0.3"]) == 1
        out = capsys.readouterr().out
        # The healthy experiment still ran and rendered...
        assert "fig03" in out
        # ...and the failure is summarized at the end, not fatal mid-sweep.
        assert "1 experiment(s) failed:" in out
        assert "fig01: error" in out
        assert "RuntimeError: synthetic failure" in out
        assert "FAILED" in out
