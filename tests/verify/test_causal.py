"""Planted violations: each causal/staleness checker must fire.

These fabricate operation histories the way a buggy scheme would have
produced them and assert the checkers catch exactly the planted defect
— the proof that a clean fig20 run means something.
"""

from repro.schemes.vclock import ZERO
from repro.verify.causal import (
    CausalOp,
    check_bounded_staleness,
    check_session_guarantees,
)


def w(t, session, node, key, version, vc=None):
    return CausalOp(op="w", t_ms=t, session=session, node=node, key=key,
                    version=version, vc=vc)


def r(t, session, node, key, version, vc=None):
    return CausalOp(op="r", t_ms=t, session=session, node=node, key=key,
                    version=version, vc=vc)


class TestSessionGuarantees:
    def test_clean_history_passes(self):
        vc1 = ZERO.increment("n0")
        history = [
            w(1.0, "s", "n0", "k", 1, vc1),
            r(2.0, "s", "n0", "k", 1, vc1),
            r(3.0, "s", "n1", "k", 1, vc1),   # migration, same version
            w(4.0, "s", "n1", "k", 2, vc1.increment("n1")),
        ]
        assert check_session_guarantees(history) == []

    def test_read_your_writes_fires(self):
        history = [
            w(1.0, "s", "n0", "k", 2, ZERO.increment("n0")),
            r(2.0, "s", "n1", "k", 1),   # older than the session's write
        ]
        violations = check_session_guarantees(history)
        assert len(violations) == 1
        assert "read-your-writes" in violations[0]
        assert "after migrating from n0" in violations[0]

    def test_monotonic_reads_fires(self):
        history = [
            r(1.0, "s", "n0", "k", 3),
            r(2.0, "s", "n0", "k", 2),   # regressed
        ]
        violations = check_session_guarantees(history)
        assert len(violations) == 1
        assert "monotonic-reads" in violations[0]

    def test_writes_follow_reads_fires_across_migration(self):
        seen = ZERO.increment("n0").increment("n0")
        stale_write_vc = ZERO.increment("n1")  # does not dominate `seen`
        history = [
            r(1.0, "s", "n0", "a", 2, seen),
            w(2.0, "s", "n1", "b", 1, stale_write_vc),
        ]
        violations = check_session_guarantees(history)
        assert len(violations) == 1
        assert "writes-follow-reads" in violations[0]
        assert "after migrating from n0" in violations[0]

    def test_sessions_are_independent(self):
        # Another session's newer write must not constrain this one.
        history = [
            w(1.0, "other", "n0", "k", 5, ZERO.increment("n0")),
            r(2.0, "s", "n1", "k", 1),
        ]
        assert check_session_guarantees(history) == []

    def test_storage_fallback_reads_still_checked_per_key(self):
        # vc=None reads (durable-storage fallbacks) carry no clock but
        # keep participating in the per-key version checks.
        history = [
            r(1.0, "s", "n0", "k", 3, None),
            r(2.0, "s", "n0", "k", 1, None),
        ]
        violations = check_session_guarantees(history)
        assert len(violations) == 1
        assert "monotonic-reads" in violations[0]

    def test_malformed_op_reported(self):
        bad = CausalOp(op="x", t_ms=1.0, session="s", node="n0",
                       key="k", version=1)
        violations = check_session_guarantees([bad])
        assert len(violations) == 1
        assert "malformed" in violations[0]


class TestBoundedStaleness:
    def test_fresh_and_recently_superseded_reads_pass(self):
        writes = [(0.0, "k", 1), (100.0, "k", 2)]
        reads = [
            (50.0, "n0", "k", 1),    # current at serve time
            (150.0, "n0", "k", 1),   # superseded 50ms ago (< ttl)
            (250.0, "n0", "k", 2),   # fresh again
        ]
        assert check_bounded_staleness(reads, writes, ttl_ms=100.0) == []

    def test_overdue_stale_read_fires(self):
        writes = [(0.0, "k", 1), (100.0, "k", 2)]
        reads = [(300.0, "n0", "k", 1)]   # v2 was 200ms old at serve
        violations = check_bounded_staleness(reads, writes, ttl_ms=100.0)
        assert len(violations) == 1
        assert "bounded-staleness" in violations[0]
        assert "v2" in violations[0]

    def test_unknown_key_ignored(self):
        assert check_bounded_staleness(
            [(10.0, "n0", "ghost", 1)], [], ttl_ms=50.0) == []

    def test_unsorted_write_log_tolerated(self):
        # Fabricated logs may interleave; the checker sorts defensively.
        writes = [(100.0, "k", 2), (0.0, "k", 1)]
        reads = [(300.0, "n0", "k", 1)]
        assert len(check_bounded_staleness(reads, writes,
                                           ttl_ms=100.0)) == 1
