"""Tests of the protocol model checker (Section III-H)."""

import pytest

from repro.verify import ModelChecker, ModelConfig, enabled_transitions
from repro.verify.model import (
    E,
    S,
    initial_state,
    invariant_violations,
    _read,
    _recover,
    _replace,
    _write,
)


class TestModelMechanics:
    def test_initial_state_is_clean(self):
        state = initial_state(ModelConfig())
        assert invariant_violations(state) == []
        assert state.home == "n0"

    def test_read_miss_grants_exclusive(self):
        state = initial_state(ModelConfig())
        after = _read(state, "n1")
        assert after.cache_of("n1") == (E, 0)
        assert after.directory == (E, ("n1",))

    def test_second_reader_downgrades(self):
        state = _read(initial_state(ModelConfig()), "n1")
        after = _read(state, "n2")
        assert after.cache_of("n1") == (S, 0)
        assert after.cache_of("n2") == (S, 0)
        assert after.directory == (S, ("n1", "n2"))

    def test_write_invalidates_sharers(self):
        state = _read(initial_state(ModelConfig()), "n1")
        state = _read(state, "n2")
        after = _write(state, "n0")
        assert after.cache_of("n1") is None
        assert after.cache_of("n2") is None
        assert after.cache_of("n0") == (E, 1)
        assert after.storage == 1

    def test_exclusive_write_bypasses_home(self):
        state = _read(initial_state(ModelConfig()), "n1")
        after = _write(state, "n1")
        assert after.cache_of("n1") == (E, 1)
        assert after.storage == 1
        assert after.directory == (E, ("n1",))  # unchanged

    def test_recovery_evicts_everything(self):
        state = _read(initial_state(ModelConfig()), "n1")
        failed = _replace(state, pending_recovery="n0",
                          active=("n1", "n2"), directory=None)
        recovered = _recover(failed)
        assert recovered.caches == ()
        assert recovered.pending_recovery is None

    def test_stale_copy_is_flagged(self):
        state = _read(initial_state(ModelConfig()), "n1")
        corrupted = _replace(state, storage=5)
        assert any("stale copy" in v for v in invariant_violations(corrupted))

    def test_two_exclusives_flagged(self):
        state = initial_state(ModelConfig())
        corrupted = _replace(
            state, caches=(("n0", E, 0), ("n1", E, 0)),
            directory=(E, ("n0",)),
        )
        messages = invariant_violations(corrupted)
        assert any("two exclusive" in v for v in messages)

    def test_untracked_holder_flagged(self):
        state = initial_state(ModelConfig())
        corrupted = _replace(
            state, caches=(("n1", S, 0),), directory=(S, ("n2",)))
        assert any("missing from directory" in v
                   for v in invariant_violations(corrupted))


class TestExhaustiveChecks:
    """The headline verification runs, mirroring the paper's TLC checks."""

    def test_fault_free_two_nodes(self):
        report = ModelChecker(ModelConfig(
            nodes=("n0", "n1"), max_writes=2,
            allow_failures=False, allow_domain_changes=False,
        )).check()
        assert report.ok, (report.violations, report.deadlocks)
        assert report.states_explored > 10

    def test_fault_free_three_nodes_three_writes(self):
        report = ModelChecker(ModelConfig(
            nodes=("n0", "n1", "n2"), max_writes=3,
            allow_failures=False, allow_domain_changes=False,
        )).check()
        assert report.ok
        assert report.states_explored > 100

    def test_with_failures(self):
        report = ModelChecker(ModelConfig(
            nodes=("n0", "n1", "n2"), max_writes=2, max_fails=1,
            allow_domain_changes=False,
        )).check()
        assert report.ok, (report.violations[:3], report.deadlocks[:3])

    def test_with_domain_changes(self):
        report = ModelChecker(ModelConfig(
            nodes=("n0", "n1", "n2"), max_writes=2,
            allow_failures=False, max_domain_changes=2,
        )).check()
        assert report.ok

    def test_full_model(self):
        report = ModelChecker(ModelConfig(
            nodes=("n0", "n1", "n2"), max_writes=2, max_fails=1,
            max_domain_changes=1,
        )).check()
        assert report.ok
        assert report.states_explored > 400

    def test_seeded_bug_is_caught(self):
        """Sanity: break the protocol (skip invalidations) and the checker
        must find a stale-copy violation."""
        from repro.verify import model as M

        original = M._write

        def broken_write(state, writer):
            if state.writes_left == 0:
                return None
            new_value = state.storage + 1
            # BUG: forget to invalidate the other sharers.
            caches = state.with_cache(writer, (E, new_value))
            return M._replace(
                state, caches=caches, storage=new_value,
                directory=(E, (writer,)), writes_left=state.writes_left - 1,
            )

        M._write = broken_write
        try:
            report = ModelChecker(ModelConfig(
                nodes=("n0", "n1"), max_writes=1,
                allow_failures=False, allow_domain_changes=False,
            )).check()
        finally:
            M._write = original
        assert not report.ok
        assert any("stale copy" in msg
                   for _state, msgs in report.violations for msg in msgs)
