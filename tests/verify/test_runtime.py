"""The runtime coherence checker: green on health, loud on planted faults.

Each invariant in :func:`repro.verify.check_coherence` gets one test
that corrupts a healthy quiescent :class:`ConcordSystem` in exactly the
way the invariant forbids and asserts the violation is reported.
"""

import pytest

from repro.caching.base import EXCLUSIVE, VALID, CacheEntry
from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.core.directory import DirectoryEntry
from repro.sim import Simulator
from repro.storage import DataItem
from repro.verify import CoherenceViolation, assert_coherent, check_coherence

KEYS = [f"k{i}" for i in range(8)]


@pytest.fixture
def sim():
    return Simulator(seed=9)


@pytest.fixture
def cluster(sim):
    return Cluster(sim, SimConfig(num_nodes=4, cores_per_node=2))


@pytest.fixture
def concord(sim, cluster):
    coord = CoordinationService(cluster.network, cluster.config,
                                run_heartbeats=False)
    system = ConcordSystem(cluster, app="app1", coord=coord)
    cluster.storage.preload(
        {k: DataItem((k, 0), size_bytes=128) for k in KEYS})

    def warmup(sim):
        # Mixed reads and writes spread S and E copies around.
        for index, key in enumerate(KEYS):
            reader = f"node{index % 4}"
            yield from system.read(reader, key)
            if index % 2 == 0:
                writer = f"node{(index + 1) % 4}"
                yield from system.write(
                    writer, key, DataItem((key, 1), size_bytes=128))

    sim.run_until_complete(sim.spawn(warmup(sim)), limit=60_000.0)
    return system


def home_and_other(concord, key):
    home = concord.ring_template.home(key)
    other = next(n for n in concord.agents if n != home)
    return home, other


class TestHealthySystem:
    def test_no_violations_after_quiescent_warmup(self, concord, cluster):
        assert check_coherence(concord, cluster) == []
        assert_coherent(concord, cluster)  # does not raise

    def test_assert_coherent_raises_with_all_violations(self, concord, cluster):
        for key in ("planted0", "planted1"):
            home, _ = home_and_other(concord, key)
            concord.agents[home].directory.install(
                DirectoryEntry(key, state=EXCLUSIVE, sharers=set()))
        with pytest.raises(CoherenceViolation, match="2 coherence"):
            assert_coherent(concord, cluster)


class TestPlantedViolations:
    def test_stale_cached_copy(self, concord, cluster):
        key = KEYS[0]
        _, node = home_and_other(concord, key)
        agent = concord.agents[node]
        agent.cache.put(CacheEntry(
            key, DataItem((key, "stale"), size_bytes=128),
            state=VALID, size_bytes=128))
        found = check_coherence(concord, cluster)
        assert any("stale copy" in v and node in v for v in found)

    def test_cached_key_missing_from_storage(self, concord, cluster):
        agent = concord.agents["node0"]
        agent.cache.put(CacheEntry(
            "ghost", DataItem(("ghost", 0), size_bytes=16),
            state=VALID, size_bytes=16))
        found = check_coherence(concord, cluster)
        assert any("storage has no record" in v for v in found)

    def test_directory_entry_pointing_at_dead_node(self, concord, cluster):
        key = KEYS[0]
        home, other = home_and_other(concord, key)
        concord.agents[home].directory.install(
            DirectoryEntry(key, state=EXCLUSIVE, sharers={other}))
        # Crash the sharer; check *before* any failure detection or
        # recovery runs, exactly the state recovery must clean up.
        cluster.crash_node(other)
        found = check_coherence(concord, cluster)
        assert any("dead/ejected" in v and key in v for v in found)

    def test_structurally_invalid_entry(self, concord, cluster):
        key = KEYS[1]
        home, other = home_and_other(concord, key)
        concord.agents[home].directory.install(
            DirectoryEntry(key, state=EXCLUSIVE, sharers={home, other}))
        found = check_coherence(concord, cluster)
        assert any("structurally invalid" in v for v in found)

    def test_entry_parked_away_from_home(self, concord, cluster):
        key = KEYS[2]
        home, other = home_and_other(concord, key)
        concord.agents[home].directory.remove(key)
        concord.agents[other].directory.install(
            DirectoryEntry(key, state=EXCLUSIVE, sharers={other}))
        found = check_coherence(concord, cluster)
        assert any("parked away from its home" in v for v in found)

    def test_duplicate_entries_across_homes(self, concord, cluster):
        key = KEYS[3]
        home, other = home_and_other(concord, key)
        concord.agents[home].directory.install(
            DirectoryEntry(key, state=EXCLUSIVE, sharers={home}))
        concord.agents[other].directory.install(
            DirectoryEntry(key, state=EXCLUSIVE, sharers={other}))
        found = check_coherence(concord, cluster)
        assert any("duplicate directory entries" in v for v in found)
