"""End-to-end crash recovery: a node holding owned entries dies mid-run.

The full stack — FaaS platform driving Poisson load through a Concord
deployment, coordination-service failure detection, survivor recovery —
with a :class:`FaultPlan` crashing a node that provably holds exclusive
(owned) cache entries and directory state at the moment of the crash.
Afterwards the runtime coherence checker must find nothing: no stale
copies, no directory entry pointing at the dead node, and the telemetry
counters must agree with the injected plan.
"""

import pytest

from repro.caching.base import EXCLUSIVE
from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.faas import CasScheduler, FaasPlatform
from repro.faults import FaultInjector, FaultPlan, NodeCrash
from repro.sim import Simulator
from repro.storage import DataItem
from repro.telemetry import MetricsRegistry, Sampler
from repro.verify import check_coherence
from repro.workloads import ALL_PROFILES, build_app, entity_inputs_factory
from repro.workloads.profiles import entity_key, preload_storage

APP = "SocNet"
VICTIM = "node2"
CRASH_MS = 3000.0
DURATION_MS = 6000.0
SETTLE_MS = 4000.0


@pytest.fixture
def deployment():
    """The canonical stack with a crash plan targeting ``VICTIM``."""
    registry = MetricsRegistry()
    sim = Simulator(seed=21, metrics=registry)
    config = SimConfig(
        num_nodes=5, cores_per_node=2,
        heartbeat_interval_ms=200.0, heartbeat_misses=3,
    )
    cluster = Cluster(sim, config)
    coord = CoordinationService(cluster.network, config)
    profile = ALL_PROFILES[APP]
    concord = ConcordSystem(cluster, app=APP, coord=coord)
    preload_storage(cluster.storage, profile)
    platform = FaasPlatform(cluster, scheduler=CasScheduler())
    app = platform.deploy(build_app(profile), concord)
    plan = FaultPlan(events=(NodeCrash(at_ms=CRASH_MS, node=VICTIM),))
    injector = FaultInjector(cluster, plan, systems=(concord,),
                             platform=platform)
    injector.start()
    sampler = Sampler(sim, interval_ms=100.0)
    sampler.start()
    return {
        "sim": sim, "registry": registry, "cluster": cluster,
        "coord": coord, "concord": concord, "profile": profile,
        "platform": platform, "app": app, "injector": injector,
        "plan": plan,
    }


def _victim_keys(concord, profile):
    """Profile keys whose ring home is the victim node."""
    return [
        key
        for entity in range(profile.entities)
        for key in [entity_key(APP, entity, 0)]
        if concord.ring_template.home(key) == VICTIM
    ]


def run_scenario(deployment):
    """Drive the full run; returns the victim's state just before death."""
    sim = deployment["sim"]
    concord = deployment["concord"]
    platform = deployment["platform"]
    profile = deployment["profile"]
    keys = _victim_keys(concord, profile)[:6]
    assert keys, "ring placed no sampled keys at the victim"
    snapshot = {}

    def owner_warmup(sim):
        # The victim writes keys homed at itself: each lands as an
        # EXCLUSIVE cached copy with a directory entry owned by VICTIM.
        for key in keys:
            yield from concord.write(
                VICTIM, key, DataItem((key, "hot"), size_bytes=256))

    def probe(sim):
        yield sim.timeout(CRASH_MS - 1.0)
        agent = concord.agents[VICTIM]
        snapshot["cached_exclusive"] = sum(
            1 for k in agent.cache.keys()
            if agent.cache.peek(k).state == EXCLUSIVE)
        snapshot["directory_entries"] = len(agent.directory.entries())
        snapshot["owned_entries"] = sum(
            1 for e in agent.directory.entries() if e.owner == VICTIM)

    warmup = sim.spawn(owner_warmup(sim), name="warmup")
    sim.run_until_complete(warmup, limit=2000.0)
    sim.spawn(probe(sim), name="probe", daemon=True)
    factory = entity_inputs_factory(profile, sim)
    sim.spawn(platform.open_loop(APP, 30.0, DURATION_MS, factory),
              name="load")
    sim.run(until=DURATION_MS + SETTLE_MS)
    return snapshot


class TestCrashRecoveryEndToEnd:
    def test_coherent_after_crash_of_owner_node(self, deployment):
        snapshot = run_scenario(deployment)
        concord = deployment["concord"]
        cluster = deployment["cluster"]
        coord = deployment["coord"]
        app = deployment["app"]

        # The victim really held owned state when it died.
        assert snapshot["cached_exclusive"] > 0
        assert snapshot["directory_entries"] > 0
        assert snapshot["owned_entries"] > 0

        # The invariant checker finds nothing to complain about.
        assert check_coherence(concord, cluster) == []

        # Survivors purged the victim: not a ring member anywhere, no
        # directory entry names it as a sharer.
        live = [a for n, a in concord.agents.items()
                if n != VICTIM and a.alive and not a.ejected]
        assert live
        for agent in live:
            assert VICTIM not in agent.ring.members
            for entry in agent.directory.entries():
                assert VICTIM not in entry.sharers

        # Failure detection and recovery both fired, and load survived.
        assert any(node == VICTIM for _t, _app, node in
                   coord.failures_detected)
        assert concord.controller.recoveries_completed >= 1
        assert app.requests_completed > 0

    def test_telemetry_counters_match_the_plan(self, deployment):
        run_scenario(deployment)
        registry = deployment["registry"]
        injector = deployment["injector"]
        coord = deployment["coord"]
        concord = deployment["concord"]

        assert [kind for _t, kind, _d in injector.applied] == ["NodeCrash"]
        assert injector.injected_by_kind == {"NodeCrash": 1}

        faults = registry.counter(
            "faults_injected_total", labelnames=("kind",))
        by_kind = {dict(pairs)["kind"]: child.current()
                   for pairs, child in faults.children()}
        assert by_kind["NodeCrash"] == 1

        declared = registry.counter("coord_failures_declared_total")
        assert declared.labels().current() == len(coord.failures_detected)

        recoveries = registry.counter(
            "concord_recoveries_completed_total", labelnames=("app",))
        assert (recoveries.labels(app=APP).current()
                == concord.controller.recoveries_completed)
