"""Unit tests for the FaultInjector daemon against a bare cluster."""

import pytest

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.faults import (
    FaultInjector,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    NetworkPartition,
    NodeCrash,
    NodeRestart,
    StorageBrownout,
)
from repro.net import Endpoint
from repro.sim import Simulator
from repro.telemetry import MetricsRegistry


@pytest.fixture
def sim():
    return Simulator(seed=5)


@pytest.fixture
def cluster(sim):
    return Cluster(sim, SimConfig(num_nodes=4, cores_per_node=1))


def run_plan(sim, cluster, plan, until=10_000.0, **kwargs):
    injector = FaultInjector(cluster, plan, **kwargs)
    injector.start()
    sim.run(until=until)
    return injector


class TestLifecycleEvents:
    def test_crash_and_restart_drive_cluster(self, sim, cluster):
        crashed, events = [], []
        cluster.on_crash(crashed.append)
        plan = FaultPlan(events=(
            NodeCrash(at_ms=100.0, node="node1"),
            NodeRestart(at_ms=500.0, node="node1"),
        ))
        injector = FaultInjector(cluster, plan)
        injector.start()
        sim.run(until=200.0)
        assert crashed == ["node1"]
        assert cluster.network.is_down("node1")
        sim.run(until=600.0)
        assert not cluster.network.is_down("node1")
        assert [kind for _t, kind, _d in injector.applied] == [
            "NodeCrash", "NodeRestart"]

    def test_applied_log_records_times_in_order(self, sim, cluster):
        plan = FaultPlan(events=(
            NodeCrash(at_ms=250.0, node="node2"),
            StorageBrownout(at_ms=400.0, duration_ms=100.0, slowdown=3.0),
        ))
        injector = run_plan(sim, cluster, plan)
        times = [t for t, _k, _d in injector.applied]
        assert times == [250.0, 400.0]

    def test_restart_rejoins_registered_systems(self, sim, cluster):
        class SystemStub:
            app = "stub"

            def __init__(self):
                self.restarted = []

            def restart_instance(self, node_id):
                self.restarted.append(node_id)
                return
                yield  # pragma: no cover - generator marker

        stub = SystemStub()
        plan = FaultPlan(events=(
            NodeCrash(at_ms=10.0, node="node3"),
            NodeRestart(at_ms=20.0, node="node3"),
        ))
        run_plan(sim, cluster, plan, systems=(stub,))
        assert stub.restarted == ["node3"]


class TestNetworkRules:
    def test_full_drop_window_blocks_traffic(self, sim, cluster):
        a = Endpoint(cluster.network, "node0", "svc")
        b = Endpoint(cluster.network, "node1", "svc")
        received = []

        def handler(endpoint, src, args):
            received.append((sim.now, args))
            return None
            yield  # pragma: no cover - generator marker

        b.register_handler("poke", handler)
        plan = FaultPlan(events=(
            MessageDrop(at_ms=100.0, duration_ms=200.0, probability=1.0),
        ))
        injector = FaultInjector(cluster, plan)
        injector.start()

        def sender(sim):
            yield sim.timeout(150.0)  # inside the window
            a.notify(b.address, "poke", "lost")
            yield sim.timeout(250.0)  # after the window
            a.notify(b.address, "poke", "delivered")

        sim.spawn(sender(sim), name="sender")
        sim.run(until=1000.0)
        assert [args for _t, args in received] == ["delivered"]
        assert cluster.network.faults.dropped_injected == 1

    def test_partition_severs_cross_group_only(self, sim, cluster):
        endpoints = {n: Endpoint(cluster.network, n, "svc")
                     for n in ("node0", "node1", "node2")}
        received = []

        def make_handler(name):
            def handler(endpoint, src, args):
                received.append((name, args))
                return None
                yield  # pragma: no cover - generator marker
            return handler

        for name, ep in endpoints.items():
            ep.register_handler("poke", make_handler(name))
        plan = FaultPlan(events=(
            NetworkPartition(at_ms=100.0, duration_ms=500.0,
                             groups=(("node0", "node1"), ("node2",))),
        ))
        FaultInjector(cluster, plan).start()

        def sender(sim):
            yield sim.timeout(200.0)
            endpoints["node0"].notify("node1/svc", "poke", "same-side")
            endpoints["node0"].notify("node2/svc", "poke", "cross")
        sim.spawn(sender(sim), name="sender")
        sim.run(until=1000.0)
        assert received == [("node1", "same-side")]

    def test_delay_window_slows_messages(self, sim, cluster):
        a = Endpoint(cluster.network, "node0", "svc")
        b = Endpoint(cluster.network, "node1", "svc")
        arrivals = []

        def handler(endpoint, src, args):
            arrivals.append(sim.now)
            return None
            yield  # pragma: no cover - generator marker

        b.register_handler("poke", handler)
        plan = FaultPlan(events=(
            MessageDelay(at_ms=0.0, duration_ms=300.0, extra_ms=50.0),
        ))
        FaultInjector(cluster, plan).start()

        def sender(sim):
            yield sim.timeout(100.0)
            a.notify(b.address, "poke", "slow")
            yield sim.timeout(400.0)  # past the window
            a.notify(b.address, "poke", "fast")
        sim.spawn(sender(sim), name="sender")
        sim.run(until=1000.0)
        assert len(arrivals) == 2
        slow_transit = arrivals[0] - 100.0
        fast_transit = arrivals[1] - 500.0
        assert slow_transit - fast_transit == pytest.approx(50.0)
        assert cluster.network.faults.delayed_injected == 1


class TestBrownout:
    def test_brownout_multiplies_storage_latency(self, sim, cluster):
        plan = FaultPlan(events=(
            StorageBrownout(at_ms=0.0, duration_ms=500.0, slowdown=4.0),
        ))
        FaultInjector(cluster, plan).start()
        durations = []

        def reader(sim):
            yield sim.timeout(1.0)  # let the injector apply the event
            start = sim.now
            yield from cluster.storage.write("k", "v", writer="test")
            durations.append(sim.now - start)
            yield sim.timeout(600.0)  # past the window
            start = sim.now
            yield from cluster.storage.write("k", "v2", writer="test")
            durations.append(sim.now - start)

        sim.spawn(reader(sim), name="reader")
        sim.run(until=2000.0)
        assert len(durations) == 2
        assert durations[0] == pytest.approx(4.0 * durations[1])


class TestBookkeeping:
    def test_fail_fast_armed_by_default(self, sim, cluster):
        assert cluster.network.fail_fast is False
        FaultInjector(cluster, FaultPlan()).start()
        assert cluster.network.fail_fast is True

    def test_fail_fast_opt_out(self, sim, cluster):
        FaultInjector(cluster, FaultPlan(), fail_fast=False).start()
        assert cluster.network.fail_fast is False

    def test_start_is_idempotent(self, sim, cluster):
        injector = FaultInjector(cluster, FaultPlan())
        assert injector.start() is injector.start()

    def test_metrics_count_injected_events_by_kind(self):
        registry = MetricsRegistry()
        sim = Simulator(seed=5, metrics=registry)
        cluster = Cluster(sim, SimConfig(num_nodes=4, cores_per_node=1))
        plan = FaultPlan(events=(
            NodeCrash(at_ms=10.0, node="node1"),
            NodeRestart(at_ms=20.0, node="node1"),
            StorageBrownout(at_ms=30.0, duration_ms=10.0, slowdown=2.0),
        ))
        injector = run_plan(sim, cluster, plan)
        assert injector.injected_by_kind == {
            "NodeCrash": 1, "NodeRestart": 1, "StorageBrownout": 1,
        }
        counter = registry.counter(
            "faults_injected_total", labelnames=("kind",))
        samples = {
            dict(label_pairs)["kind"]: child.current()
            for label_pairs, child in counter.children()
        }
        assert samples["NodeCrash"] == 1
        assert samples["MessageDrop"] == 0
