"""Unit tests for FaultPlan: ordering, serialization, seeded generation."""

import pytest

from repro.faults import (
    EVENT_TYPES,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    NetworkPartition,
    NodeCrash,
    NodeRestart,
    StorageBrownout,
)

NODES = [f"node{i}" for i in range(6)]


class TestOrdering:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(events=(
            NodeRestart(at_ms=900.0, node="node1"),
            NodeCrash(at_ms=300.0, node="node1"),
            StorageBrownout(at_ms=500.0, duration_ms=100.0),
        ))
        assert [e.at_ms for e in plan.events] == [300.0, 500.0, 900.0]
        assert plan.kinds() == ["NodeCrash", "StorageBrownout", "NodeRestart"]

    def test_len(self):
        assert len(FaultPlan()) == 0
        assert len(FaultPlan(events=(NodeCrash(at_ms=1.0, node="n"),))) == 1


class TestSerialization:
    def _full_plan(self):
        return FaultPlan(seed=42, events=(
            NodeCrash(at_ms=100.0, node="node2"),
            NodeRestart(at_ms=600.0, node="node2"),
            NetworkPartition(at_ms=200.0, duration_ms=50.0,
                             groups=(("node0", "node1"), ("node2", "node3"))),
            MessageDrop(at_ms=300.0, duration_ms=80.0, probability=0.5,
                        src="node0", dst=None),
            MessageDelay(at_ms=400.0, duration_ms=90.0, extra_ms=3.0,
                         jitter_ms=1.0),
            StorageBrownout(at_ms=500.0, duration_ms=120.0, slowdown=4.5),
        ))

    def test_json_round_trip_every_kind(self):
        plan = self._full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_round_trip_is_byte_stable(self):
        plan = self._full_plan()
        text = plan.to_json()
        assert FaultPlan.from_json(text).to_json() == text

    def test_save_load(self, tmp_path):
        plan = self._full_plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault event kind"):
            FaultPlan.from_json(
                '{"seed": 0, "events": [{"kind": "Meteor", "at_ms": 1.0}]}')

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            FaultPlan.from_json(
                '{"seed": 0, "events": ['
                '{"kind": "NodeCrash", "at_ms": 1.0, "blast_radius": 3}]}')

    def test_registry_covers_every_event_class(self):
        assert set(EVENT_TYPES) == {
            "NodeCrash", "NodeRestart", "NetworkPartition", "RegionPartition",
            "MessageDrop", "MessageDelay", "StorageBrownout",
        }


class TestRandom:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(seed=7, node_ids=NODES, horizon_ms=8000.0)
        b = FaultPlan.random(seed=7, node_ids=NODES, horizon_ms=8000.0)
        assert a == b
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        a = FaultPlan.random(seed=7, node_ids=NODES, horizon_ms=8000.0)
        b = FaultPlan.random(seed=8, node_ids=NODES, horizon_ms=8000.0)
        assert a != b

    def test_node_order_does_not_matter(self):
        a = FaultPlan.random(seed=7, node_ids=NODES, horizon_ms=8000.0)
        b = FaultPlan.random(seed=7, node_ids=list(reversed(NODES)),
                             horizon_ms=8000.0)
        assert a == b

    def test_crash_gets_restart_before_horizon(self):
        plan = FaultPlan.random(seed=3, node_ids=NODES, horizon_ms=8000.0,
                                crashes=1, restart=True)
        crashes = [e for e in plan.events if isinstance(e, NodeCrash)]
        restarts = [e for e in plan.events if isinstance(e, NodeRestart)]
        assert len(crashes) == 1 and len(restarts) == 1
        assert crashes[0].node == restarts[0].node
        assert crashes[0].at_ms < restarts[0].at_ms < 8000.0

    def test_refuses_to_crash_almost_everyone(self):
        with pytest.raises(ValueError, match="all but one"):
            FaultPlan.random(seed=0, node_ids=["a", "b", "c"],
                             horizon_ms=1000.0, crashes=2)

    def test_events_within_horizon(self):
        plan = FaultPlan.random(seed=11, node_ids=NODES, horizon_ms=5000.0,
                                crashes=1, drops=2, delays=2, brownouts=2)
        assert all(0.0 <= e.at_ms < 5000.0 for e in plan.events)
