"""Replaying a FaultPlan is byte-identical — in-process and across hash seeds.

The determinism contract for fault injection (ISSUE 4): the same
``(FaultPlan, seed)`` pair must reproduce the run exactly — every
counter, every telemetry byte — twice in the same interpreter and in
subprocesses pinned to different ``PYTHONHASHSEED`` values.  This is
what makes a failing plan from the nightly fault matrix a *repro case*
rather than a flake.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults import FaultPlan, run_fault_scenario

REPO_ROOT = Path(__file__).resolve().parents[2]

NODES = [f"node{i}" for i in range(4)]
DURATION_MS = 3000.0
RPS = 20.0
# Faults stop well before the run ends: an invalidation lost in a late
# drop window holds its writer until the 5000 ms RPC timeout, and the
# coherence check requires quiescence by the end of the settle window.
HORIZON_MS = 1800.0


def small_plan(seed: int) -> FaultPlan:
    return FaultPlan.random(
        seed=seed, node_ids=NODES, horizon_ms=HORIZON_MS,
        crashes=1, restart=True, drops=1, delays=1, brownouts=1,
    )


def run_once(seed: int):
    plan = small_plan(seed)
    return run_fault_scenario(
        plan, seed=seed, num_nodes=len(NODES),
        duration_ms=DURATION_MS, rps=RPS,
    )


REPLAY_SNIPPET = """\
import sys

from repro.faults import FaultPlan, run_fault_scenario

plan = FaultPlan.from_json(sys.argv[1])
outcome = run_fault_scenario(
    plan, seed=int(sys.argv[2]), num_nodes=4,
    duration_ms=float(sys.argv[3]), rps=float(sys.argv[4]),
)
print(repr(outcome.fingerprint()))
"""


def replay_in_subprocess(plan: FaultPlan, seed: int, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-c", REPLAY_SNIPPET,
         plan.to_json(), str(seed), str(DURATION_MS), str(RPS)],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestReplayDeterminism:
    def test_two_in_process_runs_are_identical(self):
        first = run_once(seed=3)
        second = run_once(seed=3)
        assert first.fingerprint() == second.fingerprint()
        assert first.telemetry_jsonl == second.telemetry_jsonl
        assert first.completed > 0
        assert first.violations == []

    def test_replay_is_hashseed_independent(self):
        plan = small_plan(3)
        hs0 = replay_in_subprocess(plan, seed=3, hashseed="0")
        hs1 = replay_in_subprocess(plan, seed=3, hashseed="1")
        assert hs0 == hs1
        # And the subprocess agrees with this interpreter's run.
        assert hs0 == repr(run_once(seed=3).fingerprint()) + "\n"
