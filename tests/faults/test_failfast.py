"""Fail-fast RPC semantics: calls to dead nodes get PeerDown, not a timeout.

When the fault injector arms ``Network.fail_fast``, a request addressed
to a crashed node is answered with a connection-reset-style
:class:`~repro.net.rpc.PeerDown` after one propagation delay instead of
silently waiting out the full RPC timeout.  ``PeerDown`` subclasses
``RpcTimeout`` so every existing timeout handler treats it as retriable.
"""

import pytest

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.faults import FaultInjector, FaultPlan, NodeCrash
from repro.net import Endpoint, Reply
from repro.net.rpc import DEFAULT_RPC_TIMEOUT_MS, PeerDown, RpcTimeout
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=11)


@pytest.fixture
def cluster(sim):
    return Cluster(sim, SimConfig(num_nodes=3, cores_per_node=1))


def echo_handler(endpoint, src, args):
    return Reply(args)
    yield  # pragma: no cover - generator marker


def call_once(sim, client, address, **kwargs):
    """Run one call; returns (outcome, exception_or_value, finish_time)."""

    def caller(sim):
        try:
            value = yield from client.call(address, "echo", "hi", **kwargs)
        except RpcTimeout as exc:
            return ("error", exc, sim.now)
        return ("ok", value, sim.now)

    process = sim.spawn(caller(sim))
    sim.run()
    return process.value


class TestPeerDown:
    def test_is_a_retriable_timeout(self):
        assert issubclass(PeerDown, RpcTimeout)

    def test_call_to_crashed_node_fails_fast(self, sim, cluster):
        Endpoint(cluster.network, "node1", "svc").register_handler(
            "echo", echo_handler)
        client = Endpoint(cluster.network, "node0", "svc")
        # The injector arms fail_fast and crashes node1 at t=10.
        FaultInjector(cluster, FaultPlan(events=(
            NodeCrash(at_ms=10.0, node="node1"),
        ))).start()
        sim.run(until=20.0)

        outcome, exc, when = call_once(sim, client, "node1/svc")
        assert outcome == "error"
        assert isinstance(exc, PeerDown)
        # One propagation delay, not the 5000 ms library timeout.
        assert when - 20.0 < DEFAULT_RPC_TIMEOUT_MS / 10

    def test_without_fail_fast_the_same_call_times_out(self, sim, cluster):
        Endpoint(cluster.network, "node1", "svc").register_handler(
            "echo", echo_handler)
        client = Endpoint(cluster.network, "node0", "svc")
        cluster.crash_node("node1")
        assert cluster.network.fail_fast is False

        outcome, exc, when = call_once(sim, client, "node1/svc", timeout=300.0)
        assert outcome == "error"
        assert not isinstance(exc, PeerDown)
        assert when == pytest.approx(300.0)

    def test_crash_resets_in_flight_calls(self, sim, cluster):
        server = Endpoint(cluster.network, "node1", "svc")

        def never_replies(endpoint, src, args):
            yield endpoint.sim.timeout(10_000.0)
            return Reply("too late")

        server.register_handler("echo", never_replies)
        client = Endpoint(cluster.network, "node0", "svc")
        cluster.network.fail_fast = True

        def crasher(sim):
            yield sim.timeout(50.0)
            cluster.crash_node("node1")

        sim.spawn(crasher(sim), name="crasher", daemon=True)
        outcome, exc, when = call_once(sim, client, "node1/svc")
        assert outcome == "error"
        assert isinstance(exc, PeerDown)
        # Failed at the crash (plus one propagation delay), not at the
        # 5000 ms timeout and certainly not at the handler's 10 s sleep.
        assert when < 100.0
