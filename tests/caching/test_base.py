"""Unit and property tests for the LRU cache substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching import CacheEntry, EvictionPinned, LruCache


def entry(key, size, pinned=False):
    return CacheEntry(key=key, value=f"v-{key}", size_bytes=size, pinned=pinned)


class TestLruBasics:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruCache(-1)

    def test_put_get_roundtrip(self):
        cache = LruCache(100)
        cache.put(entry("a", 10))
        assert cache.get("a").value == "v-a"
        assert "a" in cache
        assert len(cache) == 1
        assert cache.used_bytes == 10

    def test_peek_does_not_touch_recency(self):
        cache = LruCache(20)
        cache.put(entry("a", 10))
        cache.put(entry("b", 10))
        cache.peek("a")  # not a recency touch
        evicted = cache.put(entry("c", 10))
        assert [e.key for e in evicted] == ["a"]

    def test_get_refreshes_recency(self):
        cache = LruCache(20)
        cache.put(entry("a", 10))
        cache.put(entry("b", 10))
        cache.get("a")  # now b is LRU
        evicted = cache.put(entry("c", 10))
        assert [e.key for e in evicted] == ["b"]

    def test_replace_updates_size_accounting(self):
        cache = LruCache(100)
        cache.put(entry("a", 10))
        cache.put(entry("a", 30))
        assert cache.used_bytes == 30
        assert len(cache) == 1

    def test_oversized_entry_rejected(self):
        cache = LruCache(10)
        with pytest.raises(ValueError):
            cache.put(entry("big", 11))

    def test_eviction_order_is_lru(self):
        cache = LruCache(30)
        for key in ("a", "b", "c"):
            cache.put(entry(key, 10))
        evicted = cache.put(entry("d", 20))
        assert [e.key for e in evicted] == ["a", "b"]
        assert cache.evictions == 2

    def test_remove(self):
        cache = LruCache(100)
        cache.put(entry("a", 10))
        removed = cache.remove("a")
        assert removed.key == "a"
        assert cache.used_bytes == 0
        assert cache.remove("a") is None

    def test_clear(self):
        cache = LruCache(100)
        cache.put(entry("a", 10))
        cache.put(entry("b", 10))
        dropped = cache.clear()
        assert len(dropped) == 2
        assert cache.used_bytes == 0

    def test_peak_bytes_high_water_mark(self):
        cache = LruCache(100)
        cache.put(entry("a", 60))
        cache.put(entry("b", 40))
        cache.remove("a")
        assert cache.peak_bytes == 100
        assert cache.used_bytes == 40


class TestPinning:
    def test_pinned_entries_skip_eviction(self):
        cache = LruCache(30)
        cache.put(entry("pinned", 10, pinned=True))
        cache.put(entry("a", 10))
        cache.put(entry("b", 10))
        evicted = cache.put(entry("c", 10))
        assert [e.key for e in evicted] == ["a"]
        assert "pinned" in cache

    def test_all_pinned_raises(self):
        cache = LruCache(20)
        cache.put(entry("p1", 10, pinned=True))
        cache.put(entry("p2", 10, pinned=True))
        with pytest.raises(EvictionPinned):
            cache.put(entry("x", 10))

    def test_resize_keeps_pinned(self):
        cache = LruCache(30)
        cache.put(entry("p", 10, pinned=True))
        cache.put(entry("a", 10))
        cache.put(entry("b", 10))
        evicted = cache.resize(10)
        assert "p" in cache
        assert {e.key for e in evicted} == {"a", "b"}


class TestResize:
    def test_shrink_evicts_lru(self):
        cache = LruCache(40)
        for key in ("a", "b", "c", "d"):
            cache.put(entry(key, 10))
        cache.get("a")
        evicted = cache.resize(20)
        assert {e.key for e in evicted} == {"b", "c"}
        assert set(cache.keys()) == {"d", "a"}

    def test_grow_keeps_entries(self):
        cache = LruCache(20)
        cache.put(entry("a", 10))
        assert cache.resize(100) == []
        assert "a" in cache

    def test_negative_resize_rejected(self):
        with pytest.raises(ValueError):
            LruCache(10).resize(-5)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "get", "remove"]),
            st.integers(min_value=0, max_value=15),   # key index
            st.integers(min_value=1, max_value=40),   # size
        ),
        max_size=60,
    ),
    capacity=st.integers(min_value=40, max_value=200),
)
def test_lru_accounting_invariants(ops, capacity):
    """used_bytes always equals the sum of entry sizes and never exceeds
    capacity; every reported eviction really left the cache."""
    cache = LruCache(capacity)
    for op, key_index, size in ops:
        key = f"k{key_index}"
        if op == "put":
            evicted = cache.put(CacheEntry(key=key, value=None, size_bytes=size))
            for gone in evicted:
                assert gone.key not in cache
        elif op == "get":
            cache.get(key)
        else:
            cache.remove(key)
        assert cache.used_bytes == sum(
            cache.peek(k).size_bytes for k in cache.keys()
        )
        assert cache.used_bytes <= cache.capacity_bytes
