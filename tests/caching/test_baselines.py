"""Tests for the OFC and Faa$T baselines and the no-cache path."""

import pytest

from repro.caching import DirectStorage, FaastSystem, OfcSystem
from repro.cluster import Cluster
from repro.config import KB, SimConfig
from repro.metrics import OpKind
from repro.sim import Simulator
from repro.storage import DataItem


@pytest.fixture
def sim():
    return Simulator(seed=7)


@pytest.fixture
def cluster(sim):
    return Cluster(sim, SimConfig(num_nodes=4))


def run(sim, gen):
    return sim.run_until_complete(sim.spawn(gen), limit=sim.now + 60_000.0)


class TestDirectStorage:
    def test_read_write_roundtrip(self, sim, cluster):
        direct = DirectStorage(cluster)
        run(sim, direct.write("node0", "k", DataItem("v", size_bytes=10)))
        assert run(sim, direct.read("node1", "k")) == DataItem("v", size_bytes=10)

    def test_every_read_pays_storage_rtt(self, sim, cluster):
        direct = DirectStorage(cluster)
        cluster.storage.preload({"k": DataItem("v", size_bytes=10)})
        start = sim.now
        run(sim, direct.read("node0", "k"))
        assert sim.now - start >= cluster.config.latency.storage_rtt


class TestOfc:
    def test_item_cached_only_at_home(self, sim, cluster):
        ofc = OfcSystem(cluster)
        cluster.storage.preload({"k": DataItem("v", size_bytes=10)})
        home = ofc.home_of("k")
        reader = next(n for n in cluster.node_ids if n != home)
        run(sim, ofc.read(reader, "k"))
        run(sim, ofc.read(reader, "k"))
        assert "k" in ofc.agents[home].cache
        assert "k" not in ofc.agents[reader].cache

    def test_remote_read_classification(self, sim, cluster):
        ofc = OfcSystem(cluster)
        cluster.storage.preload({"k": DataItem("v", size_bytes=10)})
        home = ofc.home_of("k")
        reader = next(n for n in cluster.node_ids if n != home)
        run(sim, ofc.read(reader, "k"))   # first touch: storage
        run(sim, ofc.read(reader, "k"))   # now a remote hit at home
        assert ofc.stats.count(OpKind.READ_MISS) == 1
        assert ofc.stats.count(OpKind.REMOTE_READ_HIT) == 1

    def test_home_read_is_local(self, sim, cluster):
        ofc = OfcSystem(cluster)
        cluster.storage.preload({"k": DataItem("v", size_bytes=10)})
        home = ofc.home_of("k")
        run(sim, ofc.read(home, "k"))
        run(sim, ofc.read(home, "k"))
        assert ofc.stats.count(OpKind.LOCAL_READ_HIT) == 1

    def test_write_through(self, sim, cluster):
        ofc = OfcSystem(cluster)
        home = ofc.home_of("k")
        writer = next(n for n in cluster.node_ids if n != home)
        run(sim, ofc.write(writer, "k", DataItem("w", size_bytes=10)))
        assert cluster.storage.peek("k").value == DataItem("w", size_bytes=10)
        assert ofc.agents[home].cache.peek("k").value == DataItem("w", size_bytes=10)

    def test_remote_read_slower_than_home_read(self, sim, cluster):
        ofc = OfcSystem(cluster)
        cluster.storage.preload({"k": DataItem("v", size_bytes=10)})
        home = ofc.home_of("k")
        remote = next(n for n in cluster.node_ids if n != home)
        run(sim, ofc.read(home, "k"))  # warm the home cache
        t0 = sim.now
        run(sim, ofc.read(home, "k"))
        home_latency = sim.now - t0
        t1 = sim.now
        run(sim, ofc.read(remote, "k"))
        remote_latency = sim.now - t1
        assert remote_latency > home_latency


class TestFaast:
    @pytest.fixture
    def faast(self, cluster):
        return FaastSystem(cluster, app="app1")

    def test_non_home_read_checks_version(self, sim, cluster, faast):
        cluster.storage.preload({"k": DataItem("v", size_bytes=10)})
        home = faast.home_of("k")
        reader = next(n for n in cluster.node_ids if n != home)
        run(sim, faast.read(reader, "k"))           # populate local copy
        checks_before = faast.stats.version_checks
        run(sim, faast.read(reader, "k"))           # version check round trip
        assert faast.stats.version_checks == checks_before + 1

    def test_version_match_serves_local_data(self, sim, cluster, faast):
        cluster.storage.preload({"k": DataItem("v", size_bytes=10)})
        home = faast.home_of("k")
        reader = next(n for n in cluster.node_ids if n != home)
        run(sim, faast.read(reader, "k"))
        storage_reads = cluster.storage.stats.reads
        value = run(sim, faast.read(reader, "k"))
        assert value == DataItem("v", size_bytes=10)
        assert cluster.storage.stats.reads == storage_reads  # no storage access

    def test_version_mismatch_fetches_fresh_data(self, sim, cluster, faast):
        cluster.storage.preload({"k": DataItem("v1", size_bytes=10)})
        home = faast.home_of("k")
        nodes = [n for n in cluster.node_ids if n != home]
        reader, writer = nodes[0], nodes[1]
        run(sim, faast.read(reader, "k"))
        run(sim, faast.write(writer, "k", DataItem("v2", size_bytes=10)))
        assert run(sim, faast.read(reader, "k")) == DataItem("v2", size_bytes=10)

    def test_no_invalidations_ever(self, sim, cluster, faast):
        cluster.storage.preload({"k": DataItem("v1", size_bytes=10)})
        home = faast.home_of("k")
        nodes = [n for n in cluster.node_ids if n != home]
        run(sim, faast.read(nodes[0], "k"))
        run(sim, faast.write(nodes[1], "k", DataItem("v2", size_bytes=10)))
        # The stale copy is still present locally (lazily refreshed).
        assert faast.instances[nodes[0]].cache.peek("k").value == DataItem("v1", size_bytes=10)

    def test_write_updates_home_and_storage(self, sim, cluster, faast):
        home = faast.home_of("k")
        writer = next(n for n in cluster.node_ids if n != home)
        run(sim, faast.write(writer, "k", DataItem("w", size_bytes=10)))
        assert cluster.storage.peek("k").value == DataItem("w", size_bytes=10)
        assert faast.instances[home].cache.peek("k").value == DataItem("w", size_bytes=10)
        assert faast.instances[home].versions["k"] == cluster.storage.version_of("k")

    def test_local_hit_in_faast_slower_than_concord(self, sim, cluster, faast):
        """The paper's headline micro-comparison (Figure 11): a Faa$T local
        read hit pays a home round trip; Concord's does not."""
        from repro.core import ConcordSystem

        concord = ConcordSystem(cluster, app="appC")
        cluster.storage.preload({"k": DataItem("v", size_bytes=10)})
        home = faast.home_of("k")
        reader = next(n for n in cluster.node_ids if n != home)
        run(sim, faast.read(reader, "k"))
        t0 = sim.now
        run(sim, faast.read(reader, "k"))
        faast_hit = sim.now - t0

        c_reader = next(
            n for n in cluster.node_ids if n != concord.ring_template.home("k"))
        run(sim, concord.read(c_reader, "k"))
        t1 = sim.now
        run(sim, concord.read(c_reader, "k"))
        concord_hit = sim.now - t1
        assert concord_hit < faast_hit
        assert faast_hit >= concord_hit + cluster.config.latency.internode_rtt * 0.8

    def test_read_only_annotation_skips_version_check(self, sim, cluster):
        faast = FaastSystem(cluster, app="ro", read_only_keys={"const"})
        cluster.storage.preload({"const": DataItem("c", size_bytes=10)})
        home = faast.home_of("const")
        reader = next(n for n in cluster.node_ids if n != home)
        run(sim, faast.read(reader, "const"))
        checks_before = faast.stats.version_checks
        run(sim, faast.read(reader, "const"))
        assert faast.stats.version_checks == checks_before

    def test_home_read_never_checks_version_remotely(self, sim, cluster, faast):
        cluster.storage.preload({"k": DataItem("v", size_bytes=10)})
        home = faast.home_of("k")
        run(sim, faast.read(home, "k"))
        messages_before = cluster.network.stats.messages
        run(sim, faast.read(home, "k"))
        assert cluster.network.stats.messages == messages_before
