"""Fault-tolerance tests: node crashes, recovery, data consistency.

These exercise the guarantees of paper Sections III-F and III-H: the
coordination service detects failed cache instances, survivors evict items
homed at the failed node, the ring is rebuilt, and no combination of reads
observes an inconsistent mix of old and new values.
"""

import pytest

from repro.storage import DataItem


def home_of(concord, key):
    return concord.ring_template.home(key)


def settle(sim, ms=5000.0):
    sim.run(until=sim.now + ms)


class TestCrashRecovery:
    def test_home_crash_evicts_its_keys_everywhere(self, sim, do, concord, cluster):
        key = "k-crash"
        cluster.storage.preload({key: DataItem("v0", size_bytes=100)})
        home = home_of(concord, key)
        survivors = [n for n in concord.agents if n != home][:2]
        for node in survivors:
            do(concord.read(node, key))
        assert all(concord.agents[n].cache.peek(key) for n in survivors)

        cluster.crash_node(home)
        settle(sim)  # heartbeats detect, recovery runs
        for node in survivors:
            assert concord.agents[node].cache.peek(key) is None
            assert home not in concord.agents[node].ring.members

    def test_read_after_home_crash_returns_latest(self, sim, do, concord, cluster):
        key = "k-crash2"
        cluster.storage.preload({key: DataItem("v0", size_bytes=100)})
        home = home_of(concord, key)
        reader = [n for n in concord.agents if n != home][0]
        do(concord.read(reader, key))
        cluster.crash_node(home)
        settle(sim)
        value = do(concord.read(reader, key))
        assert value == DataItem("v0", size_bytes=100)
        # A new home now has the directory entry.
        new_home = concord.agents[reader].ring.home(key)
        assert new_home != home
        assert concord.agents[new_home].directory.get(key) is not None

    def test_unrelated_keys_survive_recovery(self, sim, do, concord, cluster):
        cluster.storage.preload({
            f"key-{i}": DataItem(f"v{i}", size_bytes=50) for i in range(40)
        })
        victim = "node1"
        reader = "node2"
        kept = [
            f"key-{i}" for i in range(40)
            if home_of(concord, f"key-{i}") != victim
        ]
        for key in kept[:5]:
            do(concord.read(reader, key))
        cluster.crash_node(victim)
        settle(sim)
        for key in kept[:5]:
            assert concord.agents[reader].cache.peek(key) is not None

    def test_sharer_crash_does_not_block_writes(self, sim, do, concord, cluster):
        key = "k-sharer"
        cluster.storage.preload({key: DataItem("v0", size_bytes=50)})
        home = home_of(concord, key)
        sharers = [n for n in concord.agents if n != home][:2]
        for node in sharers:
            do(concord.read(node, key))
        cluster.crash_node(sharers[1])
        # Write immediately: the invalidation to the dead sharer times out,
        # gets reported, and the write still completes.
        value = DataItem("v1", size_bytes=50)
        do(concord.write(sharers[0], key, value), limit=120_000.0)
        assert cluster.storage.peek(key).value == value

    def test_writer_retries_when_home_dies_mid_write(self, sim, do, concord, cluster):
        """The critical case: home crashes after committing to storage but
        before invalidating the sharers (Section III-F)."""
        key = "k-critical"
        cluster.storage.preload({key: DataItem("old", size_bytes=50)})
        home = home_of(concord, key)
        writer, stale = [n for n in concord.agents if n != home][:2]
        do(concord.read(writer, key))
        do(concord.read(stale, key))  # both cache it Shared

        # Crash the home at the exact instant the storage commit lands.
        new_value = DataItem("new", size_bytes=50)

        def crash_on_commit(k, value, version, tag):
            if k == key and value == new_value and cluster.node(home).alive:
                cluster.crash_node(home)

        cluster.storage.add_write_listener(crash_on_commit)

        def writing(sim):
            yield from concord.write(writer, key, new_value)

        writing_proc = sim.spawn(writing(sim))
        sim.run(until=sim.now + 60_000.0)
        assert writing_proc.triggered  # the write eventually completed

        # After recovery, nobody holds the old value and every read
        # observes the new one.
        assert concord.agents[stale].cache.peek(key) is None
        for node in concord.agents:
            if node == home:
                continue
            assert do(concord.read(node, key)) == new_value

    def test_no_mixed_reads_during_recovery(self, sim, do, concord, cluster):
        """While recovery is in progress, a node that cannot see the stale
        copy must not read the new value from storage (the read barrier)."""
        key = "k-barrier"
        cluster.storage.preload({key: DataItem("old", size_bytes=50)})
        home = home_of(concord, key)
        others = [n for n in concord.agents if n != home]
        stale_holder, fresh_reader = others[0], others[1]
        do(concord.read(stale_holder, key))

        new_value = DataItem("new", size_bytes=50)

        def crash_on_commit(k, value, version, tag):
            if k == key and value == new_value and cluster.node(home).alive:
                cluster.crash_node(home)

        cluster.storage.add_write_listener(crash_on_commit)

        log = []

        def writing(sim):
            yield from concord.write(home, key, new_value)

        def fresh_read(sim):
            # Issued while the crash is being detected.
            yield sim.timeout(50.0)
            value = yield from concord.read(fresh_reader, key)
            log.append(("fresh", sim.now, value))

        def stale_read(sim):
            yield sim.timeout(50.0)
            value = yield from concord.read(stale_holder, key)
            log.append(("stale", sim.now, value))

        sim.spawn(writing(sim))
        sim.spawn(fresh_read(sim))
        sim.spawn(stale_read(sim))
        sim.run(until=sim.now + 60_000.0)

        fresh = [e for e in log if e[0] == "fresh"][0]
        stale = [e for e in log if e[0] == "stale"][0]
        # If the fresh reader saw the new value, the stale holder must not
        # have read its old copy *after* that (mixed old/new views).
        if fresh[2] == new_value:
            assert not (
                stale[2] == DataItem("old", size_bytes=50) and stale[1] > fresh[1]
            )

    def test_two_failures_in_sequence(self, sim, do, concord, cluster):
        cluster.storage.preload({
            f"kk-{i}": DataItem(f"v{i}", size_bytes=20) for i in range(20)
        })
        reader = "node3"
        for i in range(20):
            do(concord.read(reader, f"kk-{i}"))
        cluster.crash_node("node0")
        settle(sim)
        cluster.crash_node("node1")
        settle(sim)
        assert set(concord.agents[reader].ring.members) == {"node2", "node3"}
        for i in range(20):
            value = do(concord.read(reader, f"kk-{i}"))
            assert value == DataItem(f"v{i}", size_bytes=20)

    def test_coordination_only_informs_affected_apps(self, sim, cluster, coord, config):
        from repro.core import ConcordSystem

        app_a = ConcordSystem(cluster, app="appA", coord=coord,
                              node_ids=["node0", "node1"])
        app_b = ConcordSystem(cluster, app="appB", coord=coord,
                              node_ids=["node2", "node3"])
        sim.run(until=500.0)
        cluster.crash_node("node1")
        settle(sim)
        assert "node1" not in app_a.agents["node0"].ring.members
        # appB never had node1; its rings are untouched and intact.
        assert set(app_b.agents["node2"].ring.members) == {"node2", "node3"}
