"""Functional tests of Concord's coherence operations (Section III-C2)."""

import pytest

from repro.caching.base import EXCLUSIVE, SHARED
from repro.metrics import OpKind
from repro.storage import DataItem


def home_of(concord, key):
    return concord.ring_template.home(key)


def non_home_nodes(concord, key, count=2):
    others = [n for n in concord.agents if n != home_of(concord, key)]
    return others[:count]


@pytest.fixture
def key_and_nodes(concord, cluster):
    """A key, its home node, and two distinct non-home nodes."""
    key = "item-1"
    cluster.storage.preload({key: DataItem("v0", size_bytes=4096)})
    home = home_of(concord, key)
    n1, n2 = non_home_nodes(concord, key)
    return key, home, n1, n2


class TestReadOperations:
    def test_read_miss_loads_exclusive(self, do, concord, key_and_nodes):
        key, home, n1, _ = key_and_nodes
        value = do(concord.read(n1, key))
        assert value == DataItem("v0", size_bytes=4096)
        assert concord.stats.count(OpKind.READ_MISS) == 1
        entry = concord.agents[n1].cache.peek(key)
        assert entry.state == EXCLUSIVE
        dentry = concord.agents[home].directory.get(key)
        assert dentry.state == EXCLUSIVE
        assert dentry.sharers == {n1}

    def test_second_reader_downgrades_to_shared(self, do, concord, key_and_nodes):
        key, home, n1, n2 = key_and_nodes
        do(concord.read(n1, key))
        do(concord.read(n2, key))
        assert concord.agents[n1].cache.peek(key).state == SHARED
        assert concord.agents[n2].cache.peek(key).state == SHARED
        dentry = concord.agents[home].directory.get(key)
        assert dentry.state == SHARED
        assert dentry.sharers == {n1, n2}
        assert concord.stats.count(OpKind.REMOTE_READ_HIT) == 1

    def test_local_read_hit_after_load(self, do, concord, key_and_nodes):
        key, _, n1, _ = key_and_nodes
        do(concord.read(n1, key))
        do(concord.read(n1, key))
        assert concord.stats.count(OpKind.LOCAL_READ_HIT) == 1

    def test_local_hit_is_fast(self, sim, do, concord, key_and_nodes, config):
        key, _, n1, _ = key_and_nodes
        do(concord.read(n1, key))
        start = sim.now
        do(concord.read(n1, key))
        assert sim.now - start == pytest.approx(config.latency.local_access)

    def test_read_miss_pays_storage_round_trip(self, sim, do, concord, key_and_nodes, config):
        key, _, n1, _ = key_and_nodes
        start = sim.now
        do(concord.read(n1, key))
        assert sim.now - start >= config.latency.storage_rtt

    def test_read_of_missing_key_returns_none(self, do, concord):
        node = next(iter(concord.agents))
        assert do(concord.read(node, "ghost")) is None

    def test_home_read_uses_home_cache_when_shared(self, sim, do, concord, cluster):
        # Find a key homed at some node, cache it at home + one other node,
        # then a third node's read must be served without storage access.
        key = "homed-item"
        cluster.storage.preload({key: DataItem("x", size_bytes=1024)})
        home = home_of(concord, key)
        others = non_home_nodes(concord, key)
        do(concord.read(home, key))      # home caches it (E at home)
        do(concord.read(others[0], key))  # downgrades to S
        reads_before = cluster.storage.stats.reads
        do(concord.read(others[1], key))
        assert cluster.storage.stats.reads == reads_before

    def test_silent_eviction_then_remote_read(self, do, concord, key_and_nodes, cluster):
        key, home, n1, n2 = key_and_nodes
        do(concord.read(n1, key))
        # n1 silently evicts; the home still lists it as exclusive owner.
        concord.agents[n1].cache.remove(key)
        value = do(concord.read(n2, key))
        assert value == DataItem("v0", size_bytes=4096)
        # Paper: requester loads in state E when the owner lost its copy.
        assert concord.agents[n2].cache.peek(key).state == EXCLUSIVE
        dentry = concord.agents[home].directory.get(key)
        assert dentry.sharers == {n2}

    def test_owner_re_read_after_own_eviction(self, do, concord, key_and_nodes):
        key, home, n1, _ = key_and_nodes
        do(concord.read(n1, key))
        concord.agents[n1].cache.remove(key)
        value = do(concord.read(n1, key))
        assert value == DataItem("v0", size_bytes=4096)
        assert concord.agents[home].directory.get(key).sharers == {n1}


class TestWriteOperations:
    def test_write_miss_creates_exclusive_entry(self, do, concord, cluster):
        key = "fresh"
        writer = next(iter(concord.agents))
        do(concord.write(writer, key, DataItem("w1", size_bytes=100)))
        assert cluster.storage.peek(key).value == DataItem("w1", size_bytes=100)
        home = home_of(concord, key)
        dentry = concord.agents[home].directory.get(key)
        assert dentry.state == EXCLUSIVE
        assert dentry.sharers == {writer}
        assert concord.agents[writer].cache.peek(key).state == EXCLUSIVE

    def test_exclusive_write_bypasses_home(self, do, concord, cluster, key_and_nodes):
        key, home, n1, _ = key_and_nodes
        do(concord.read(n1, key))  # n1 now E owner
        messages_before = cluster.network.stats.messages
        do(concord.write(n1, key, DataItem("v1", size_bytes=4096)))
        # No coherence messages: update went straight to storage.
        assert cluster.network.stats.messages == messages_before
        assert cluster.storage.peek(key).value == DataItem("v1", size_bytes=4096)
        assert concord.stats.count(OpKind.LOCAL_WRITE_HIT) == 1

    def test_shared_write_invalidates_other_sharers(self, do, concord, key_and_nodes, cluster):
        key, home, n1, n2 = key_and_nodes
        do(concord.read(n1, key))
        do(concord.read(n2, key))
        do(concord.write(n1, key, DataItem("v1", size_bytes=4096)))
        assert concord.agents[n2].cache.peek(key) is None
        assert concord.agents[n1].cache.peek(key).state == EXCLUSIVE
        dentry = concord.agents[home].directory.get(key)
        assert dentry.state == EXCLUSIVE
        assert dentry.sharers == {n1}
        assert cluster.storage.peek(key).value == DataItem("v1", size_bytes=4096)

    def test_invalidation_count_recorded(self, do, concord, key_and_nodes):
        key, home, n1, n2 = key_and_nodes
        others = [n for n in concord.agents if n != home and n not in (n1, n2)]
        n3 = others[0]
        for node in (n1, n2, n3, home):
            do(concord.read(node, key))
        do(concord.write(n1, key, DataItem("v1", size_bytes=10)))
        # n2 and n3 received invalidation *messages*; the home's own copy
        # is dropped locally without a message (Figure 9 counts messages).
        assert concord.stats.invalidations_per_write.max == 2
        for node in (n2, n3, home):
            assert concord.agents[node].cache.peek(key) is None

    def test_remote_write_hit_invalidates_exclusive_owner(self, do, concord, key_and_nodes, cluster):
        key, home, n1, n2 = key_and_nodes
        do(concord.read(n1, key))  # n1 is E owner
        do(concord.write(n2, key, DataItem("v2", size_bytes=50)))
        assert concord.agents[n1].cache.peek(key) is None
        assert concord.agents[n2].cache.peek(key).state == EXCLUSIVE
        assert cluster.storage.peek(key).value == DataItem("v2", size_bytes=50)
        assert concord.stats.count(OpKind.REMOTE_WRITE_HIT) == 1

    def test_write_then_read_from_other_node(self, do, concord, key_and_nodes):
        key, _, n1, n2 = key_and_nodes
        do(concord.write(n1, key, DataItem("new", size_bytes=10)))
        assert do(concord.read(n2, key)) == DataItem("new", size_bytes=10)

    def test_repeated_exclusive_writes_have_no_invalidations(self, do, concord):
        key, writer = "counter", "node0"
        do(concord.write(writer, key, DataItem(0, size_bytes=8)))
        for i in range(1, 4):
            do(concord.write(writer, key, DataItem(i, size_bytes=8)))
        histogram = concord.stats.invalidations_per_write
        assert histogram.max == 0

    def test_stale_self_ownership_write(self, do, concord, key_and_nodes, cluster):
        key, home, n1, _ = key_and_nodes
        do(concord.read(n1, key))
        concord.agents[n1].cache.remove(key)  # silent eviction; still owner
        do(concord.write(n1, key, DataItem("again", size_bytes=10)))
        assert cluster.storage.peek(key).value == DataItem("again", size_bytes=10)
        assert concord.agents[n1].cache.peek(key).state == EXCLUSIVE

    def test_write_at_home_node(self, do, concord, key_and_nodes, cluster):
        key, home, n1, _ = key_and_nodes
        do(concord.read(n1, key))
        do(concord.write(home, key, DataItem("fromhome", size_bytes=10)))
        assert concord.agents[n1].cache.peek(key) is None
        dentry = concord.agents[home].directory.get(key)
        assert dentry.sharers == {home}


class TestWriteSerialization:
    def test_concurrent_writes_serialize_at_home(self, sim, concord, cluster, key_and_nodes):
        key, home, n1, n2 = key_and_nodes

        def writer(node, tag):
            yield from concord.write(node, key, DataItem(tag, size_bytes=10))

        p1 = sim.spawn(writer(n1, "w1"))
        p2 = sim.spawn(writer(n2, "w2"))
        sim.run(until=10_000.0)
        assert p1.triggered and p2.triggered
        final = cluster.storage.peek(key).value
        assert final in (DataItem("w1", size_bytes=10), DataItem("w2", size_bytes=10))
        # The directory must agree: exactly one exclusive owner, holding
        # the same value as storage.
        dentry = concord.agents[home].directory.get(key)
        assert dentry.state == EXCLUSIVE
        owner = dentry.owner
        entry = concord.agents[owner].cache.peek(key)
        assert entry is not None and entry.value == final

    def test_concurrent_read_and_write_are_coherent(self, sim, concord, cluster, key_and_nodes):
        key, home, n1, n2 = key_and_nodes
        results = {}

        def reader(node):
            value = yield from concord.read(node, key)
            results["read"] = value

        def writer(node):
            yield from concord.write(node, key, DataItem("vN", size_bytes=10))

        sim.spawn(reader(n1))
        sim.spawn(writer(n2))
        sim.run(until=10_000.0)
        # The read returned either the old or the new value...
        assert results["read"] in (
            DataItem("v0", size_bytes=4096), DataItem("vN", size_bytes=10),
        )
        # ...but whatever remains cached anywhere equals storage.
        final = cluster.storage.peek(key).value
        for agent in concord.agents.values():
            entry = agent.cache.peek(key)
            if entry is not None:
                assert entry.value == final


class TestExternalWrites:
    def test_external_write_purges_cached_copies(self, sim, do, concord, cluster, key_and_nodes):
        key, home, n1, n2 = key_and_nodes
        do(concord.read(n1, key))
        do(concord.read(n2, key))

        def external(sim):
            yield from cluster.storage.write(
                key, DataItem("ext", size_bytes=10), writer="external")

        do(external(sim))
        sim.run(until=sim.now + 100.0)
        assert concord.agents[n1].cache.peek(key) is None
        assert concord.agents[n2].cache.peek(key) is None
        assert do(concord.read(n1, key)) == DataItem("ext", size_bytes=10)

    def test_faas_writes_do_not_trigger_external_path(self, do, concord, cluster, key_and_nodes):
        key, home, n1, n2 = key_and_nodes
        do(concord.read(n2, key))
        do(concord.write(n1, key, DataItem("internal", size_bytes=10)))
        # Internal writes go through the protocol; the external-write
        # listener must not double-invalidate (n1 keeps its E copy).
        entry = concord.agents[n1].cache.peek(key)
        assert entry is not None and entry.state == EXCLUSIVE


class TestMemoryAccounting:
    def test_capacity_follows_unused_container_memory(self, cluster, concord):
        from repro.config import MB

        node = cluster.node("node0")
        node.add_container("app1", "f1", memory_used=28 * MB)
        agent = concord.agents["node0"]
        agent.refresh_capacity()
        assert agent.cache.capacity_bytes == 100 * MB

    def test_capacity_override_wins(self, cluster, coord):
        from repro.config import MB
        from repro.core import ConcordSystem

        system = ConcordSystem(
            cluster, app="app2", coord=coord, capacity_override=2 * MB)
        agent = system.agents["node0"]
        agent.refresh_capacity()
        assert agent.cache.capacity_bytes == 2 * MB

    def test_oversized_object_not_cached(self, do, cluster, coord):
        from repro.config import MB
        from repro.core import ConcordSystem

        system = ConcordSystem(
            cluster, app="app3", coord=coord, capacity_override=1 * MB)
        cluster.storage.preload({"big": DataItem("huge", size_bytes=4 * MB)})
        value = do(system.read("node1", "big"))
        assert value == DataItem("huge", size_bytes=4 * MB)
        assert system.agents["node1"].cache.peek("big") is None
