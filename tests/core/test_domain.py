"""Dynamic coherence domain tests (paper Section III-D).

Cache instances join and leave an application's coherence domain at
runtime; the two-phase protocol must transfer directory entries to their
new homes, keep every agent's ring view consistent, and never lose or
corrupt data for operations racing with the change.
"""

import pytest

from repro.storage import DataItem

KEYS = [f"dk-{i}" for i in range(60)]


@pytest.fixture
def loaded(cluster):
    cluster.storage.preload({
        key: DataItem(f"val-{key}", size_bytes=64) for key in KEYS
    })
    return KEYS


def directory_homes(concord):
    """Map key -> node whose directory holds its entry."""
    homes = {}
    for node_id, agent in concord.agents.items():
        for key in agent.directory.keys():
            assert key not in homes, f"duplicate directory entry for {key}"
            homes[key] = node_id
    return homes


class TestJoin:
    def test_join_transfers_rehomed_directory_entries(self, sim, do, concord, cluster, loaded):
        reader = "node0"
        for key in KEYS:
            do(concord.read(reader, key))
        before = directory_homes(concord)

        new_node = cluster.add_node()  # node4
        do(concord.create_instance(new_node.id))

        after = directory_homes(concord)
        ring = concord.ring_template
        assert new_node.id in ring.members
        for key in KEYS:
            assert after[key] == ring.home(key)
            # Keys that didn't re-home kept their directory placement.
            if after[key] != new_node.id:
                assert after[key] == before[key]
        # Something actually moved (60 keys across 5 nodes).
        assert any(after[key] == new_node.id for key in KEYS)

    def test_reads_work_after_join(self, do, concord, cluster, loaded):
        do(concord.create_instance(cluster.add_node().id))
        for key in KEYS[:10]:
            assert do(concord.read("node4", key)) == DataItem(f"val-{key}", size_bytes=64)

    def test_join_is_idempotent(self, do, concord, cluster):
        cluster.add_node()
        agent1 = do(concord.create_instance("node4"))
        agent2 = do(concord.create_instance("node4"))
        assert agent1 is agent2

    def test_read_racing_with_join_completes_correctly(self, sim, concord, cluster, loaded):
        """A read issued mid-join for a moving key waits for the commit and
        then resolves against the new home (Section III-H corner case)."""
        cluster.add_node()
        results = {}

        def joining(sim):
            yield from concord.create_instance("node4")

        def racing_reads(sim):
            for key in KEYS:
                value = yield from concord.read("node1", key)
                results[key] = value

        sim.spawn(joining(sim))
        sim.spawn(racing_reads(sim))
        sim.run(until=sim.now + 120_000.0)
        assert len(results) == len(KEYS)
        for key in KEYS:
            assert results[key] == DataItem(f"val-{key}", size_bytes=64)


class TestLeave:
    def test_leave_rehomes_directory_entries(self, do, concord, cluster, loaded):
        reader = "node0"
        for key in KEYS:
            do(concord.read(reader, key))
        leaver = "node2"
        owned_before = [k for k in KEYS if concord.ring_template.home(k) == leaver]
        assert owned_before  # the test needs the leaver to own something

        do(concord.remove_instance(leaver))

        assert leaver not in concord.agents
        after = directory_homes(concord)
        ring = concord.ring_template
        assert leaver not in ring.members
        for key in KEYS:
            if key in after:  # reader-only entries may have been pruned
                assert after[key] == ring.home(key)

    def test_leave_prunes_sharer_pointers(self, do, concord, cluster, loaded):
        leaver = "node2"
        shared_key = next(k for k in KEYS if concord.ring_template.home(k) == "node0")
        do(concord.read(leaver, shared_key))
        do(concord.read("node1", shared_key))
        assert leaver in concord.agents["node0"].directory.get(shared_key).sharers
        do(concord.remove_instance(leaver))
        entry = concord.agents["node0"].directory.get(shared_key)
        assert entry is None or leaver not in entry.sharers

    def test_reads_work_after_leave(self, do, concord, cluster, loaded):
        for key in KEYS[:20]:
            do(concord.read("node1", key))
        do(concord.remove_instance("node2"))
        for key in KEYS[:20]:
            assert do(concord.read("node3", key)) == DataItem(f"val-{key}", size_bytes=64)

    def test_remove_unknown_instance_is_noop(self, do, concord):
        do(concord.remove_instance("node99"))

    def test_leave_then_rejoin(self, do, concord, cluster, loaded):
        do(concord.remove_instance("node2"))
        do(concord.create_instance("node2"))
        assert "node2" in concord.ring_template.members
        assert do(concord.read("node2", KEYS[0])) == DataItem(f"val-{KEYS[0]}", size_bytes=64)

    def test_write_racing_with_leave_lands_in_storage(self, sim, concord, cluster, loaded):
        key = next(k for k in KEYS if concord.ring_template.home(k) == "node2")
        done = []

        def leaving(sim):
            yield from concord.remove_instance("node2")

        def writing(sim):
            yield sim.timeout(1.0)  # start mid-change
            yield from concord.write("node0", key, DataItem("raced", size_bytes=16))
            done.append(sim.now)

        sim.spawn(leaving(sim))
        sim.spawn(writing(sim))
        sim.run(until=sim.now + 120_000.0)
        assert done
        assert cluster.storage.peek(key).value == DataItem("raced", size_bytes=16)
        new_home = concord.ring_template.home(key)
        entry = concord.agents[new_home].directory.get(key)
        assert entry is not None and entry.sharers == {"node0"}


class TestChurn:
    def test_repeated_join_leave_cycles_stay_consistent(self, sim, do, concord, cluster, loaded):
        reader = "node0"
        for key in KEYS[:30]:
            do(concord.read(reader, key))
        cluster.add_node()  # node4
        for _cycle in range(3):
            do(concord.create_instance("node4"))
            do(concord.remove_instance("node4"))
        # Every key still reads correctly and directories are unique.
        for key in KEYS[:30]:
            assert do(concord.read(reader, key)) == DataItem(f"val-{key}", size_bytes=64)
        directory_homes(concord)  # asserts uniqueness internally
        assert set(concord.ring_template.members) == {
            "node0", "node1", "node2", "node3",
        }
