"""Unit tests for the DataDirectory structure."""

import pytest

from repro.caching.base import EXCLUSIVE, SHARED
from repro.core import DataDirectory, DirectoryEntry


@pytest.fixture
def directory():
    return DataDirectory("node0")


class TestEntries:
    def test_set_exclusive(self, directory):
        entry = directory.set_exclusive("k", "node1")
        assert entry.state == EXCLUSIVE
        assert entry.owner == "node1"
        assert entry.is_valid()
        assert "k" in directory
        assert len(directory) == 1

    def test_add_sharer_creates_exclusive(self, directory):
        entry = directory.add_sharer("k", "node1")
        assert entry.state == EXCLUSIVE
        assert entry.sharers == {"node1"}

    def test_second_sharer_downgrades(self, directory):
        directory.add_sharer("k", "node1")
        entry = directory.add_sharer("k", "node2")
        assert entry.state == SHARED
        assert entry.sharers == {"node1", "node2"}
        assert entry.owner is None
        assert entry.is_valid()

    def test_downgrade_explicit(self, directory):
        directory.set_exclusive("k", "node1")
        directory.downgrade("k")
        assert directory.get("k").state == SHARED

    def test_remove(self, directory):
        directory.set_exclusive("k", "node1")
        removed = directory.remove("k")
        assert removed.key == "k"
        assert directory.remove("k") is None
        assert len(directory) == 0

    def test_install_transferred_entry(self, directory):
        entry = DirectoryEntry(key="k", state=SHARED, sharers={"a", "b"})
        directory.install(entry)
        assert directory.get("k") is entry

    def test_invalid_structural_states_detected(self):
        bad = DirectoryEntry(key="k", state=EXCLUSIVE, sharers={"a", "b"})
        assert not bad.is_valid()
        empty = DirectoryEntry(key="k", state=SHARED, sharers=set())
        assert not empty.is_valid()


class TestPruning:
    def test_remove_sharer_everywhere(self, directory):
        directory.add_sharer("k1", "nodeX")
        directory.add_sharer("k1", "nodeY")
        directory.add_sharer("k2", "nodeX")
        directory.set_exclusive("k3", "nodeZ")
        touched = directory.remove_sharer_everywhere("nodeX")
        assert set(touched) == {"k1", "k2"}
        assert directory.get("k1").sharers == {"nodeY"}
        assert directory.get("k2") is None  # no sharers left -> dropped
        assert directory.get("k3").sharers == {"nodeZ"}  # untouched

    def test_pop_entries_for(self, directory):
        directory.set_exclusive("a", "n1")
        directory.set_exclusive("b", "n2")
        popped = directory.pop_entries_for(["a", "ghost"])
        assert [e.key for e in popped] == ["a"]
        assert "a" not in directory
        assert "b" in directory

    def test_sharer_counts(self, directory):
        directory.add_sharer("k1", "a")
        directory.add_sharer("k1", "b")
        directory.add_sharer("k2", "a")
        assert sorted(directory.sharer_counts()) == [1, 2]

    def test_keys_and_entries_views(self, directory):
        directory.set_exclusive("a", "n1")
        directory.set_exclusive("b", "n1")
        assert sorted(directory.keys()) == ["a", "b"]
        assert {e.key for e in directory.entries()} == {"a", "b"}
