"""Tests for false-failure ejection and rejoin (Section III-H timeouts)."""

import pytest

from repro.storage import DataItem


def V(tag, size=64):
    return DataItem(tag, size)


class TestEjection:
    def test_eject_flushes_state(self, do, concord, cluster):
        cluster.storage.preload({"k": V("v0")})
        do(concord.read("node1", "k"))
        agent = concord.agents["node1"]
        epoch_before = agent.epoch
        agent.eject()
        assert agent.ejected
        assert len(agent.cache) == 0
        assert len(agent.directory) == 0
        assert "node1" not in agent.ring.members
        assert agent.epoch > epoch_before
        agent.eject()  # idempotent

    def test_report_unreachable_ejects_and_rejoins_live_node(
            self, sim, do, concord, cluster, coord):
        """A live node falsely reported unreachable flushes, rejoins, and
        keeps serving coherently."""
        cluster.storage.preload({"k": V("v0")})
        do(concord.read("node1", "k"))
        # Some peer claims node1 is unreachable (it is actually fine).
        coord.report_unreachable("app1", "node1")
        sim.run(until=sim.now + 5000.0)
        agent = concord.agents["node1"]
        assert not agent.ejected  # rejoined
        assert "node1" in agent.ring.members
        assert "node1" in concord.controller.ring.members
        # And it still serves coherent data.
        assert do(concord.read("node1", "k")) == V("v0")
        do(concord.write("node2", "k", V("v1")))
        assert do(concord.read("node1", "k")) == V("v1")

    def test_ejected_node_rejoins_coordination_group(
            self, sim, do, concord, cluster, coord):
        coord.report_unreachable("app1", "node2")
        sim.run(until=sim.now + 5000.0)
        assert "node2" in coord.members("app1")

    def test_writes_during_ejection_window_stay_coherent(
            self, sim, concord, cluster, coord):
        cluster.storage.preload({"k": V("v0")})
        results = []

        def reader(sim):
            for _ in range(6):
                yield sim.timeout(40.0)
                value = yield from concord.read("node1", "k")
                results.append(value)

        def writer(sim):
            yield sim.timeout(50.0)
            yield from concord.write("node3", "k", V("v1"))

        def suspect(sim):
            yield sim.timeout(30.0)
            coord.report_unreachable("app1", "node1")

        sim.spawn(reader(sim))
        sim.spawn(writer(sim))
        sim.spawn(suspect(sim))
        sim.run(until=sim.now + 30_000.0)
        # The final reads converged on the committed value.
        assert results[-1] == V("v1")
        # At quiescence every cached copy equals storage.
        for agent in concord.agents.values():
            entry = agent.cache.peek("k")
            if entry is not None:
                assert entry.value == cluster.storage.peek("k").value


class TestBarriers:
    def test_barrier_blocks_only_covered_keys(self, sim, do, concord, cluster):
        cluster.storage.preload({
            f"bk-{i}": V(f"v{i}") for i in range(30)
        })
        agent = concord.agents["node0"]
        member = "node2"
        snapshot = agent.ring.copy()
        covered = [k for k in (f"bk-{i}" for i in range(30))
                   if snapshot.home(k) == member]
        uncovered = [k for k in (f"bk-{i}" for i in range(30))
                     if snapshot.home(k) != member][:3]
        assert covered and uncovered
        agent.raise_barrier(member, snapshot)

        blocked = sim.spawn(concord.read("node0", covered[0]))
        sim.run(until=sim.now + 500.0)
        assert not blocked.triggered  # waiting on the barrier

        for key in uncovered:
            assert do(concord.read("node0", key)) is not None  # unaffected

        agent.lift_barrier(member)
        sim.run(until=sim.now + 1000.0)
        assert blocked.triggered

    def test_lift_without_raise_is_noop(self, concord):
        concord.agents["node0"].lift_barrier("ghost")

    def test_raise_is_idempotent(self, sim, concord):
        agent = concord.agents["node0"]
        snapshot = agent.ring.copy()
        agent.raise_barrier("node1", snapshot)
        first = agent._barriers["node1"][1]
        agent.raise_barrier("node1", snapshot)
        assert agent._barriers["node1"][1] is first
        agent.lift_barrier("node1")
