"""External write path edge cases (Section III-C3)."""

import pytest

from repro.storage import DataItem


def V(tag):
    return DataItem(tag, 128)


class TestExternalWrites:
    def test_external_write_during_domain_change_converges(
            self, sim, do, concord, cluster):
        """An external update landing mid-join still purges every copy:
        the forward path retries against the moving home."""
        key = "ext-race"
        cluster.storage.preload({key: V("v0")})
        for node in ("node0", "node1", "node3"):
            do(concord.read(node, key))
        cluster.add_node()  # node4

        def joining(sim):
            yield from concord.create_instance("node4")

        def external(sim):
            yield sim.timeout(1.0)  # lands mid-join
            yield from cluster.storage.write(key, V("ext"), writer="external")

        sim.spawn(joining(sim))
        sim.spawn(external(sim))
        sim.run(until=sim.now + 10_000.0)
        for node in ("node0", "node1", "node3"):
            assert do(concord.read(node, key)) == V("ext")

    def test_external_write_to_uncached_key(self, sim, do, concord, cluster):
        """No cached copies: the external path is a no-op beyond routing."""
        def external(sim):
            yield from cluster.storage.write("never-cached", V("x"),
                                             writer="external")

        do(external(sim))
        sim.run(until=sim.now + 200.0)
        assert do(concord.read("node0", "never-cached")) == V("x")

    def test_repeated_external_writes(self, sim, do, concord, cluster):
        key = "ext-rep"
        cluster.storage.preload({key: V("v0")})
        for round_index in range(3):
            do(concord.read("node1", key))

            def external(sim, tag=f"e{round_index}"):
                yield from cluster.storage.write(key, V(tag), writer="external")

            do(external(sim))
            sim.run(until=sim.now + 200.0)
            assert do(concord.read("node1", key)) == V(f"e{round_index}")


class TestTeardown:
    def test_close_releases_endpoints(self, sim, cluster, coord):
        from repro.core import ConcordSystem

        system = ConcordSystem(cluster, app="closeme", coord=coord)
        addresses = [a.endpoint.address for a in system.agents.values()]
        system.close()
        for address in addresses:
            assert cluster.network.endpoint(address) is None
        # The app name is free for a fresh system.
        fresh = ConcordSystem(cluster, app="closeme", coord=None)
        assert fresh.agents
