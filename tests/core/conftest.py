"""Shared fixtures for Concord protocol tests."""

import pytest

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=42)


@pytest.fixture
def config():
    return SimConfig(num_nodes=4, heartbeat_interval_ms=100.0, heartbeat_misses=3)


@pytest.fixture
def cluster(sim, config):
    return Cluster(sim, config)


@pytest.fixture
def coord(cluster, config):
    return CoordinationService(cluster.network, config)


@pytest.fixture
def concord(cluster, coord):
    return ConcordSystem(cluster, app="app1", coord=coord)


def run(sim, gen, limit=60_000.0):
    """Run one operation to completion; ``limit`` is relative to now."""
    return sim.run_until_complete(sim.spawn(gen), limit=sim.now + limit)


@pytest.fixture
def do(sim):
    """Callable running a generator op to completion."""
    def _do(gen, limit=60_000.0):
        return run(sim, gen, limit)
    return _do
