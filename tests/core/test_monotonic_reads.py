"""Monotonic-read coherence: no node ever reads backwards in time.

With an invalidation protocol and write-through storage, once any node has
observed version N of a key, no later read anywhere may return an older
version — the stale copies were invalidated before version N committed.
This pins down the ordering guarantee the Faa$T baseline only provides
lazily (its nodes *can* read stale values between version checks).
"""

import pytest

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.sim import Simulator
from repro.storage import DataItem

KEYS = [f"mk-{i}" for i in range(4)]


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_reads_never_go_backwards(seed):
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, SimConfig(num_nodes=4))
    coord = CoordinationService(cluster.network, cluster.config)
    concord = ConcordSystem(cluster, app="mono", coord=coord)
    cluster.storage.preload({key: DataItem((key, 0), 128) for key in KEYS})

    # Map committed value -> its storage version, recorded at commit time.
    committed_version = {(key, 0): 1 for key in KEYS}

    def on_commit(key, value, version, writer):
        committed_version[value.payload] = version

    cluster.storage.add_write_listener(on_commit)

    rng = sim.rng.stream("mono-ops")
    reads = []  # (node, key, end_time, payload)

    def worker(node_id, worker_id):
        sequence = 0
        for _ in range(50):
            yield sim.timeout(rng.expovariate(1 / 4.0))
            key = rng.choice(KEYS)
            if rng.random() < 0.7:
                value = yield from concord.read(node_id, key)
                reads.append((node_id, key, sim.now, value.payload))
            else:
                sequence += 1
                yield from concord.write(
                    node_id, key,
                    DataItem((key, f"{worker_id}.{sequence}"), 128))

    for index, node_id in enumerate(concord.agents):
        sim.spawn(worker(node_id, index))
    sim.run(until=300_000.0)
    assert len(reads) > 100

    # Per (node, key), the observed storage versions are non-decreasing.
    last_seen = {}
    for node, key, _when, payload in reads:
        version = committed_version[payload]
        previous = last_seen.get((node, key), 0)
        assert version >= previous, (
            f"{node} read {key} version {version} after seeing {previous}"
        )
        last_seen[(node, key)] = version

    # Cross-node monotonicity: reads ordered by completion time observe
    # versions that only move forward, modulo reads that overlapped the
    # same write (their completion order vs commit order can interleave
    # by one version legitimately).
    reads.sort(key=lambda r: r[2])
    per_key_high = {}
    for _node, key, _when, payload in reads:
        version = committed_version[payload]
        high = per_key_high.get(key, 0)
        assert version >= high - 1, (
            f"{key}: read version {version} long after version {high} was seen"
        )
        per_key_high[key] = max(high, version)


def test_run_all_cli_lists_and_runs():
    from repro.experiments import run_all

    assert run_all.main(["--list"]) == 0
    assert "fig07" in run_all.EXPERIMENTS
    assert run_all.main(["--only", "ablation_virtual_nodes"]) == 0
    with pytest.raises(SystemExit):
        run_all.main(["--only", "nope"])
