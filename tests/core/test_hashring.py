"""Unit and property tests for the consistent hash ring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConsistentHashRing
from repro.core.domain import keys_moving_to_joiner, new_homes_for_leaver
from repro.core.hashring import EmptyRingError


MEMBERS = [f"node{i}" for i in range(8)]
KEYS = [f"key-{i}" for i in range(500)]


class TestBasics:
    def test_empty_ring_lookup_raises(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().home("k")

    def test_single_member_owns_everything(self):
        ring = ConsistentHashRing(["only"])
        assert all(ring.home(k) == "only" for k in KEYS)

    def test_membership_api(self):
        ring = ConsistentHashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring
        ring.remove("a")
        assert "a" not in ring
        ring.remove("a")  # idempotent
        ring.add("b")  # idempotent
        assert len(ring) == 1

    def test_virtual_nodes_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(virtual_nodes=0)

    def test_deterministic_across_instances(self):
        r1 = ConsistentHashRing(MEMBERS)
        r2 = ConsistentHashRing(reversed(MEMBERS))
        assert all(r1.home(k) == r2.home(k) for k in KEYS)

    def test_copy_is_independent(self):
        ring = ConsistentHashRing(MEMBERS)
        clone = ring.copy()
        clone.remove("node0")
        assert "node0" in ring
        assert "node0" not in clone

    def test_distribution_is_roughly_uniform(self):
        ring = ConsistentHashRing(MEMBERS, virtual_nodes=128)
        counts = {m: 0 for m in MEMBERS}
        for key in KEYS:
            counts[ring.home(key)] += 1
        expected = len(KEYS) / len(MEMBERS)
        assert all(count > expected * 0.3 for count in counts.values())
        assert all(count < expected * 3.0 for count in counts.values())


class TestEmptyRing:
    """Empty-ring operations raise loudly instead of silently no-oping.

    Regression: ``remove`` on an empty ring used to be a silent no-op
    and ``rehomed_keys`` returned ``{}``, so a caller that lost track of
    membership only failed later, as misrouted keys.
    """

    def test_remove_on_empty_ring_raises(self):
        with pytest.raises(EmptyRingError):
            ConsistentHashRing().remove("ghost")

    def test_remove_nonmember_on_populated_ring_stays_idempotent(self):
        ring = ConsistentHashRing(["a"])
        ring.remove("ghost")  # no-op: the ring itself is fine
        assert "a" in ring

    def test_rehomed_keys_on_empty_ring_raises(self):
        with pytest.raises(EmptyRingError):
            ConsistentHashRing().rehomed_keys(KEYS, "ghost")

    def test_rehomed_keys_for_last_member_raises(self):
        with pytest.raises(EmptyRingError):
            ConsistentHashRing(["solo"]).rehomed_keys(KEYS, "solo")

    def test_lookups_on_empty_ring_raise(self):
        with pytest.raises(EmptyRingError):
            ConsistentHashRing().home("k")
        with pytest.raises(EmptyRingError):
            ConsistentHashRing().preference_list("k", 2)

    def test_empty_ring_error_is_a_lookup_error(self):
        # Existing ``except LookupError`` call sites must keep working.
        assert issubclass(EmptyRingError, LookupError)


class TestMinimalDisruption:
    def test_removal_only_rehomes_removed_members_keys(self):
        ring = ConsistentHashRing(MEMBERS)
        before = {k: ring.home(k) for k in KEYS}
        ring.remove("node3")
        for key in KEYS:
            if before[key] != "node3":
                assert ring.home(key) == before[key]
            else:
                assert ring.home(key) != "node3"

    def test_addition_only_steals_keys_for_new_member(self):
        ring = ConsistentHashRing(MEMBERS)
        before = {k: ring.home(k) for k in KEYS}
        ring.add("node99")
        for key in KEYS:
            after = ring.home(key)
            assert after == before[key] or after == "node99"

    def test_rehomed_keys_helper(self):
        ring = ConsistentHashRing(MEMBERS)
        owned = [k for k in KEYS if ring.home(k) == "node2"]
        rehomed = ring.rehomed_keys(KEYS, "node2")
        assert set(rehomed) == set(owned)
        assert all(target != "node2" for target in rehomed.values())

    def test_new_homes_for_leaver_matches_reduced_ring(self):
        ring = ConsistentHashRing(MEMBERS)
        owned = [k for k in KEYS if ring.home(k) == "node5"]
        groups = new_homes_for_leaver(ring, "node5", owned)
        reduced = ring.copy()
        reduced.remove("node5")
        for target, keys in groups.items():
            assert all(reduced.home(k) == target for k in keys)
        assert sum(len(v) for v in groups.values()) == len(owned)

    def test_keys_moving_to_joiner_matches_extended_ring(self):
        ring = ConsistentHashRing(MEMBERS)
        moving = keys_moving_to_joiner(ring, "fresh", KEYS)
        extended = ring.copy()
        extended.add("fresh")
        expected = [k for k in KEYS if extended.home(k) == "fresh"]
        assert sorted(moving) == sorted(expected)


@settings(max_examples=50, deadline=None)
@given(
    members=st.sets(st.sampled_from(MEMBERS), min_size=1),
    key=st.text(min_size=1, max_size=20),
)
def test_home_always_a_member(members, key):
    ring = ConsistentHashRing(members)
    assert ring.home(key) in members


@settings(max_examples=50, deadline=None)
@given(
    members=st.sets(st.sampled_from(MEMBERS), min_size=2),
    leaver_index=st.integers(min_value=0, max_value=7),
    keys=st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=30),
)
def test_consistent_hashing_stability_property(members, leaver_index, keys):
    """Removing any member never re-homes keys it did not own."""
    ring = ConsistentHashRing(members)
    leaver = sorted(members)[leaver_index % len(members)]
    before = {k: ring.home(k) for k in keys}
    ring.remove(leaver)
    if not len(ring):
        return
    for key in keys:
        if before[key] != leaver:
            assert ring.home(key) == before[key]


@settings(max_examples=50, deadline=None)
@given(
    members=st.sets(st.sampled_from(MEMBERS), min_size=1),
    keys=st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=30),
)
def test_addition_moves_only_arc_keys_property(members, keys):
    """Adding a member only re-homes keys onto the joiner — every key it
    does not steal keeps its old home (the minimal-disruption half of
    consistent hashing, for joins)."""
    ring = ConsistentHashRing(members)
    before = {k: ring.home(k) for k in keys}
    ring.add("joiner")
    for key in keys:
        after = ring.home(key)
        assert after == before[key] or after == "joiner"


@settings(max_examples=50, deadline=None)
@given(
    members=st.sets(st.sampled_from(MEMBERS), min_size=2),
    leaver_index=st.integers(min_value=0, max_value=7),
    keys=st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=30),
)
def test_remove_add_round_trip_property(members, leaver_index, keys):
    """Removing a member and adding it back restores every home exactly:
    the ring is a pure function of its membership set, with no history
    dependence from the churn."""
    ring = ConsistentHashRing(members)
    leaver = sorted(members)[leaver_index % len(members)]
    before = {k: ring.home(k) for k in keys}
    ring.remove(leaver)
    ring.add(leaver)
    assert {k: ring.home(k) for k in keys} == before
    assert ring.members == set(members)
