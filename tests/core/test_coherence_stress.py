"""Randomized stress tests of the coherence protocol's safety invariants.

These complement the explicit-state model checker in :mod:`repro.verify`:
instead of exhaustively exploring a tiny model, they run hundreds of random
concurrent operations through the full simulated stack and then check the
paper's two data-consistency invariants (Section III-H):

1. coherence states in all caches are correct (single writer: at most one
   E copy, and E excludes S copies elsewhere; directory supersets reality);
2. a read of a valid cache location returns the value last written to it —
   checked at quiescence as: every valid cached copy equals storage, and
   reads never return a value older than one they could not have seen.
"""

import pytest

from repro.caching.base import EXCLUSIVE, SHARED
from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.sim import Simulator
from repro.storage import DataItem

KEYS = [f"sk-{i}" for i in range(8)]


def check_invariants(concord, cluster):
    """The safety conditions that must hold at quiescence."""
    for key in KEYS:
        holders = {}
        for node_id, agent in concord.agents.items():
            entry = agent.cache.peek(key)
            if entry is not None:
                holders[node_id] = entry
        # Single-writer: at most one E copy; an E copy excludes any other.
        exclusive = [n for n, e in holders.items() if e.state == EXCLUSIVE]
        if exclusive:
            assert len(exclusive) == 1, f"{key}: two E copies"
            assert len(holders) == 1, f"{key}: E copy coexists with others"
        # Write-through: every valid copy equals the storage value.
        record = cluster.storage.peek(key)
        for node_id, entry in holders.items():
            assert entry.value == record.value, (
                f"{key}@{node_id}: cached {entry.value} != storage {record.value}"
            )
        # Directory completeness: every holder is tracked at the home.
        home = concord.ring_template.home(key)
        dentry = concord.agents[home].directory.get(key)
        for node_id in holders:
            assert dentry is not None and node_id in dentry.sharers, (
                f"{key}: holder {node_id} missing from directory"
            )
        if dentry is not None:
            assert dentry.is_valid()


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_random_concurrent_ops_keep_invariants(seed):
    sim = Simulator(seed=seed)
    config = SimConfig(num_nodes=4)
    cluster = Cluster(sim, config)
    coord = CoordinationService(cluster.network, config)
    concord = ConcordSystem(cluster, app="stress", coord=coord)
    cluster.storage.preload({
        key: DataItem((key, 0), size_bytes=256) for key in KEYS
    })

    rng = sim.rng.stream("stress-ops")
    observed = []

    def worker(node_id, worker_id):
        sequence = 0
        for _ in range(40):
            yield sim.timeout(rng.expovariate(1 / 5.0))
            key = rng.choice(KEYS)
            if rng.random() < 0.8:
                start = sim.now
                value = yield from concord.read(node_id, key)
                observed.append((key, start, sim.now, value))
            else:
                sequence += 1
                yield from concord.write(
                    node_id, key,
                    DataItem((key, f"{worker_id}.{sequence}"), size_bytes=256),
                )

    for index, node_id in enumerate(concord.agents):
        sim.spawn(worker(node_id, index))
        sim.spawn(worker(node_id, index + 100))
    sim.run(until=120_000.0)
    check_invariants(concord, cluster)
    # Reads never return None (all keys preloaded) and always a DataItem.
    assert observed
    for key, _start, _end, value in observed:
        assert isinstance(value, DataItem)
        assert value.payload[0] == key


@pytest.mark.parametrize("seed", [11, 12])
def test_stress_with_churn_and_failures(seed):
    """Random traffic while an instance joins/leaves and a node crashes."""
    sim = Simulator(seed=seed)
    config = SimConfig(num_nodes=5, heartbeat_interval_ms=100.0)
    cluster = Cluster(sim, config)
    coord = CoordinationService(cluster.network, config)
    members = ["node0", "node1", "node2", "node3"]
    concord = ConcordSystem(cluster, app="churny", coord=coord, node_ids=members)
    cluster.storage.preload({
        key: DataItem((key, 0), size_bytes=128) for key in KEYS
    })

    rng = sim.rng.stream("churn-ops")
    completed = []

    def worker(node_id):
        for _ in range(30):
            yield sim.timeout(rng.expovariate(1 / 20.0))
            if not concord.agents.get(node_id) or not cluster.node(node_id).alive:
                return
            key = rng.choice(KEYS)
            try:
                if rng.random() < 0.75:
                    value = yield from concord.read(node_id, key)
                    completed.append(("r", key, value))
                else:
                    yield from concord.write(
                        node_id, key, DataItem((key, sim.now), size_bytes=128))
                    completed.append(("w", key, None))
            except Exception:
                # Ops targeting the crashed node's agent may fail; the
                # functions there died with it.
                if cluster.node(node_id).alive:
                    raise

    def churn(sim):
        yield sim.timeout(300.0)
        yield from concord.create_instance("node4")
        yield sim.timeout(300.0)
        yield from concord.remove_instance("node4")
        yield sim.timeout(200.0)
        cluster.crash_node("node3")

    for node_id in ("node0", "node1", "node2", "node3"):
        sim.spawn(worker(node_id))
    sim.spawn(churn(sim))
    sim.run(until=240_000.0)

    # Survivors converged on a consistent view.
    survivors = {n: a for n, a in concord.agents.items() if cluster.node(n).alive}
    for agent in survivors.values():
        assert "node3" not in agent.ring.members
        assert "node4" not in agent.ring.members
    for key in KEYS:
        record = cluster.storage.peek(key)
        for node_id, agent in survivors.items():
            entry = agent.cache.peek(key)
            if entry is not None:
                assert entry.value == record.value
    assert len(completed) > 50
