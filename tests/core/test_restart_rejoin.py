"""End-to-end: a crashed node restarts and rejoins the coherence domain."""

import pytest

from repro.storage import DataItem

KEYS = [f"rk-{i}" for i in range(20)]


def V(tag):
    return DataItem(tag, 64)


class TestRestartRejoin:
    def test_restarted_node_rejoins_and_serves(self, sim, do, concord,
                                               cluster, coord):
        cluster.storage.preload({k: V(f"v-{k}") for k in KEYS})
        for key in KEYS[:8]:
            do(concord.read("node1", key))

        # Crash and let the heartbeat detection + recovery run.
        cluster.crash_node("node1")
        sim.run(until=sim.now + 5000.0)
        survivors = concord.agents["node0"].ring.members
        assert "node1" not in survivors

        # The node comes back (fresh, empty) and rejoins the domain.
        cluster.restart_node("node1")
        old_agent = concord.agents.pop("node1")
        old_agent.close()
        do(concord.create_instance("node1"))
        sim.run(until=sim.now + 1000.0)

        assert "node1" in concord.agents["node0"].ring.members
        assert "node1" in concord.controller.ring.members
        # It serves coherent data again.
        for key in KEYS[:8]:
            assert do(concord.read("node1", key)) == V(f"v-{key}")
        # And participates in coherence: a write elsewhere invalidates it.
        do(concord.write("node2", KEYS[0], V("fresh")))
        assert concord.agents["node1"].cache.peek(KEYS[0]) is None
        assert do(concord.read("node1", KEYS[0])) == V("fresh")

    def test_full_cycle_preserves_directory_uniqueness(self, sim, do,
                                                       concord, cluster, coord):
        cluster.storage.preload({k: V(f"v-{k}") for k in KEYS})
        for key in KEYS:
            do(concord.read("node0", key))
        cluster.crash_node("node2")
        sim.run(until=sim.now + 5000.0)
        cluster.restart_node("node2")
        concord.agents.pop("node2").close()
        do(concord.create_instance("node2"))
        for key in KEYS:
            do(concord.read("node3", key))
        # Exactly one directory entry per key, at its ring home.
        homes = {}
        for node_id, agent in concord.agents.items():
            for key in agent.directory.keys():
                assert key not in homes, f"duplicate directory entry: {key}"
                homes[key] = node_id
        ring = concord.agents["node0"].ring
        for key, node_id in homes.items():
            assert ring.home(key) == node_id
