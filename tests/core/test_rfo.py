"""Tests for read-for-ownership (the transactional write-intent path)."""

import pytest

from repro.caching.base import EXCLUSIVE, SHARED
from repro.storage import DataItem


@pytest.fixture
def key_setup(concord, cluster):
    key = "rfo-item"
    cluster.storage.preload({key: DataItem("v0", size_bytes=512)})
    home = concord.ring_template.home(key)
    others = [n for n in concord.agents if n != home]
    return key, home, others


class TestRfo:
    def test_rfo_grants_exclusive_without_storage_write(self, do, concord, cluster, key_setup):
        key, home, others = key_setup
        writes_before = cluster.storage.stats.writes
        value = do(concord.agents[others[0]].acquire_exclusive(key))
        assert value == DataItem("v0", size_bytes=512)
        assert cluster.storage.stats.writes == writes_before
        entry = concord.agents[others[0]].cache.peek(key)
        assert entry.state == EXCLUSIVE
        dentry = concord.agents[home].directory.get(key)
        assert dentry.state == EXCLUSIVE and dentry.sharers == {others[0]}

    def test_rfo_invalidates_other_sharers(self, do, concord, key_setup):
        key, home, others = key_setup
        do(concord.read(others[0], key))
        do(concord.read(others[1], key))
        do(concord.agents[others[0]].acquire_exclusive(key))
        assert concord.agents[others[1]].cache.peek(key) is None
        assert concord.agents[others[0]].cache.peek(key).state == EXCLUSIVE

    def test_upgrade_from_shared_transfers_no_data(self, sim, do, concord, cluster, key_setup):
        key, home, others = key_setup
        do(concord.read(others[0], key))
        do(concord.read(others[1], key))  # both Shared now
        bytes_before = cluster.network.stats.bytes
        value = do(concord.agents[others[0]].acquire_exclusive(key))
        assert value == DataItem("v0", size_bytes=512)
        # Only control messages traveled, far less than the 512B payload.
        assert cluster.network.stats.bytes - bytes_before < 256

    def test_rfo_when_already_exclusive_is_local(self, sim, do, concord, cluster, key_setup):
        key, home, others = key_setup
        do(concord.read(others[0], key))  # E
        messages_before = cluster.network.stats.messages
        do(concord.agents[others[0]].acquire_exclusive(key))
        assert cluster.network.stats.messages == messages_before

    def test_rfo_at_home_node(self, do, concord, key_setup):
        key, home, others = key_setup
        do(concord.read(others[0], key))
        value = do(concord.agents[home].acquire_exclusive(key))
        assert value == DataItem("v0", size_bytes=512)
        assert concord.agents[home].directory.get(key).sharers == {home}

    def test_rfo_value_reflects_latest_write(self, do, concord, key_setup):
        key, home, others = key_setup
        do(concord.write(others[1], key, DataItem("v1", size_bytes=512)))
        value = do(concord.agents[others[0]].acquire_exclusive(key))
        assert value == DataItem("v1", size_bytes=512)


class TestCompareAndSwap:
    def test_cas_succeeds_on_matching_version(self, sim, cluster, do):
        cluster.storage.preload({"k": DataItem("v0", 64)})
        ok, version = do(cluster.storage.compare_and_swap(
            "k", DataItem("v1", 64), expected_version=1))
        assert ok and version == 2
        assert cluster.storage.peek("k").value == DataItem("v1", 64)

    def test_cas_fails_on_stale_version(self, sim, cluster, do):
        cluster.storage.preload({"k": DataItem("v0", 64)})
        do(cluster.storage.write("k", DataItem("v1", 64)))
        ok, version = do(cluster.storage.compare_and_swap(
            "k", DataItem("v2", 64), expected_version=1))
        assert not ok and version == 2
        assert cluster.storage.peek("k").value == DataItem("v1", 64)

    def test_cas_on_missing_key(self, sim, cluster, do):
        ok, version = do(cluster.storage.compare_and_swap(
            "ghost", DataItem("v", 64), expected_version=0))
        assert ok and version == 1

    def test_failed_cas_fires_no_listener(self, sim, cluster, do):
        seen = []
        cluster.storage.preload({"k": DataItem("v0", 64)})
        cluster.storage.add_write_listener(lambda *a: seen.append(a))
        do(cluster.storage.compare_and_swap("k", DataItem("x", 64), 99))
        assert seen == []
