"""Platform behavior around node failures and container lifecycle."""

import pytest

from repro.caching import DirectStorage
from repro.cluster import Cluster
from repro.config import SimConfig
from repro.faas import AppSpec, FaasPlatform, FunctionSpec


@pytest.fixture
def sim():
    from repro.sim import Simulator

    return Simulator(seed=13)


@pytest.fixture
def cluster(sim):
    return Cluster(sim, SimConfig(num_nodes=3, cores_per_node=2))


def trivial_app():
    def f(ctx):
        yield from ctx.compute(1.0)
        return "done"

    spec = AppSpec(name="t")
    spec.add_function(FunctionSpec("f", f))
    return spec


def run(sim, gen):
    return sim.run_until_complete(sim.spawn(gen), limit=sim.now + 60_000.0)


class TestFailures:
    def test_warm_nodes_skips_dead_nodes(self, sim, cluster):
        platform = FaasPlatform(cluster)
        app = platform.deploy(trivial_app(), DirectStorage(cluster))
        cluster.crash_node("node1")
        warm = platform.warm_nodes(app, "f")
        assert {n.id for n in warm} == {"node0", "node2"}

    def test_requests_keep_flowing_after_crash(self, sim, cluster):
        platform = FaasPlatform(cluster)
        platform.deploy(trivial_app(), DirectStorage(cluster))
        cluster.crash_node("node2")
        for _ in range(5):
            result = run(sim, platform.request("t"))
            assert result.output == "done"

    def test_all_nodes_dead_falls_back_to_cold_start_elsewhere(self, sim, cluster):
        platform = FaasPlatform(cluster)
        app = platform.deploy(trivial_app(), DirectStorage(cluster),
                              node_ids=["node1"])
        cluster.crash_node("node1")
        result = run(sim, platform.request("t"))
        assert result.output == "done"
        assert app.cold_starts == 1

    def test_crash_mid_invocation_reschedules_elsewhere(self, sim, cluster):
        """A request interrupted by a node crash re-runs on a live node."""

        def slow(ctx):
            yield from ctx.compute(500.0)
            return "done"

        spec = AppSpec(name="t")
        spec.add_function(FunctionSpec("f", slow))
        platform = FaasPlatform(cluster)
        app = platform.deploy(spec, DirectStorage(cluster),
                              node_ids=["node1"])
        platform.submit("t")
        sim.run(until=100.0)  # the invocation is mid-compute on node1
        cluster.crash_node("node1")
        sim.run(until=5000.0)
        assert app.requests_rescheduled == 1
        assert app.requests_completed == 1
        assert app.requests_failed == 0

    def test_crash_mid_invocation_fails_after_reschedule_budget(self, sim, cluster):
        """With rescheduling disabled, the interrupted request fails."""

        def slow(ctx):
            yield from ctx.compute(500.0)
            return "done"

        spec = AppSpec(name="t")
        spec.add_function(FunctionSpec("f", slow))
        platform = FaasPlatform(cluster)
        platform.reschedule_on_crash = False
        app = platform.deploy(spec, DirectStorage(cluster),
                              node_ids=["node1"])
        platform.submit("t")
        sim.run(until=100.0)
        cluster.crash_node("node1")
        sim.run(until=5000.0)
        assert app.requests_rescheduled == 0
        assert app.requests_failed == 1
        assert app.requests_completed == 0

    def test_concurrent_cold_starts_share_one_container(self, sim, cluster):
        """No thundering herd: simultaneous invocations of a cold function
        start exactly one container."""
        platform = FaasPlatform(cluster)
        app = platform.deploy(trivial_app(), DirectStorage(cluster),
                              prewarm=False)
        procs = [sim.spawn(platform.request("t")) for _ in range(6)]
        sim.run(until=sim.now + 10_000.0)
        assert all(p.triggered for p in procs)
        assert app.cold_starts == 1
        total = sum(len(n.containers_of("t", "f"))
                    for n in cluster.nodes.values())
        assert total == 1
