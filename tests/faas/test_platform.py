"""Tests for the FaaS platform: deployment, invocation, scheduling, load."""

import pytest

from repro.caching import DirectStorage
from repro.cluster import Cluster
from repro.config import SimConfig
from repro.faas import AppSpec, FaasPlatform, FunctionSpec
from repro.faas.platform import COLD_START_MS, FRONTEND_OVERHEAD_MS
from repro.sim import Simulator
from repro.storage import DataItem


@pytest.fixture
def sim():
    return Simulator(seed=5)


@pytest.fixture
def cluster(sim):
    return Cluster(sim, SimConfig(num_nodes=4, cores_per_node=2))


@pytest.fixture
def platform(cluster):
    return FaasPlatform(cluster)


def simple_app(name="app1", compute_ms=10.0):
    def f0(ctx):
        yield from ctx.compute(compute_ms)
        yield from ctx.write("out", DataItem("f0-output", size_bytes=100))
        return "f0"

    def f1(ctx):
        value = yield from ctx.read("out")
        yield from ctx.compute(compute_ms)
        return ("f1", value)

    spec = AppSpec(name=name)
    spec.add_function(FunctionSpec("f0", f0))
    spec.add_function(FunctionSpec("f1", f1))
    return spec


def run(sim, gen, limit=600_000.0):
    return sim.run_until_complete(sim.spawn(gen), limit=sim.now + limit)


class TestDeployAndRequest:
    def test_deploy_prewarms_containers(self, platform, cluster):
        platform.deploy(simple_app(), DirectStorage(cluster))
        for node in cluster.nodes.values():
            assert len(node.containers_of("app1")) == 2

    def test_request_runs_workflow_in_order(self, sim, platform, cluster):
        platform.deploy(simple_app(), DirectStorage(cluster))
        result = run(sim, platform.request("app1"))
        assert result.output == ("f1", DataItem("f0-output", size_bytes=100))
        assert result.latency_ms > 2 * 10.0  # both computes ran

    def test_latency_accounts_storage_and_compute(self, sim, platform, cluster):
        platform.deploy(simple_app(compute_ms=20.0), DirectStorage(cluster))
        result = run(sim, platform.request("app1"))
        assert result.compute_ms == pytest.approx(40.0)
        # One write + one read, each a storage round trip.
        assert result.storage_ms >= 2 * cluster.config.latency.storage_rtt
        assert result.latency_ms == pytest.approx(
            result.compute_ms + result.storage_ms + FRONTEND_OVERHEAD_MS, rel=0.01)

    def test_app_histogram_records_requests(self, sim, platform, cluster):
        app = platform.deploy(simple_app(), DirectStorage(cluster))
        for _ in range(3):
            run(sim, platform.request("app1"))
        assert app.latency.count == 3
        assert app.requests_completed == 3

    def test_unknown_function_raises(self, sim, platform, cluster):
        app = platform.deploy(simple_app(), DirectStorage(cluster))
        with pytest.raises(KeyError):
            run(sim, platform.invoke(app, "ghost", {}))

    def test_storage_fraction_breakdown(self, sim, platform, cluster):
        app = platform.deploy(simple_app(compute_ms=1.0), DirectStorage(cluster))
        run(sim, platform.request("app1"))
        assert 0.9 < app.storage_fraction < 1.0


class TestColdStarts:
    def test_invocation_without_warm_container_cold_starts(self, sim, platform, cluster):
        app = platform.deploy(simple_app(), DirectStorage(cluster), prewarm=False)
        start = sim.now
        run(sim, platform.request("app1"))
        assert app.cold_starts == 2
        assert sim.now - start > 2 * COLD_START_MS

    def test_cold_started_container_is_reused(self, sim, platform, cluster):
        app = platform.deploy(simple_app(), DirectStorage(cluster), prewarm=False)
        run(sim, platform.request("app1"))
        run(sim, platform.request("app1"))
        assert app.cold_starts == 2  # only the first request cold-started


class TestCoreContention:
    def test_compute_queues_on_busy_cores(self, sim, platform, cluster):
        def heavy(ctx):
            yield from ctx.compute(100.0)
            return None

        spec = AppSpec(name="heavy")
        spec.add_function(FunctionSpec("h", heavy))
        # Single node with 2 cores: 4 concurrent requests -> 2 waves.
        platform.deploy(spec, DirectStorage(cluster), node_ids=["node0"])
        finish = []

        def one_request(sim):
            yield from platform.request("heavy")
            finish.append(sim.now)

        for _ in range(4):
            sim.spawn(one_request(sim))
        sim.run(until=sim.now + 10_000.0)
        assert len(finish) == 4
        assert max(finish) >= 200.0  # second wave waited for the first


class TestOpenLoop:
    def test_open_loop_submits_poisson_stream(self, sim, platform, cluster):
        app = platform.deploy(simple_app(compute_ms=1.0), DirectStorage(cluster))
        count = run(sim, platform.open_loop("app1", rps=100.0, duration_ms=2000.0))
        sim.run(until=sim.now + 5000.0)  # drain in-flight requests
        assert count > 100  # ~200 expected
        assert app.requests_completed == count

    def test_grace_period_collection(self, sim, platform, cluster):
        platform.deploy(simple_app(), DirectStorage(cluster))
        run(sim, platform.request("app1"))
        sim.run(until=sim.now + 1000.0)
        assert platform.collect_idle_containers(grace_ms=100.0) > 0
        # Containers on untouched nodes were idle and got collected.
        remaining = sum(
            len(node.containers_of("app1")) for node in cluster.nodes.values())
        assert remaining == 0


class TestSchedulers:
    def test_random_scheduler_spreads_load(self, sim, cluster):
        from repro.faas import RandomScheduler

        sched = RandomScheduler(sim)
        nodes = list(cluster.nodes.values())
        picks = {sched.pick("a", "f", {}, nodes).id for _ in range(50)}
        assert len(picks) > 1

    def test_locality_scheduler_is_sticky_per_function(self, cluster):
        from repro.faas import LocalityScheduler

        sched = LocalityScheduler()
        nodes = list(cluster.nodes.values())
        picks = {sched.pick("a", "f", {"entity": i}, nodes).id for i in range(20)}
        assert len(picks) == 1  # same function -> same node, inputs ignored

    def test_cas_scheduler_keys_on_entity(self, cluster):
        from repro.faas import CasScheduler

        sched = CasScheduler()
        nodes = list(cluster.nodes.values())
        same = {sched.pick("a", "f", {"entity": 7}, nodes).id for _ in range(10)}
        assert len(same) == 1
        spread = {sched.pick("a", "f", {"entity": i}, nodes).id for i in range(40)}
        assert len(spread) > 1  # different entities spread across nodes

    def test_cas_scheduler_avoids_overloaded_node(self, sim, cluster):
        from repro.faas import CasScheduler

        sched = CasScheduler()
        nodes = sorted(cluster.nodes.values(), key=lambda n: n.id)
        preferred = sched.pick("a", "f", {"entity": 7}, nodes)
        # Saturate the preferred node (queue forms -> overloaded).
        for _ in range(preferred.cores.capacity + 1):
            preferred.cores.acquire()
        alternative = sched.pick("a", "f", {"entity": 7}, nodes)
        assert alternative.id != preferred.id

    def test_cas_tries_validation(self):
        from repro.faas import CasScheduler

        with pytest.raises(ValueError):
            CasScheduler(tries=0)
