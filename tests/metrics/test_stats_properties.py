"""Property-based tests for Histogram (record/extend/percentile).

Hypothesis explores sample streams and merge shapes the unit tests
don't: the invariants are (a) percentiles depend only on the multiset of
samples, never on arrival or merge order; (b) ``percentile`` is
monotone in ``p``; (c) lazy sorting costs at most one sort per
dirty period, however many queries follow.
"""

import math

from hypothesis import given, strategies as st

from repro.metrics.stats import Histogram

# Finite floats; allow_nan/inf off because NaN breaks ordering.
values = st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    max_size=80,
)
percentiles = st.floats(min_value=0.0, max_value=100.0,
                        allow_nan=False)


def histogram_of(samples) -> Histogram:
    histogram = Histogram()
    for value in samples:
        histogram.record(value)
    return histogram


@given(values, percentiles)
def test_percentile_is_order_independent(samples, p):
    forward = histogram_of(samples)
    backward = histogram_of(list(reversed(samples)))
    if not samples:
        assert math.isnan(forward.percentile(p))
        assert math.isnan(backward.percentile(p))
    else:
        assert forward.percentile(p) == backward.percentile(p)


@given(values, values, percentiles)
def test_extend_commutes_on_percentiles(left, right, p):
    a = histogram_of(left)
    a.extend(histogram_of(right))
    b = histogram_of(right)
    b.extend(histogram_of(left))
    assert a.count == b.count == len(left) + len(right)
    if a.count:
        assert a.percentile(p) == b.percentile(p)
        assert a.mean == b.mean


@given(values, values)
def test_extend_equals_recording_concatenation(left, right):
    merged = histogram_of(left)
    merged.extend(histogram_of(right))
    flat = histogram_of(left + right)
    assert merged.count == flat.count
    if merged.count:
        for p in (0.0, 25.0, 50.0, 75.0, 99.0, 100.0):
            assert merged.percentile(p) == flat.percentile(p)
        assert merged.min == flat.min
        assert merged.max == flat.max


@given(values, st.lists(percentiles, min_size=2, max_size=8))
def test_percentile_monotone_in_p(samples, ps):
    histogram = histogram_of(samples)
    if not samples:
        return
    ps = sorted(ps)
    results = [histogram.percentile(p) for p in ps]
    assert results == sorted(results)


@given(values, st.lists(percentiles, min_size=1, max_size=10))
def test_at_most_one_sort_per_dirty_period(samples, ps):
    histogram = histogram_of(samples)
    for p in ps:
        histogram.percentile(p)
    # However many queries ran, one dirty period costs at most one sort.
    assert histogram._sorts <= 1
    # A second dirty period (an out-of-order record) costs at most one more.
    histogram.record(-1e12)
    histogram.record(1e12)
    for p in ps:
        histogram.percentile(p)
    assert histogram._sorts <= 2


@given(values)
def test_stddev_matches_variance(samples):
    histogram = histogram_of(samples)
    if not samples:
        assert math.isnan(histogram.variance)
        assert math.isnan(histogram.stddev)
    else:
        assert histogram.variance >= 0.0
        assert math.isclose(histogram.stddev,
                            math.sqrt(histogram.variance))


@given(values)
def test_trimmed_mean_drops_largest(samples):
    histogram = histogram_of(samples)
    if not samples:
        assert math.isnan(histogram.trimmed_mean())
        return
    trimmed = histogram.trimmed_mean(0.25)
    cut = int(len(samples) * 0.25)
    kept = sorted(samples)[:len(samples) - cut] if cut else sorted(samples)
    assert math.isclose(trimmed, sum(kept) / len(kept))
    assert trimmed <= histogram.mean or math.isclose(trimmed, histogram.mean)
