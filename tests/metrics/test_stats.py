"""Tests for histograms and access statistics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import AccessStats, Histogram, OpKind


class TestHistogram:
    def test_empty_histogram(self):
        h = Histogram()
        assert h.count == 0
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.trimmed_mean())

    def test_basic_stats(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.record(v)
        assert h.mean == 2.5
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.count == 4

    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(1, 101):
            h.record(float(v))
        assert h.p50 == 50.0
        assert h.p99 == 99.0
        assert h.percentile(100.0) == 100.0
        assert h.percentile(0.0) == 1.0

    def test_percentile_validation(self):
        h = Histogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(101.0)

    def test_record_after_percentile_resorts(self):
        h = Histogram()
        h.record(5.0)
        assert h.p50 == 5.0
        h.record(1.0)
        assert h.p50 == 1.0

    def test_extend_merges(self):
        a, b = Histogram(), Histogram()
        a.record(1.0)
        b.record(3.0)
        a.extend(b)
        assert a.count == 2
        assert a.mean == 2.0

    def test_trimmed_mean_drops_top(self):
        h = Histogram()
        for v in [1.0] * 9 + [1000.0]:
            h.record(v)
        assert h.trimmed_mean(0.1) == 1.0
        assert h.mean > 100.0

    def test_merge_then_percentiles_sort_once(self):
        # Regression: percentile/trimmed_mean queries after an extend()
        # merge must sort the combined samples exactly once, not per query.
        a, b = Histogram(), Histogram()
        for v in (5.0, 1.0, 3.0):
            a.record(v)
        for v in (4.0, 2.0):
            b.record(v)
        a.extend(b)
        assert a._sorts == 0
        for p in (10.0, 25.0, 50.0, 75.0, 90.0, 99.0):
            a.percentile(p)
        a.trimmed_mean(0.2)
        assert a._sorts == 1
        assert a.p50 == 3.0
        assert a.min == 1.0 and a.max == 5.0

    def test_monotone_stream_never_sorts(self):
        h = Histogram()
        for v in range(100):
            h.record(float(v))
        assert h.percentile(50.0) == 49.0
        assert h.trimmed_mean(0.1) == pytest.approx(sum(range(90)) / 90)
        assert h._sorts == 0

    def test_extend_into_empty_adopts_sortedness(self):
        src, dst = Histogram(), Histogram()
        for v in (3.0, 1.0, 2.0):
            src.record(v)
        dst.extend(src)
        assert dst.p50 == 2.0
        assert dst._sorts == 1
        # The copy sorted its own samples; the source is untouched.
        assert src._samples == [3.0, 1.0, 2.0]
        assert src.p50 == 2.0

    def test_extend_of_ordered_histograms_stays_sorted(self):
        a, b = Histogram(), Histogram()
        for v in (1.0, 2.0):
            a.record(v)
        for v in (3.0, 4.0):
            b.record(v)
        a.extend(b)
        assert a.p99 == 4.0
        assert a._sorts == 0

    def test_record_between_queries_stays_correct(self):
        h = Histogram()
        h.record(2.0)
        h.record(1.0)
        assert h.p50 == 1.0
        h.record(0.5)  # out-of-order after a sort: must dirty the cache
        assert h.p50 == 1.0
        assert h.min == 0.5
        assert h._sorts == 2

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=100))
    def test_percentile_bounds_property(self, values):
        h = Histogram()
        for v in values:
            h.record(v)
        assert h.min <= h.p50 <= h.max
        # Float summation tolerance: mean of identical values can differ
        # from them in the last ulp.
        tolerance = 1e-9 * max(1.0, h.max)
        assert h.min - tolerance <= h.mean <= h.max + tolerance


class TestAccessStats:
    def test_record_and_count(self):
        stats = AccessStats()
        stats.record(OpKind.LOCAL_READ_HIT, 1.6)
        stats.record(OpKind.LOCAL_READ_HIT, 1.7)
        stats.record(OpKind.WRITE_MISS, 30.0)
        assert stats.count(OpKind.LOCAL_READ_HIT) == 2
        assert stats.reads == 2
        assert stats.writes == 1

    def test_read_mix_sums_to_one(self):
        stats = AccessStats()
        stats.record(OpKind.LOCAL_READ_HIT, 1.0)
        stats.record(OpKind.REMOTE_READ_HIT, 3.0)
        stats.record(OpKind.READ_MISS, 30.0)
        stats.record(OpKind.READ_MISS, 30.0)
        mix = stats.read_mix()
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix["remote_miss"] == 0.5

    def test_read_mix_empty(self):
        assert AccessStats().read_mix() == {
            "local_hit": 0.0, "remote_hit": 0.0, "remote_miss": 0.0,
        }

    def test_merge(self):
        a, b = AccessStats(), AccessStats()
        a.record(OpKind.LOCAL_READ_HIT, 1.0)
        b.record(OpKind.LOCAL_READ_HIT, 2.0)
        b.version_checks = 5
        b.invalidations_per_write.record(3)
        a.merge(b)
        assert a.count(OpKind.LOCAL_READ_HIT) == 2
        assert a.version_checks == 5
        assert a.invalidations_per_write.count == 1

    def test_reset(self):
        stats = AccessStats()
        stats.record(OpKind.READ_MISS, 30.0)
        stats.version_checks = 3
        stats.invalidations_per_write.record(2)
        stats.reset()
        assert stats.reads == 0
        assert stats.version_checks == 0
        assert stats.invalidations_per_write.count == 0

    def test_opkind_is_read(self):
        assert OpKind.LOCAL_READ_HIT.is_read
        assert OpKind.READ_MISS.is_read
        assert not OpKind.WRITE_MISS.is_read
        assert not OpKind.LOCAL_WRITE_HIT.is_read


class TestRenderTable:
    def test_render_basic(self):
        from repro.experiments.tables import render_table

        text = render_table(
            "T", ["a", "b"], [{"a": 1, "b": 2.5}, {"a": "x", "b": ""}],
            note="n")
        assert "T" in text
        assert "2.50" in text
        assert text.endswith("n")

    def test_experiment_result_roundtrip(self):
        from repro.experiments.tables import ExperimentResult

        result = ExperimentResult(
            experiment="Fig X", title="t", columns=["c"],
            data=[{"c": 1}])
        assert result.rows() == [{"c": 1}]
        assert "Fig X" in result.render()
