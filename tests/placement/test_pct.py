"""Tests for the Producer-Consumer Table and communication-aware placement."""

import pytest

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.core import ConcordSystem
from repro.faas import FaasPlatform
from repro.placement import CommAwarePlacement, ProducerConsumerTable
from repro.sim import Simulator
from repro.storage import DataItem
from repro.workloads.pc_apps import PC_PROFILES, build_pc_app


@pytest.fixture
def sim():
    return Simulator(seed=31)


@pytest.fixture
def cluster(sim):
    return Cluster(sim, SimConfig(num_nodes=4))


def run(sim, gen, limit=600_000.0):
    return sim.run_until_complete(sim.spawn(gen), limit=sim.now + limit)


class TestPct:
    def test_edges_accumulate(self):
        pct = ProducerConsumerTable(min_observations=2)
        pct.observe("producer", "consumer")
        assert pct.count("producer", "consumer") == 1
        assert pct.paired_functions("consumer") == set()
        pct.observe("producer", "consumer")
        assert pct.paired_functions("consumer") == {"producer"}
        assert pct.paired_functions("producer") == {"consumer"}

    def test_pairing_is_thresholded(self):
        pct = ProducerConsumerTable(min_observations=5)
        for _ in range(4):
            pct.observe("a", "b")
        assert pct.paired_functions("a") == set()

    def test_concord_reports_edges_to_pct(self, sim, cluster):
        """Coherence traffic (write at one node, read at another) teaches
        the PCT the producer-consumer pair, transparently."""
        coord = CoordinationService(cluster.network, cluster.config)
        concord = ConcordSystem(cluster, app="pc", coord=coord)
        pct = ProducerConsumerTable(min_observations=1).attach(concord)

        from repro.caching.base import AccessContext

        def producer(sim):
            ctx = AccessContext(function="stage0")
            yield from concord.write("node0", "h0", DataItem("x", 100), ctx)

        def consumer(sim):
            ctx = AccessContext(function="stage1")
            yield from concord.read("node1", "h0", ctx)

        run(sim, producer(sim))
        run(sim, consumer(sim))
        assert pct.count("stage0", "stage1") == 1
        assert "stage0" in pct.paired_functions("stage1")


class TestCommAwarePlacement:
    def test_new_instance_lands_next_to_paired_function(self, sim, cluster):
        coord = CoordinationService(cluster.network, cluster.config)
        profile = PC_PROFILES["IoTSensor"]
        concord = ConcordSystem(cluster, app=profile.name, coord=coord)
        pct = ProducerConsumerTable(min_observations=1).attach(concord)
        for _ in range(3):
            pct.observe(f"{profile.name}-s0", f"{profile.name}-s1")

        platform = FaasPlatform(cluster, placement=CommAwarePlacement(pct))
        app = platform.deploy(build_pc_app(profile), concord, prewarm=False)
        # Pre-place only the producer, on node2.
        cluster.node("node2").add_container(profile.name, f"{profile.name}-s0")

        run(sim, platform.invoke(app, f"{profile.name}-s1", {"request": 0}))
        # The consumer cold-started on the producer's node.
        assert cluster.node("node2").containers_of(
            profile.name, f"{profile.name}-s1")

    def test_placement_without_pairs_falls_back(self, sim, cluster):
        pct = ProducerConsumerTable()
        platform = FaasPlatform(cluster, placement=CommAwarePlacement(pct))
        profile = PC_PROFILES["EventStreaming"]
        from repro.caching import DirectStorage

        app = platform.deploy(
            build_pc_app(profile), DirectStorage(cluster), prewarm=False)
        result = run(sim, platform.request(profile.name, {"request": 1}))
        assert result.latency_ms > 0
        assert app.cold_starts == profile.stages

    def test_colocated_pipeline_is_faster(self, sim, cluster):
        """End-to-end Figure-16 effect: with the PCT taught, the pipeline's
        hand-offs become local and latency drops."""
        coord = CoordinationService(cluster.network, cluster.config)
        profile = PC_PROFILES["MLSentiment"]

        def measure(placement_policy, app_name, request_base):
            concord = ConcordSystem(
                cluster, app=app_name, coord=coord)
            pct = ProducerConsumerTable(min_observations=1).attach(concord)
            if placement_policy == "cafp":
                for stage in range(profile.stages - 1):
                    for _ in range(3):
                        pct.observe(f"{app_name}-s{stage}", f"{app_name}-s{stage + 1}")
                platform = FaasPlatform(cluster, placement=CommAwarePlacement(pct))
            else:
                platform = FaasPlatform(cluster)
            spec = build_pc_app(profile)
            spec.name = app_name
            for fn in spec.functions.values():
                fn.name = fn.name.replace(profile.name, app_name)
            spec.functions = {f.name: f for f in spec.functions.values()}
            spec.workflow = [n.replace(profile.name, app_name) for n in spec.workflow]
            platform.deploy(spec, concord, prewarm=False)
            total = 0.0
            for index in range(6):
                outcome = run(sim, platform.request(
                    app_name, {"request": request_base + index}))
                total += outcome.latency_ms
            return total / 6

        slow = measure("default", "MLSentiment", 0)
        fast = measure("cafp", "MLSentiment2", 100)
        assert fast < slow
