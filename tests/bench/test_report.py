"""Report schema and the wall-vs-simulated-counter regression gate."""

import copy

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    build_report,
    compare_reports,
    load_report,
    render_comparison,
    write_report,
)
from repro.bench.job import JobResult
from repro.bench.report import render_history


def make_report(**benchmarks) -> dict:
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_at": "2026-01-01T00:00:00Z",
        "benchmarks": benchmarks,
    }


BASELINE = make_report(
    fig08={"simulated_ms": 5000.0, "requests_completed": 471,
           "wall_time_s": 2.0, "sim_ms_per_wall_s": 2500.0},
    fig13={"simulated_ms": 8000.0, "simulated_rps": 93.5,
           "wall_time_s": 3.0},
)


def kinds(comparison):
    return [(f.benchmark, f.kind, f.severity) for f in comparison.findings]


class TestBuildReport:
    def test_entries_and_derived_rate(self):
        ok = JobResult(name="fig08", fingerprint="a" * 64, status="ok",
                       value={"simulated_ms": 5000.0,
                              "requests_completed": 471},
                       wall_time_s=2.0, attempts=1)
        report = build_report([ok], seed=1009)
        entry = report["benchmarks"]["fig08"]
        assert entry["requests_completed"] == 471
        assert entry["wall_time_s"] == 2.0
        assert entry["sim_ms_per_wall_s"] == 2500.0
        assert report["seed"] == 1009
        assert report["schema_version"] == BENCH_SCHEMA_VERSION

    def test_failures_are_recorded_not_dropped(self):
        bad = JobResult(name="fig13", fingerprint="b" * 64, status="timeout",
                        error="timed out after 1.000s", attempts=2)
        report = build_report([bad])
        assert "fig13" not in report["benchmarks"]
        assert report["failures"]["fig13"]["status"] == "timeout"

    def test_non_dict_value_is_wrapped(self):
        ok = JobResult(name="n", fingerprint="c" * 64, status="ok",
                       value=42, wall_time_s=0.1, attempts=1)
        report = build_report([ok])
        assert report["benchmarks"]["n"]["value"] == 42


class TestReportIO:
    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_report(BASELINE, path)
        assert load_report(path) == BASELINE

    def test_legacy_schemaless_report_upgrades_to_v1(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        legacy = {"benchmarks": {"fig08": {"wall_time_s": 1.0}}}
        write_report(legacy, path)
        assert load_report(path)["schema_version"] == 1

    def test_future_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_future.json"
        write_report({"schema_version": BENCH_SCHEMA_VERSION + 1,
                      "benchmarks": {}}, path)
        with pytest.raises(ValueError):
            load_report(path)

    def test_non_report_rejected(self, tmp_path):
        path = tmp_path / "notabench.json"
        write_report({"something": "else"}, path)
        with pytest.raises(ValueError):
            load_report(path)


class TestGate:
    def test_identical_reports_are_clean(self):
        comparison = compare_reports(copy.deepcopy(BASELINE), BASELINE)
        assert comparison.findings == []
        assert comparison.exit_code() == 0
        assert comparison.exit_code(strict_wall=True) == 0

    def test_planted_wall_regression_warns_then_fails_strict(self):
        current = copy.deepcopy(BASELINE)
        current["benchmarks"]["fig08"]["wall_time_s"] = 3.0  # +50%
        comparison = compare_reports(current, BASELINE)
        assert kinds(comparison) == [("fig08", "wall-regression", "warning")]
        assert comparison.exit_code() == 0, "shared runners: warn only"
        assert comparison.exit_code(strict_wall=True) == 1

    def test_wall_regression_within_threshold_is_silent(self):
        current = copy.deepcopy(BASELINE)
        current["benchmarks"]["fig08"]["wall_time_s"] = 2.4  # +20% < 25%
        assert compare_reports(current, BASELINE).findings == []

    def test_wall_threshold_is_tunable(self):
        current = copy.deepcopy(BASELINE)
        current["benchmarks"]["fig08"]["wall_time_s"] = 2.4
        comparison = compare_reports(current, BASELINE, wall_threshold=0.1)
        assert kinds(comparison) == [("fig08", "wall-regression", "warning")]

    def test_planted_counter_drift_always_fails(self):
        current = copy.deepcopy(BASELINE)
        current["benchmarks"]["fig08"]["requests_completed"] = 470
        comparison = compare_reports(current, BASELINE)
        assert kinds(comparison) == [("fig08", "counter-drift", "error")]
        assert comparison.exit_code() == 1, \
            "counter drift is a behavior change: hard fail even unstrict"

    def test_sim_rate_is_wall_derived_not_a_counter(self):
        # sim_ms_per_wall_s moves whenever the wall clock does; it must
        # never trip the exact-equality counter gate.
        current = copy.deepcopy(BASELINE)
        current["benchmarks"]["fig08"]["sim_ms_per_wall_s"] = 2100.0
        assert compare_reports(current, BASELINE).findings == []

    def test_missing_and_new_counters_are_drift(self):
        current = copy.deepcopy(BASELINE)
        del current["benchmarks"]["fig08"]["requests_completed"]
        current["benchmarks"]["fig08"]["surprise"] = 1
        comparison = compare_reports(current, BASELINE)
        assert {(f.kind, f.severity) for f in comparison.findings} \
            == {("counter-drift", "error")}
        assert len(comparison.findings) == 2

    def test_missing_benchmark_is_an_error(self):
        current = copy.deepcopy(BASELINE)
        del current["benchmarks"]["fig13"]
        comparison = compare_reports(current, BASELINE)
        assert kinds(comparison) == [("fig13", "missing-benchmark", "error")]
        assert comparison.exit_code() == 1

    def test_failed_job_is_an_error_not_a_missing_benchmark(self):
        current = copy.deepcopy(BASELINE)
        del current["benchmarks"]["fig13"]
        current["failures"] = {"fig13": {"status": "error",
                                         "error": "RuntimeError: x",
                                         "attempts": 1}}
        comparison = compare_reports(current, BASELINE)
        assert kinds(comparison) == [("fig13", "job-failed", "error")]

    def test_new_benchmark_is_informational(self):
        current = copy.deepcopy(BASELINE)
        current["benchmarks"]["fig20"] = {"wall_time_s": 1.0}
        comparison = compare_reports(current, BASELINE)
        assert kinds(comparison) == [("fig20", "new-benchmark", "info")]
        assert comparison.exit_code(strict_wall=True) == 0

    def test_wall_improvement_is_informational(self):
        current = copy.deepcopy(BASELINE)
        current["benchmarks"]["fig08"]["wall_time_s"] = 1.0  # -50%
        comparison = compare_reports(current, BASELINE)
        assert kinds(comparison) == [("fig08", "wall-improvement", "info")]
        assert comparison.exit_code(strict_wall=True) == 0


class TestRendering:
    def test_clean_comparison_renders_verdict(self):
        text = render_comparison(compare_reports(
            copy.deepcopy(BASELINE), BASELINE))
        assert "clean" in text
        assert "0 error(s), 0 warning(s)" in text

    def test_findings_render_with_severity(self):
        current = copy.deepcopy(BASELINE)
        current["benchmarks"]["fig08"]["requests_completed"] = 1
        text = render_comparison(compare_reports(current, BASELINE))
        assert "[ERROR" in text and "counter-drift" in text
        assert "1 error(s)" in text

    def test_history_orders_by_stamp_and_shows_delta(self):
        older = make_report(fig08={"wall_time_s": 2.0})
        older["generated_at"] = "2026-01-01T00:00:00Z"
        newer = make_report(fig08={"wall_time_s": 3.0})
        newer["generated_at"] = "2026-01-02T00:00:00Z"
        # Passed newest-first: render_history must re-sort by stamp.
        text = render_history([("new.json", newer), ("old.json", older)])
        assert text.index("old.json") < text.index("new.json")
        assert "+50.0%" in text
