"""Checkpoint/resume: skip-completed, retry-failed, damage tolerance."""

import json

from repro.bench import JobSpec, Journal, run_jobs
from repro.bench.job import JobResult
from repro.bench.journal import JOURNAL_SCHEMA


def invocation_spec(scratch, name="rec", token="ran"):
    return JobSpec(name=name, target="repro.bench._testing:record_invocation",
                   args={"scratch": str(scratch), "token": token})


def invocations(scratch) -> int:
    if not scratch.exists():
        return 0
    return len(scratch.read_text().splitlines())


class TestResume:
    def test_resume_skips_completed_jobs(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        scratch = tmp_path / "calls.txt"
        spec = invocation_spec(scratch)

        (first,) = run_jobs([spec], journal=journal)
        assert first.ok and not first.cached
        assert invocations(scratch) == 1

        (second,) = run_jobs([spec], journal=journal)
        assert second.ok and second.cached
        assert second.value == first.value
        assert invocations(scratch) == 1, "resumed job must not re-run"

    def test_parallel_resume_also_skips(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        scratch = tmp_path / "calls.txt"
        spec = invocation_spec(scratch)
        run_jobs([spec], jobs=2, journal=journal)
        (resumed,) = run_jobs([spec], jobs=2, journal=journal)
        assert resumed.cached
        assert invocations(scratch) == 1

    def test_failed_jobs_are_retried_on_resume(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        scratch = tmp_path / "flaky.txt"
        spec = JobSpec(name="fl", target="repro.bench._testing:flaky",
                       args={"scratch": str(scratch), "fail_times": 1})

        (first,) = run_jobs([spec], journal=journal)
        assert first.status == "error"

        (second,) = run_jobs([spec], journal=journal)
        assert second.ok and not second.cached
        assert second.value == {"calls": 2}

    def test_journal_records_failures_and_later_success(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        scratch = tmp_path / "flaky.txt"
        spec = JobSpec(name="fl", target="repro.bench._testing:flaky",
                       args={"scratch": str(scratch), "fail_times": 1})
        run_jobs([spec], journal=journal_path)
        run_jobs([spec], journal=journal_path)

        lines = journal_path.read_text().splitlines()
        assert len(lines) == 2
        loaded = Journal(journal_path).load()
        # Later records win: the fingerprint now maps to the success.
        assert loaded[spec.fingerprint].ok

    def test_changed_args_change_fingerprint_and_rerun(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        scratch = tmp_path / "calls.txt"
        run_jobs([invocation_spec(scratch, token="a")], journal=journal)
        (other,) = run_jobs([invocation_spec(scratch, token="b")],
                            journal=journal)
        assert not other.cached
        assert invocations(scratch) == 2


class TestDamageTolerance:
    def test_truncated_tail_is_skipped(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        scratch = tmp_path / "calls.txt"
        spec = invocation_spec(scratch)
        run_jobs([spec], journal=journal_path)

        with journal_path.open("a") as handle:
            handle.write('{"schema": "' + JOURNAL_SCHEMA + '", "nam')

        (resumed,) = run_jobs([spec], journal=journal_path)
        assert resumed.cached, "intact records must survive a torn tail"

    def test_foreign_and_malformed_lines_are_skipped(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        journal_path.write_text(
            "not json at all\n"
            '{"schema": "someone.elses/9", "name": "x"}\n'
            '["a", "list"]\n'
            "\n")
        assert Journal(journal_path).load() == {}

    def test_records_missing_required_fields_are_skipped(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        journal_path.write_text(json.dumps(
            {"schema": JOURNAL_SCHEMA, "name": "x"}) + "\n")
        assert Journal(journal_path).load() == {}

    def test_missing_file_is_empty(self, tmp_path):
        assert Journal(tmp_path / "absent.jsonl").load() == {}
        assert Journal(tmp_path / "absent.jsonl").completed() == {}


class TestJournalRoundTrip:
    def test_append_then_load(self, tmp_path):
        journal = Journal(tmp_path / "deep" / "sweep.jsonl")
        ok = JobResult(name="a", fingerprint="a" * 64, status="ok",
                       value={"n": 1}, wall_time_s=0.5, attempts=1)
        bad = JobResult(name="b", fingerprint="b" * 64, status="error",
                        error="RuntimeError: nope", attempts=2)
        journal.append(ok)
        journal.append(bad)
        loaded = journal.load()
        assert loaded[ok.fingerprint] == ok
        assert loaded[bad.fingerprint] == bad
        assert set(journal.completed()) == {ok.fingerprint}
