"""Cross-PYTHONHASHSEED byte-identity for the scale grid point.

The ≥100-node / ≥1M-request ``scale_point`` must report byte-identical
simulated counters regardless of interpreter hash randomization (the
DET01/DET03 contract).  Hash randomization is fixed per interpreter, so
the check runs a reduced-scale variant in subprocesses with explicitly
different ``PYTHONHASHSEED`` values and compares canonical JSON output.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

SCRIPT = """
import sys
from repro.bench.job import canonical_json
from repro.bench.suite import scale_point

counters = scale_point(seed=1009, num_nodes=12, requests_per_node=60,
                       working_set=40)
sys.stdout.write(canonical_json(counters))
"""


def run_with_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_scale_point_counters_independent_of_hash_randomization():
    first = run_with_hashseed("0")
    second = run_with_hashseed("1")
    assert first, "scale point produced no output"
    assert first == second
    assert '"requests_completed":720' in first
