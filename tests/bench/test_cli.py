"""The repro-bench CLI: run/compare/history plumbing and exit codes.

``run`` tests use the fast ``repro.bench._testing:tiny_suite`` factory
instead of the real tier-1 suite so the CLI path stays cheap to test.
"""

import copy
import json

import pytest

from repro.bench import BENCH_SCHEMA_VERSION, load_report, write_report
from repro.bench.cli import main

TINY = "repro.bench._testing:tiny_suite"


def write_baseline(path, report):
    write_report(report, path)
    return str(path)


@pytest.fixture
def fresh_report(tmp_path):
    out = tmp_path / "BENCH_current.json"
    assert main(["run", "--suite", TINY, "--out", str(out)]) == 0
    return load_report(out)


class TestRun:
    def test_run_writes_versioned_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_tiny.json"
        assert main(["run", "--suite", TINY, "--out", str(out)]) == 0
        report = load_report(out)
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        assert set(report["benchmarks"]) == {"probe-a", "probe-b", "echo"}
        stdout = capsys.readouterr().out
        assert "probe-a: ok" in stdout
        assert f"wrote {out}" in stdout

    def test_run_parallel_matches_serial_counters(self, tmp_path):
        serial_out = tmp_path / "serial.json"
        parallel_out = tmp_path / "parallel.json"
        assert main(["run", "--suite", TINY, "--out", str(serial_out)]) == 0
        assert main(["run", "--suite", TINY, "--jobs", "2",
                     "--out", str(parallel_out)]) == 0

        def counters(report):
            return {name: {k: v for k, v in entry.items()
                           if k not in ("wall_time_s", "sim_ms_per_wall_s")}
                    for name, entry in report["benchmarks"].items()}

        assert (counters(load_report(serial_out))
                == counters(load_report(parallel_out)))

    def test_run_with_clean_compare_passes(self, tmp_path, fresh_report):
        baseline = write_baseline(tmp_path / "BENCH_baseline.json",
                                  fresh_report)
        out = tmp_path / "BENCH_again.json"
        assert main(["run", "--suite", TINY, "--out", str(out),
                     "--compare", baseline]) == 0

    def test_run_against_drifted_baseline_fails(self, tmp_path, capsys,
                                                fresh_report):
        drifted = copy.deepcopy(fresh_report)
        drifted["benchmarks"]["probe-a"]["checksum"] += 1
        baseline = write_baseline(tmp_path / "BENCH_baseline.json", drifted)
        out = tmp_path / "BENCH_again.json"
        assert main(["run", "--suite", TINY, "--out", str(out),
                     "--compare", baseline]) == 1
        assert "counter-drift" in capsys.readouterr().out

    def test_run_journal_resume(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        out = tmp_path / "BENCH_tiny.json"
        args = ["run", "--suite", TINY, "--out", str(out),
                "--journal", str(journal)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert capsys.readouterr().out.count("(journal)") == 3

    def test_unknown_suite_is_usage_error(self, tmp_path, capsys):
        assert main(["run", "--suite", "nope",
                     "--out", str(tmp_path / "x.json")]) == 2
        assert "nope" in capsys.readouterr().err


class TestCompare:
    def test_clean_compare_exits_zero(self, tmp_path, fresh_report):
        current = write_baseline(tmp_path / "a.json", fresh_report)
        baseline = write_baseline(tmp_path / "b.json",
                                  copy.deepcopy(fresh_report))
        assert main(["compare", current, baseline]) == 0

    def test_counter_drift_exits_one(self, tmp_path, capsys, fresh_report):
        drifted = copy.deepcopy(fresh_report)
        drifted["benchmarks"]["echo"]["alpha"] = 999
        current = write_baseline(tmp_path / "a.json", drifted)
        baseline = write_baseline(tmp_path / "b.json", fresh_report)
        assert main(["compare", current, baseline]) == 1
        assert "counter-drift" in capsys.readouterr().out

    def test_wall_regression_warns_unless_strict(self, tmp_path, capsys,
                                                 fresh_report):
        # Tiny-suite jobs round to 0.0s wall; plant real values so the
        # wall gate (which skips non-positive baselines) engages.
        base = copy.deepcopy(fresh_report)
        for entry in base["benchmarks"].values():
            entry["wall_time_s"] = 1.0
        slowed = copy.deepcopy(base)
        for entry in slowed["benchmarks"].values():
            entry["wall_time_s"] = 2.0
        current = write_baseline(tmp_path / "a.json", slowed)
        baseline = write_baseline(tmp_path / "b.json", base)
        assert main(["compare", current, baseline]) == 0
        assert "wall-regression" in capsys.readouterr().out
        assert main(["compare", current, baseline, "--strict-wall"]) == 1

    def test_json_format_is_machine_readable(self, tmp_path, capsys,
                                             fresh_report):
        current = write_baseline(tmp_path / "a.json", fresh_report)
        baseline = write_baseline(tmp_path / "b.json", fresh_report)
        capsys.readouterr()  # drain the fixture's run output
        assert main(["compare", current, baseline, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["compare", str(tmp_path / "no.json"),
                     str(tmp_path / "nope.json")]) == 2
        assert "repro-bench:" in capsys.readouterr().err


class TestHistory:
    def test_history_renders_all_reports(self, tmp_path, capsys,
                                         fresh_report):
        a = write_baseline(tmp_path / "a.json", fresh_report)
        b = write_baseline(tmp_path / "b.json",
                           copy.deepcopy(fresh_report))
        assert main(["history", a, b]) == 0
        out = capsys.readouterr().out
        assert "probe-a:" in out
        assert "a.json" in out and "b.json" in out
