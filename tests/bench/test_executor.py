"""Executor: ordering, parity, isolation, timeout/retry/crash paths.

Worker-pool tests use the ``spawn`` start method for real, so they are a
little slower than the average unit test but cover exactly the paths CI
relies on: a sweep must survive raising jobs, hanging jobs and workers
that die outright.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import JobSpec, canonical_json, run_jobs
from repro.bench._testing import tiny_suite

REPO_ROOT = Path(__file__).resolve().parents[2]


def spec_for(name, target, **kwargs):
    return JobSpec(name=name, target=f"repro.bench._testing:{target}",
                   **kwargs)


class TestOrderingAndParity:
    def test_results_in_spec_order(self):
        specs = tiny_suite()
        results = run_jobs(specs, jobs=2)
        assert [r.name for r in results] == [s.name for s in specs]
        assert all(r.ok for r in results)

    def test_worker_vs_in_process_byte_identical(self):
        specs = tiny_suite()
        serial = run_jobs(specs, jobs=1)
        parallel = run_jobs(specs, jobs=3)
        assert (canonical_json([r.value for r in serial])
                == canonical_json([r.value for r in parallel]))

    def test_duplicate_fingerprints_rejected(self):
        spec = spec_for("a", "echo", args={"x": 1})
        twin = spec_for("b", "echo", args={"x": 1})
        with pytest.raises(ValueError):
            run_jobs([spec, twin])

    def test_same_spec_object_twice_is_fine(self):
        spec = spec_for("a", "echo", args={"x": 1})
        results = run_jobs([spec, spec])
        assert len(results) == 2


class TestFailureIsolation:
    def test_raising_job_does_not_kill_sweep(self):
        specs = [spec_for("bad", "boom", args={"message": "nope"})]
        specs += tiny_suite()
        results = run_jobs(specs, jobs=2)
        assert results[0].status == "error"
        assert "RuntimeError: nope" in results[0].error
        assert all(r.ok for r in results[1:])

    def test_serial_path_isolates_failures_too(self):
        specs = [spec_for("bad", "boom")] + tiny_suite()
        results = run_jobs(specs, jobs=1)
        assert results[0].status == "error"
        assert all(r.ok for r in results[1:])

    def test_worker_crash_does_not_kill_sweep(self):
        specs = [spec_for("crash", "hard_crash")] + tiny_suite()
        results = run_jobs(specs, jobs=2)
        assert results[0].status == "error"
        assert "worker process died" in results[0].error
        assert all(r.ok for r in results[1:])


class TestRetries:
    def test_flaky_job_succeeds_within_budget(self, tmp_path):
        scratch = tmp_path / "flaky.txt"
        spec = spec_for("fl", "flaky",
                        args={"scratch": str(scratch), "fail_times": 2},
                        retries=2)
        (result,) = run_jobs([spec], jobs=2)
        assert result.ok
        assert result.attempts == 3
        assert result.value == {"calls": 3}

    def test_budget_exhaustion_reports_attempts(self, tmp_path):
        scratch = tmp_path / "flaky.txt"
        spec = spec_for("fl", "flaky",
                        args={"scratch": str(scratch), "fail_times": 5},
                        retries=1)
        (result,) = run_jobs([spec], jobs=2)
        assert result.status == "error"
        assert result.attempts == 2

    def test_serial_retries(self, tmp_path):
        scratch = tmp_path / "flaky.txt"
        spec = spec_for("fl", "flaky",
                        args={"scratch": str(scratch), "fail_times": 1},
                        retries=1)
        (result,) = run_jobs([spec], jobs=1)
        assert result.ok and result.attempts == 2


class TestTimeouts:
    def test_hanging_job_times_out_and_sweep_continues(self):
        specs = [spec_for("slow", "sleepy", args={"seconds": 30.0},
                          timeout_s=0.5)]
        specs += tiny_suite()
        results = run_jobs(specs, jobs=2)
        assert results[0].status == "timeout"
        assert "timed out after 0.500s" in results[0].error
        assert all(r.ok for r in results[1:])

    def test_fast_job_beats_its_timeout(self):
        spec = spec_for("quick", "sleepy", args={"seconds": 0.01},
                        timeout_s=30.0)
        (result,) = run_jobs([spec], jobs=2)
        assert result.ok


class TestHashSeedIndependence:
    """Same sweep, different PYTHONHASHSEED -> byte-identical values.

    Crosses a real process boundary (hash randomization is fixed per
    interpreter): the sweep runs in a subprocess per hash seed, with
    workers spawned from it, and the canonical JSON of all results must
    match bit-for-bit.
    """

    SCRIPT = (
        "import sys\n"
        "from repro.bench import run_jobs, canonical_json\n"
        "from repro.bench._testing import tiny_suite\n"
        "results = run_jobs(tiny_suite(), jobs=2)\n"
        "sys.stdout.write(canonical_json("
        "[[r.name, r.status, r.value] for r in results]))\n"
    )

    def run_with_hashseed(self, tmp_path, hashseed: str) -> str:
        script = tmp_path / f"sweep_{hashseed}.py"
        script.write_text(self.SCRIPT)
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_sweep_independent_of_hash_randomization(self, tmp_path):
        first = self.run_with_hashseed(tmp_path, "0")
        second = self.run_with_hashseed(tmp_path, "1")
        assert first, "sweep produced no output"
        assert first == second


class TestSimulatorJobs:
    def test_mini_session_parity(self):
        # A real simulator run through the worker boundary returns the
        # exact counters of the in-process run.
        spec = spec_for("mini", "mini_session", args={"ops": 4}, seed=11)
        (serial,) = run_jobs([spec], jobs=1)
        (parallel,) = run_jobs([spec], jobs=2)
        assert serial.ok and parallel.ok
        assert canonical_json(serial.value) == canonical_json(parallel.value)
        assert serial.value["reads"] >= 4
