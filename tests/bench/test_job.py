"""JobSpec: canonical fingerprints, validation, (de)serialization."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import BenchJobError, JobResult, JobSpec, canonical_json
from repro.bench.job import resolve_target

# JSON values as Python produces them after a decode round trip: string
# keys, lists (not tuples), finite floats.
json_values = st.recursive(
    st.none() | st.booleans() | st.integers(min_value=-2**53, max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: (st.lists(children, max_size=4)
                      | st.dictionaries(st.text(max_size=10), children,
                                        max_size=4)),
    max_leaves=12,
)
json_args = st.dictionaries(
    st.text(max_size=10).filter(lambda k: k != "seed"),
    json_values, max_size=5)


class TestFingerprint:
    @given(args=json_args, seed=st.none() | st.integers(0, 2**31))
    @settings(max_examples=150, deadline=None)
    def test_round_trip_preserves_fingerprint(self, args, seed):
        spec = JobSpec(name="j", target="repro.bench._testing:echo",
                       args=args, seed=seed)
        clone = JobSpec.from_dict(
            json.loads(canonical_json(spec.to_dict())))
        assert clone.fingerprint == spec.fingerprint
        assert clone == spec

    @given(args=json_args)
    @settings(max_examples=50, deadline=None)
    def test_key_order_is_canonicalized(self, args):
        reordered = dict(reversed(list(args.items())))
        a = JobSpec(name="a", target="repro.bench._testing:echo", args=args)
        b = JobSpec(name="b", target="repro.bench._testing:echo",
                    args=reordered)
        # The name is a label, not identity: same work, same fingerprint.
        assert a.fingerprint == b.fingerprint

    def test_seed_is_identity(self):
        a = JobSpec(name="j", target="repro.bench._testing:echo", seed=1)
        b = JobSpec(name="j", target="repro.bench._testing:echo", seed=2)
        assert a.fingerprint != b.fingerprint

    def test_policy_is_not_identity(self):
        a = JobSpec(name="j", target="repro.bench._testing:echo",
                    timeout_s=5.0, retries=3)
        b = JobSpec(name="j", target="repro.bench._testing:echo")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_is_stable_literal(self):
        # Pin one fingerprint so accidental canonicalization changes
        # (which would orphan every existing journal) show up loudly.
        spec = JobSpec(name="j", target="repro.bench._testing:echo",
                       args={"b": 2, "a": [1, "x"]}, seed=7)
        payload = canonical_json(
            {"target": spec.target, "args": spec.args, "seed": 7})
        assert payload == ('{"args":{"a":[1,"x"],"b":2},"seed":7,'
                           '"target":"repro.bench._testing:echo"}')
        import hashlib
        assert spec.fingerprint == hashlib.sha256(
            payload.encode()).hexdigest()


class TestValidation:
    def test_rejects_bad_target_shapes(self):
        for target in ("no_colon", "a:b:c", "a b:c", "mod:", ":fn", 123):
            with pytest.raises(BenchJobError):
                JobSpec(name="j", target=target)

    def test_rejects_non_canonical_args(self):
        for args in ({"k": {1, 2}}, {"k": (1, 2)}, {1: "v"},
                     {"k": float("nan")}, {"k": b"raw"}, "not-a-dict"):
            with pytest.raises(BenchJobError):
                JobSpec(name="j", target="m:fn", args=args)

    def test_rejects_seed_in_args(self):
        with pytest.raises(BenchJobError):
            JobSpec(name="j", target="m:fn", args={"seed": 3})

    def test_rejects_empty_name_and_bad_seed(self):
        with pytest.raises(BenchJobError):
            JobSpec(name="", target="m:fn")
        with pytest.raises(BenchJobError):
            JobSpec(name="j", target="m:fn", seed="seven")

    def test_args_are_defensively_copied(self):
        args = {"k": [1, 2]}
        spec = JobSpec(name="j", target="m:fn", args=args)
        args["k"].append(3)
        assert spec.args == {"k": [1, 2]}

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(BenchJobError):
            JobSpec.from_dict({"name": "j", "target": "m:fn", "extra": 1})


class TestResolveAndRun:
    def test_resolves_module_level_callable(self):
        fn = resolve_target("repro.bench._testing:echo")
        assert fn(n=1) == {"echo": {"n": 1}}

    def test_resolves_attribute_path(self):
        fn = resolve_target("repro.bench.job:JobSpec.from_dict")
        assert callable(fn)

    def test_rejects_missing_module_and_attr(self):
        with pytest.raises(BenchJobError):
            resolve_target("repro.no_such_module:fn")
        with pytest.raises(BenchJobError):
            resolve_target("repro.bench._testing:absent")

    def test_rejects_non_callable(self):
        with pytest.raises(BenchJobError):
            resolve_target("repro.bench.job:STATUS_OK")

    def test_run_passes_seed_and_canonicalizes(self):
        spec = JobSpec(name="j", target="repro.bench._testing:echo",
                       args={"x": 1}, seed=9)
        assert spec.run() == {"echo": {"x": 1, "seed": 9}}

    def test_run_rejects_non_json_return(self):
        spec = JobSpec(name="j", target="repro.bench.job:resolve_target",
                       args={"target": "repro.bench._testing:echo"})
        with pytest.raises(BenchJobError):
            spec.run()  # returns a function object: not JSON


class TestJobResult:
    def test_round_trip(self):
        result = JobResult(name="j", fingerprint="f" * 64, status="ok",
                           value={"a": 1}, wall_time_s=1.25, attempts=2)
        assert JobResult.from_dict(result.to_dict()) == result

    def test_cached_flag_not_serialized(self):
        result = JobResult(name="j", fingerprint="f" * 64).as_cached()
        assert result.cached
        assert "cached" not in result.to_dict()
        assert not JobResult.from_dict(result.to_dict()).cached
