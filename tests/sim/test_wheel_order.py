"""Property suite: the event wheel pops in exact heap (time, seq) order.

The PR 5 bench gate holds the simulator to byte-identical counters, which
reduces to one kernel invariant: :class:`repro.sim.wheel.EventWheel` must
hand back entries in exactly the order the old ``heapq`` scheduler did —
strictly increasing ``(time, seq)``, same-tick ties broken by schedule
order, cancelled entries silently skipped.  Hypothesis drives random
interleavings of pushes (zero-delay, slot-local, far-future), pops and
lazy cancellations against a plain ``heapq`` reference model.
"""

import heapq

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim.wheel import EventWheel  # noqa: E402

#: Delays covering every wheel path: the current-instant lane (0.0),
#: intra-slot ties (< 1.0 ms slot width), slot boundaries, multi-slot
#: hops and far-future timers (the heap-of-days fallback).
DELAYS = (0.0, 0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 7.0, 64.0, 5000.0)


def _noop(_arg):
    return None


@settings(max_examples=300, deadline=None)
@given(data=st.data())
def test_wheel_pops_in_heap_order(data):
    wheel = EventWheel()
    reference: list = []       # heap of (time, seq)
    cancelled: set = set()     # (time, seq) cancelled before popping
    live: dict = {}            # (time, seq) -> wheel entry handle
    seq = 0
    now = 0.0
    popped = []
    expected = []

    def reference_pop():
        while reference:
            candidate = heapq.heappop(reference)
            if candidate not in cancelled:
                return candidate
        return None

    def wheel_pop():
        nonlocal now
        entry = wheel.pop(now)
        if entry is None:
            return None
        if entry[0] > now:
            now = entry[0]
        key = (entry[0], entry[1])
        live.pop(key, None)
        wheel.recycle(entry)
        return key

    for _ in range(data.draw(st.integers(min_value=10, max_value=120))):
        op = data.draw(st.sampled_from(("push", "push", "push", "pop",
                                        "cancel")))
        if op == "push":
            when = now + data.draw(st.sampled_from(DELAYS))
            handle = wheel.push(when, seq, now, fn=_noop)
            heapq.heappush(reference, (when, seq))
            live[(when, seq)] = handle
            seq += 1
        elif op == "cancel" and live:
            key = data.draw(st.sampled_from(sorted(live)))
            wheel.cancel(live.pop(key))
            cancelled.add(key)
        elif op == "pop":
            popped.append(wheel_pop())
            expected.append(reference_pop())

    assert len(wheel) == len(live)

    # Drain both completely; the total orders must match element-wise.
    while True:
        got = wheel_pop()
        want = reference_pop()
        popped.append(got)
        expected.append(want)
        if got is None and want is None:
            break

    assert popped == expected
    assert len(wheel) == 0
    assert not wheel


@settings(max_examples=100, deadline=None)
@given(delays=st.lists(st.sampled_from(DELAYS), min_size=1, max_size=60))
def test_same_tick_entries_pop_fifo(delays):
    """Entries sharing a timestamp pop in push (seq) order."""
    wheel = EventWheel()
    now = 0.0
    for seq, delay in enumerate(delays):
        wheel.push(now + delay, seq, now, fn=_noop)
    order = []
    while True:
        entry = wheel.pop(now)
        if entry is None:
            break
        now = max(now, entry[0])
        order.append((entry[0], entry[1]))
        wheel.recycle(entry)
    assert order == sorted(order)
    assert len(order) == len(delays)
