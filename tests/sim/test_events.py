"""Unit tests for the event primitives."""

import pytest

from repro.sim import Event, SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestEventLifecycle:
    def test_pending_event_not_triggered(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_ok_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_sets_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_succeed_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_then_succeed_raises(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("boom"))
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_failed_event_value_raises_original(self, sim):
        ev = sim.event()
        ev.fail(KeyError("k"))
        assert not ev.ok
        with pytest.raises(KeyError):
            _ = ev.value

    def test_callbacks_run_on_processing(self, sim):
        ev = sim.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("x")
        assert seen == []  # callbacks deferred until processed
        sim.run()
        assert seen == ["x"]

    def test_unhandled_failure_propagates_from_run(self, sim):
        ev = sim.event()
        ev.fail(ValueError("unhandled"))
        with pytest.raises(ValueError):
            sim.run()

    def test_defused_failure_does_not_propagate(self, sim):
        ev = sim.event()
        ev.fail(ValueError("handled"))
        ev.defuse()
        sim.run()  # does not raise

    def test_trigger_like_copies_success(self, sim):
        a, b = sim.event(), sim.event()
        a.succeed(7)
        b.trigger_like(a)
        assert b.value == 7

    def test_trigger_like_copies_failure(self, sim):
        a, b = sim.event(), sim.event()
        a.fail(RuntimeError("r"))
        a.defuse()
        b.trigger_like(a)
        b.defuse()
        assert isinstance(b.exception, RuntimeError)


class TestTimeout:
    def test_timeout_fires_at_delay(self, sim):
        t = sim.timeout(5.0, value="done")
        sim.run()
        assert sim.now == 5.0
        assert t.value == "done"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_timeouts_order_deterministically(self, sim):
        order = []
        for delay in (3.0, 1.0, 2.0):
            sim.timeout(delay).callbacks.append(
                lambda _e, d=delay: order.append(d)
            )
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_same_time_fifo(self, sim):
        order = []
        for tag in "abc":
            sim.timeout(1.0).callbacks.append(lambda _e, t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]


class TestAllOf:
    def test_waits_for_all(self, sim):
        t1, t2 = sim.timeout(1.0, "a"), sim.timeout(3.0, "b")
        combined = sim.all_of([t1, t2])
        sim.run()
        assert combined.value == ["a", "b"]
        assert sim.now == 3.0

    def test_empty_fires_immediately(self, sim):
        combined = sim.all_of([])
        assert combined.triggered
        sim.run()
        assert combined.value == []

    def test_failure_of_child_fails_all(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        combined = sim.all_of([good, bad])
        bad.fail(RuntimeError("child"))
        combined.defuse()
        sim.run()
        assert isinstance(combined.exception, RuntimeError)

    def test_pre_triggered_children(self, sim):
        a = sim.event()
        a.succeed(1)
        b = sim.timeout(2.0, 2)
        combined = sim.all_of([a, b])
        sim.run()
        assert combined.value == [1, 2]


class TestAnyOf:
    def test_first_wins(self, sim):
        slow, fast = sim.timeout(10.0, "slow"), sim.timeout(1.0, "fast")
        race = sim.any_of([slow, fast])
        sim.run()
        assert race.value == "fast"
        assert race.first is fast

    def test_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.any_of([])

    def test_late_failure_is_defused(self, sim):
        fast = sim.timeout(1.0, "ok")
        late = sim.event()
        race = sim.any_of([fast, late])
        sim.run()
        late.fail(RuntimeError("late"))
        sim.run()  # must not raise
        assert race.value == "ok"

    def test_failed_first_child_fails_race(self, sim):
        bad = sim.event()
        slow = sim.timeout(5.0)
        race = sim.any_of([bad, slow])
        bad.fail(KeyError("x"))
        race.defuse()
        sim.run()
        assert isinstance(race.exception, KeyError)
