"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestBasicProcesses:
    def test_process_runs_and_returns_value(self, sim):
        def proc(sim):
            yield sim.timeout(2.0)
            return "result"

        p = sim.spawn(proc(sim))
        sim.run()
        assert p.value == "result"
        assert not p.is_alive

    def test_process_receives_event_value(self, sim):
        def proc(sim):
            got = yield sim.timeout(1.0, value=99)
            return got

        p = sim.spawn(proc(sim))
        sim.run()
        assert p.value == 99

    def test_process_waits_on_process(self, sim):
        def child(sim):
            yield sim.timeout(3.0)
            return "child-done"

        def parent(sim):
            result = yield sim.spawn(child(sim))
            return (sim.now, result)

        p = sim.spawn(parent(sim))
        sim.run()
        assert p.value == (3.0, "child-done")

    def test_immediate_return(self, sim):
        def proc(sim):
            return "now"
            yield  # pragma: no cover - makes this a generator

        p = sim.spawn(proc(sim))
        sim.run()
        assert p.value == "now"

    def test_yield_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("early")
        sim.run()
        assert ev.processed

        def proc(sim):
            got = yield ev
            return got

        p = sim.spawn(proc(sim))
        sim.run()
        assert p.value == "early"

    def test_yield_non_event_fails_process(self, sim):
        def proc(sim):
            yield 42

        p = sim.spawn(proc(sim))
        p.defuse()
        sim.run()
        assert isinstance(p.exception, SimulationError)

    def test_crash_propagates_from_run(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("crash")

        sim.spawn(proc(sim))
        with pytest.raises(RuntimeError):
            sim.run()

    def test_daemon_crash_is_recorded_not_raised(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("daemon crash")

        p = sim.spawn(proc(sim), daemon=True)
        sim.run()
        assert len(sim.daemon_failures) == 1
        assert sim.daemon_failures[0][0] is p

    def test_failed_event_raises_inside_process(self, sim):
        ev = sim.event()

        def proc(sim):
            try:
                yield ev
            except ValueError:
                return "caught"

        p = sim.spawn(proc(sim))
        ev.fail(ValueError("bad"))
        sim.run()
        assert p.value == "caught"

    def test_run_until_complete(self, sim):
        def proc(sim):
            yield sim.timeout(4.0)
            return 7

        p = sim.spawn(proc(sim))
        assert sim.run_until_complete(p) == 7

    def test_run_until_complete_detects_deadlock(self, sim):
        def proc(sim):
            yield sim.event()  # never fires

        p = sim.spawn(proc(sim))
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(p)


class TestInterrupt:
    def test_interrupt_wakes_process(self, sim):
        def victim(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                return ("interrupted", intr.cause, sim.now)

        p = sim.spawn(victim(sim))

        def attacker(sim):
            yield sim.timeout(5.0)
            p.interrupt("because")

        sim.spawn(attacker(sim))
        sim.run()
        assert p.value == ("interrupted", "because", 5.0)

    def test_interrupt_finished_process_is_noop(self, sim):
        def quick(sim):
            yield sim.timeout(1.0)
            return "ok"

        p = sim.spawn(quick(sim))
        sim.run()
        p.interrupt("late")
        sim.run()
        assert p.value == "ok"

    def test_uncaught_interrupt_fails_process(self, sim):
        def victim(sim):
            yield sim.timeout(100.0)

        p = sim.spawn(victim(sim))

        def attacker(sim):
            yield sim.timeout(1.0)
            p.interrupt()

        sim.spawn(attacker(sim))
        p.defuse()
        sim.run()
        assert isinstance(p.exception, Interrupt)

    def test_interrupted_wait_event_outcome_ignored(self, sim):
        slow = sim.timeout(50.0, "slow-value")

        def victim(sim):
            try:
                yield slow
            except Interrupt:
                yield sim.timeout(100.0)
                return "resumed"

        p = sim.spawn(victim(sim))

        def attacker(sim):
            yield sim.timeout(1.0)
            p.interrupt()

        sim.spawn(attacker(sim))
        sim.run()
        assert p.value == "resumed"
        assert sim.now == 101.0


class TestClock:
    def test_run_until_advances_clock_exactly(self, sim):
        sim.timeout(3.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_does_not_process_later_events(self, sim):
        seen = []
        sim.timeout(5.0).callbacks.append(lambda e: seen.append("early"))
        sim.timeout(15.0).callbacks.append(lambda e: seen.append("late"))
        sim.run(until=10.0)
        assert seen == ["early"]
        sim.run()
        assert seen == ["early", "late"]

    def test_run_until_past_raises(self, sim):
        sim.run(until=10.0)
        with pytest.raises(SimulationError):
            sim.run(until=5.0)

    def test_step_on_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")
