"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, SimulationError, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_acquire_within_capacity_is_immediate(self, sim):
        res = Resource(sim, capacity=2)
        assert res.acquire().triggered
        assert res.acquire().triggered
        assert res.available == 0

    def test_acquire_beyond_capacity_blocks(self, sim):
        res = Resource(sim, capacity=1)
        res.acquire()
        blocked = res.acquire()
        assert not blocked.triggered
        assert res.queue_length == 1
        res.release()
        assert blocked.triggered

    def test_fifo_granting(self, sim):
        res = Resource(sim, capacity=1)
        res.acquire()
        first, second = res.acquire(), res.acquire()
        res.release()
        assert first.triggered and not second.triggered
        res.release()
        assert second.triggered

    def test_release_idle_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_cancel_pending_request(self, sim):
        res = Resource(sim, capacity=1)
        res.acquire()
        pending = res.acquire()
        res.cancel(pending)
        assert res.queue_length == 0
        res.release()
        assert res.available == 1

    def test_cancel_granted_request_releases(self, sim):
        res = Resource(sim, capacity=1)
        grant = res.acquire()
        res.cancel(grant)
        assert res.available == 1

    def test_cancel_foreign_event_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.cancel(sim.event())

    def test_contention_with_processes(self, sim):
        res = Resource(sim, capacity=2)
        finish_times = []

        def worker(sim):
            yield res.acquire()
            yield sim.timeout(10.0)
            res.release()
            finish_times.append(sim.now)

        for _ in range(4):
            sim.spawn(worker(sim))
        sim.run()
        # 2 run immediately, 2 queue behind them.
        assert finish_times == [10.0, 10.0, 20.0, 20.0]


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("a")
        got = store.get()
        assert got.triggered
        sim.run()
        assert got.value == "a"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = store.get()
        assert not got.triggered
        store.put("b")
        assert got.triggered

    def test_fifo_items(self, sim):
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)
        values = [store.get().value for _ in range(3)]
        assert values == [1, 2, 3]

    def test_fifo_getters(self, sim):
        store = Store(sim)
        g1, g2 = store.get(), store.get()
        store.put("x")
        store.put("y")
        assert g1.value == "x"
        assert g2.value == "y"

    def test_len_and_drain(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.drain() == [1, 2]
        assert len(store) == 0

    def test_consumer_process_loop(self, sim):
        store = Store(sim)
        consumed = []

        def consumer(sim):
            for _ in range(3):
                item = yield store.get()
                consumed.append((sim.now, item))

        def producer(sim):
            for i in range(3):
                yield sim.timeout(5.0)
                store.put(i)

        sim.spawn(consumer(sim))
        sim.spawn(producer(sim))
        sim.run()
        assert consumed == [(5.0, 0), (10.0, 1), (15.0, 2)]


class TestRng:
    def test_streams_are_deterministic(self):
        a = Simulator(seed=7).rng.stream("x").random()
        b = Simulator(seed=7).rng.stream("x").random()
        assert a == b

    def test_streams_are_independent_by_name(self):
        sim = Simulator(seed=7)
        assert sim.rng.stream("x").random() != sim.rng.stream("y").random()

    def test_different_seeds_differ(self):
        a = Simulator(seed=1).rng.stream("x").random()
        b = Simulator(seed=2).rng.stream("x").random()
        assert a != b

    def test_stream_identity_is_cached(self):
        sim = Simulator(seed=3)
        assert sim.rng.stream("s") is sim.rng.stream("s")
        assert "s" in sim.rng
