"""Unit tests for the global storage model."""

import pytest

from repro.config import KB, LatencyModel
from repro.sim import Simulator
from repro.storage import DataItem, GlobalStorage


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def storage(sim):
    return GlobalStorage(sim, LatencyModel())


def run(sim, gen):
    return sim.run_until_complete(sim.spawn(gen))


class TestReadWrite:
    def test_read_missing_key(self, sim, storage):
        assert run(sim, storage.read("nope")) == (None, 0)

    def test_write_then_read(self, sim, storage):
        item = DataItem("v1", size_bytes=4 * KB)
        version = run(sim, storage.write("k", item))
        assert version == 1
        assert run(sim, storage.read("k")) == (item, 1)

    def test_versions_increase(self, sim, storage):
        run(sim, storage.write("k", DataItem("a")))
        version = run(sim, storage.write("k", DataItem("b")))
        assert version == 2
        assert storage.version_of("k") == 2

    def test_read_latency_is_storage_rtt(self, sim, storage):
        storage.preload({"k": DataItem("v", size_bytes=0)})
        start = sim.now
        run(sim, storage.read("k"))
        assert sim.now - start == pytest.approx(storage.latency.storage_rtt)

    def test_large_value_reads_slower(self, sim, storage):
        storage.preload({"small": DataItem("s", size_bytes=0),
                         "big": DataItem("b", size_bytes=1024 * KB)})
        t0 = sim.now
        run(sim, storage.read("small"))
        small_time = sim.now - t0
        t1 = sim.now
        run(sim, storage.read("big"))
        big_time = sim.now - t1
        assert big_time > small_time

    def test_write_commits_at_ack_not_at_issue(self, sim, storage):
        storage.preload({"k": DataItem("old")})

        def writer(sim):
            yield from storage.write("k", DataItem("new"))

        sim.spawn(writer(sim))
        # Halfway through the write RTT the old value must still be visible.
        sim.run(until=storage.latency.storage_rtt / 2)
        assert storage.peek("k").value == DataItem("old")
        sim.run()
        assert storage.peek("k").value == DataItem("new")

    def test_preload_sets_version_one(self, storage):
        storage.preload({"a": DataItem("x"), "b": DataItem("y")})
        assert storage.version_of("a") == 1
        assert storage.version_of("b") == 1

    def test_version_of_missing_is_zero(self, storage):
        assert storage.version_of("ghost") == 0

    def test_read_version_only(self, sim, storage):
        storage.preload({"k": DataItem("v", size_bytes=64 * KB)})
        start = sim.now
        version = run(sim, storage.read_version("k"))
        assert version == 1
        # Version probe must not pay the 64 KB transfer cost.
        assert sim.now - start < storage.latency.storage_read(64 * KB)

    def test_stats_counters(self, sim, storage):
        item = DataItem("v", size_bytes=100)
        run(sim, storage.write("k", item))
        run(sim, storage.read("k"))
        assert storage.stats.writes == 1
        assert storage.stats.reads == 1
        assert storage.stats.write_bytes == 100
        assert storage.stats.read_bytes == 100


class TestWriteListeners:
    def test_listener_fires_with_writer_tag(self, sim, storage):
        seen = []
        storage.add_write_listener(lambda *args: seen.append(args))
        item = DataItem("v")
        run(sim, storage.write("k", item, writer="node3/agent"))
        assert seen == [("k", item, 1, "node3/agent")]

    def test_listener_fires_per_write(self, sim, storage):
        seen = []
        storage.add_write_listener(lambda key, *rest: seen.append(key))
        run(sim, storage.write("a", DataItem("x")))
        run(sim, storage.write("b", DataItem("y")))
        assert seen == ["a", "b"]

    def test_preload_does_not_fire_listeners(self, storage):
        seen = []
        storage.add_write_listener(lambda *args: seen.append(args))
        storage.preload({"k": DataItem("v")})
        assert seen == []


class TestDataItem:
    def test_equality_by_payload_and_size(self):
        assert DataItem("a", 10) == DataItem("a", 10)
        assert DataItem("a", 10) != DataItem("b", 10)

    def test_sizeof_uses_declared_size(self):
        from repro.net import sizeof

        assert sizeof(DataItem("a", 12 * KB)) == 12 * KB
