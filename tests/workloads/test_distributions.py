"""Tests for workload distributions and application profiles."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import KB
from repro.workloads import ALL_PROFILES, SizeSampler, ZipfSampler, build_app
from repro.workloads.distributions import is_read_only
from repro.workloads.profiles import (
    entity_inputs_factory,
    entity_key,
    global_key,
    handoff_key,
    preload_storage,
)


class TestZipf:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, alpha=-1)

    def test_samples_in_range(self):
        sampler = ZipfSampler(50, alpha=1.0)
        rng = random.Random(1)
        assert all(0 <= sampler.sample(rng) < 50 for _ in range(500))

    def test_skew_prefers_low_ranks(self):
        sampler = ZipfSampler(100, alpha=1.2)
        rng = random.Random(2)
        samples = [sampler.sample(rng) for _ in range(2000)]
        head = sum(1 for s in samples if s < 10)
        assert head > len(samples) * 0.5

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(10, alpha=0.0)
        assert sampler.probability(0) == pytest.approx(0.1, abs=1e-9)
        assert sampler.probability(9) == pytest.approx(0.1, abs=1e-9)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(20, alpha=1.5)
        total = sum(sampler.probability(r) for r in range(20))
        assert total == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 200), alpha=st.floats(0.0, 3.0),
           seed=st.integers(0, 10_000))
    def test_sample_always_valid_property(self, n, alpha, seed):
        sampler = ZipfSampler(n, alpha)
        rng = random.Random(seed)
        for _ in range(20):
            assert 0 <= sampler.sample(rng) < n


class TestSizes:
    def test_sizes_are_deterministic_per_key(self):
        sampler = SizeSampler()
        assert sampler.size_of("k1") == sampler.size_of("k1")

    def test_majority_of_items_at_most_12kb(self):
        """The paper's headline statistic: 80% of items are <= 12 KB."""
        sampler = SizeSampler()
        sizes = [sampler.size_of(f"key-{i}") for i in range(3000)]
        small = sum(1 for s in sizes if s <= 12 * KB)
        assert 0.72 <= small / len(sizes) <= 0.88

    def test_scale_multiplies_sizes(self):
        base = SizeSampler()
        scaled = SizeSampler(scale=16.0)
        assert scaled.size_of("k") == base.size_of("k") * 16

    def test_read_only_fraction(self):
        keys = [f"key-{i}" for i in range(5000)]
        fraction = sum(1 for k in keys if is_read_only(k)) / len(keys)
        assert 0.03 <= fraction <= 0.07


class TestProfiles:
    def test_all_seven_apps_present(self):
        assert set(ALL_PROFILES) == {
            "TrainT", "eShop", "ImgProc", "VidProc",
            "HotelBook", "MediaServ", "SocNet",
        }

    def test_build_app_has_workflow(self):
        spec = build_app(ALL_PROFILES["SocNet"])
        assert len(spec.workflow) == 5
        assert all(spec.function(name) for name in spec.workflow)

    def test_key_namespaces_are_distinct(self):
        assert entity_key("A", 1, 2) != entity_key("B", 1, 2)
        assert handoff_key("A", 1, 0) != entity_key("A", 1, 0)
        assert global_key("A", 3).startswith("A:")

    def test_preload_covers_working_set(self):
        from repro.sim import Simulator
        from repro.storage import GlobalStorage

        sim = Simulator()
        storage = GlobalStorage(sim)
        profile = ALL_PROFILES["TrainT"]
        count = preload_storage(storage, profile)
        assert count == profile.entities * profile.items_per_entity + profile.global_items
        assert storage.peek(entity_key("TrainT", 0, 0)) is not None

    def test_inputs_factory_draws_zipf_entities(self):
        from repro.sim import Simulator

        sim = Simulator(seed=3)
        factory = entity_inputs_factory(ALL_PROFILES["SocNet"], sim)
        entities = [factory(i)["entity"] for i in range(300)]
        assert all(0 <= e < 100 for e in entities)
        # Strong skew: the hottest entity dominates.
        assert entities.count(0) > 30


class TestEndToEndWorkload:
    def test_app_runs_on_platform_with_concord(self):
        from repro.cluster import Cluster
        from repro.config import SimConfig
        from repro.core import ConcordSystem
        from repro.faas import CasScheduler, FaasPlatform
        from repro.sim import Simulator

        sim = Simulator(seed=17)
        cluster = Cluster(sim, SimConfig(num_nodes=4))
        concord = ConcordSystem(cluster, app="TrainT")
        profile = ALL_PROFILES["TrainT"]
        preload_storage(cluster.storage, profile)
        platform = FaasPlatform(cluster, scheduler=CasScheduler())
        app = platform.deploy(build_app(profile), concord)

        factory = entity_inputs_factory(profile, sim)
        for index in range(10):
            sim.run_until_complete(
                sim.spawn(platform.request("TrainT", factory(index))),
                limit=sim.now + 600_000.0,
            )
        assert app.requests_completed == 10
        assert app.latency.count == 10
        # Repeated requests on hot entities hit the local caches.
        assert concord.stats.reads > 0
        mix = concord.stats.read_mix()
        assert mix["local_hit"] > 0.2
