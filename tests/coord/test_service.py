"""Unit tests for the coordination service."""

import pytest

from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.coord.service import ping_handler
from repro.net import Endpoint, Network
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def config():
    return SimConfig(heartbeat_interval_ms=100.0, heartbeat_misses=3)


@pytest.fixture
def net(sim, config):
    return Network(sim, config.latency)


def make_member(net, node_id):
    """A member endpoint that answers pings and records notifications."""
    ep = Endpoint(net, node_id, "agent")
    ep.events = []
    ep.register_handler("ping", ping_handler)

    def on_membership(endpoint, src, event):
        ep.events.append(event)
        return None
        yield  # pragma: no cover

    ep.register_handler("membership", on_membership)
    return ep


class TestMembership:
    def test_join_and_members(self, net, config):
        coord = CoordinationService(net, config, run_heartbeats=False)
        coord.join("app1", "node0", "node0/agent")
        coord.join("app1", "node1", "node1/agent")
        assert coord.members("app1") == {
            "node0": "node0/agent", "node1": "node1/agent",
        }

    def test_join_notifies_existing_members(self, sim, net, config):
        coord = CoordinationService(net, config, run_heartbeats=False)
        m0 = make_member(net, "node0")
        coord.join("app1", "node0", m0.address)
        coord.join("app1", "node1", "node1/agent")
        sim.run()
        assert [e.kind for e in m0.events] == ["joined"]
        assert m0.events[0].member == "node1"

    def test_duplicate_join_is_noop(self, sim, net, config):
        coord = CoordinationService(net, config, run_heartbeats=False)
        m0 = make_member(net, "node0")
        coord.join("app1", "node0", m0.address)
        coord.join("app1", "node0", m0.address)
        sim.run()
        assert m0.events == []

    def test_leave_notifies_survivors(self, sim, net, config):
        coord = CoordinationService(net, config, run_heartbeats=False)
        m0 = make_member(net, "node0")
        coord.join("app1", "node0", m0.address)
        coord.join("app1", "node1", "node1/agent")
        sim.run()
        coord.leave("app1", "node1")
        sim.run()
        kinds = [e.kind for e in m0.events]
        assert kinds == ["joined", "left"]

    def test_leave_unknown_member_is_noop(self, net, config):
        coord = CoordinationService(net, config, run_heartbeats=False)
        coord.leave("app1", "ghost")  # no exception

    def test_groups_are_isolated(self, sim, net, config):
        coord = CoordinationService(net, config, run_heartbeats=False)
        m0 = make_member(net, "node0")
        coord.join("app1", "node0", m0.address)
        coord.join("app2", "node1", "node1/agent2")
        coord.leave("app2", "node1")
        sim.run()
        assert m0.events == []  # app1 member never hears about app2


class TestFailureDetection:
    def test_crashed_member_is_detected(self, sim, net, config):
        coord = CoordinationService(net, config)
        m0 = make_member(net, "node0")
        m1 = make_member(net, "node1")
        coord.join("app1", "node0", m0.address)
        coord.join("app1", "node1", m1.address)
        sim.run(until=500.0)
        net.fail_node("node1")
        sim.run(until=3000.0)
        assert coord.members("app1") == {"node0": m0.address}
        fails = [e for e in m0.events if e.kind == "failed"]
        assert len(fails) == 1
        assert fails[0].member == "node1"

    def test_detection_latency_within_budget(self, sim, net, config):
        coord = CoordinationService(net, config)
        m0 = make_member(net, "node0")
        m1 = make_member(net, "node1")
        coord.join("app1", "node0", m0.address)
        coord.join("app1", "node1", m1.address)
        sim.run(until=200.0)
        net.fail_node("node1")
        crash_time = sim.now
        sim.run(until=5000.0)
        assert coord.failures_detected
        detected_at = coord.failures_detected[0][0]
        # Misses accumulate over ~3 heartbeat rounds + probe timeouts.
        budget = config.heartbeat_interval_ms * (config.heartbeat_misses + 2)
        assert detected_at - crash_time <= budget

    def test_healthy_members_not_declared_failed(self, sim, net, config):
        coord = CoordinationService(net, config)
        m0 = make_member(net, "node0")
        m1 = make_member(net, "node1")
        coord.join("app1", "node0", m0.address)
        coord.join("app1", "node1", m1.address)
        sim.run(until=5000.0)
        assert coord.failures_detected == []
        assert set(coord.members("app1")) == {"node0", "node1"}

    def test_only_affected_groups_notified(self, sim, net, config):
        coord = CoordinationService(net, config)
        m0 = make_member(net, "node0")   # app1 only
        m2 = make_member(net, "node2")   # app2 only
        failing = make_member(net, "node1")  # app1 only
        coord.join("app1", "node0", m0.address)
        coord.join("app1", "node1", failing.address)
        coord.join("app2", "node2", m2.address)
        sim.run(until=200.0)
        net.fail_node("node1")
        sim.run(until=3000.0)
        assert any(e.kind == "failed" for e in m0.events)
        assert not any(e.kind == "failed" for e in m2.events)

    def test_report_unreachable_is_immediate(self, sim, net, config):
        coord = CoordinationService(net, config, run_heartbeats=False)
        m0 = make_member(net, "node0")
        coord.join("app1", "node0", m0.address)
        coord.join("app1", "node1", "node1/agent")
        coord.report_unreachable("app1", "node1")
        sim.run()
        assert coord.members("app1") == {"node0": m0.address}
        assert any(e.kind == "failed" for e in m0.events)

    def test_report_unreachable_unknown_member_noop(self, net, config):
        coord = CoordinationService(net, config, run_heartbeats=False)
        coord.join("app1", "node0", "node0/agent")
        coord.report_unreachable("app1", "ghost")
        assert coord.members("app1") == {"node0": "node0/agent"}
