"""The ejection-notification path: a falsely-failed member is told."""

import pytest

from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.coord.service import ping_handler
from repro.net import Endpoint, Network
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=4)


@pytest.fixture
def net(sim):
    return Network(sim, SimConfig().latency)


def make_member(net, node_id):
    ep = Endpoint(net, node_id, "agent")
    ep.events = []
    ep.register_handler("ping", ping_handler)

    def on_membership(endpoint, src, event):
        ep.events.append(event)
        return None
        yield  # pragma: no cover

    ep.register_handler("membership", on_membership)
    return ep


class TestSelfNotification:
    def test_live_member_learns_of_its_own_ejection(self, sim, net):
        config = SimConfig(heartbeat_interval_ms=100.0)
        coord = CoordinationService(net, config, run_heartbeats=False)
        victim = make_member(net, "node1")
        other = make_member(net, "node0")
        coord.join("app1", "node0", other.address)
        coord.join("app1", "node1", victim.address)
        # Someone (wrongly) reports node1 unreachable; node1 is alive and
        # must receive the failure event about itself.
        coord.report_unreachable("app1", "node1")
        sim.run()
        self_events = [e for e in victim.events if e.kind == "failed"
                       and e.member == "node1"]
        assert len(self_events) == 1

    def test_dead_member_notification_is_dropped(self, sim, net):
        config = SimConfig(heartbeat_interval_ms=100.0)
        coord = CoordinationService(net, config, run_heartbeats=False)
        victim = make_member(net, "node1")
        coord.join("app1", "node0", "node0/agent")
        coord.join("app1", "node1", victim.address)
        net.fail_node("node1")
        dropped_before = net.stats.dropped
        coord.report_unreachable("app1", "node1")
        sim.run()
        assert victim.events == []
        assert net.stats.dropped > dropped_before
