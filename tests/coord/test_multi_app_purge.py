"""A node declared unreachable is purged from every app group it is in.

Regression for the multi-app purge fix (ISSUE 4 satellite): a crash is a
*node*-level fact, so one application's unreachable report must remove
the node's cache instances from all groups — exactly as accumulated
heartbeat misses would — not just from the reporting app's group.
"""

import pytest

from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.net import Network
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def coord(sim):
    config = SimConfig(heartbeat_interval_ms=100.0, heartbeat_misses=3)
    net = Network(sim, config.latency)
    service = CoordinationService(net, config, run_heartbeats=False)
    for app in ("app1", "app2"):
        for node in ("node0", "node1", "node2"):
            service.join(app, node, f"{node}/{app}")
    return service


class TestMultiAppPurge:
    def test_report_purges_node_from_every_group(self, sim, coord):
        coord.report_unreachable("app1", "node0")
        sim.run()
        assert "node0" not in coord.members("app1")
        assert "node0" not in coord.members("app2")
        # One failure declaration per (app, member) pair.
        declared = {(app, node) for _t, app, node in coord.failures_detected}
        assert declared == {("app1", "node0"), ("app2", "node0")}

    def test_survivors_keep_their_membership(self, sim, coord):
        coord.report_unreachable("app2", "node1")
        sim.run()
        assert set(coord.members("app1")) == {"node0", "node2"}
        assert set(coord.members("app2")) == {"node0", "node2"}

    def test_report_for_unknown_member_is_a_noop(self, sim, coord):
        coord.report_unreachable("app1", "node9")
        coord.report_unreachable("nosuchapp", "node0")
        sim.run()
        assert set(coord.members("app1")) == {"node0", "node1", "node2"}
        assert set(coord.members("app2")) == {"node0", "node1", "node2"}
        assert coord.failures_detected == []
