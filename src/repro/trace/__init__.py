"""Deterministic causal tracing for the Concord reproduction.

Public surface::

    from repro.trace import Tracer, INHERIT

    tracer = Tracer()
    sim = Simulator(seed=42, tracer=tracer)
    ...
    export_chrome(tracer, "out.json")     # Perfetto-loadable
    export_jsonl(tracer, "out.jsonl")     # one span per line

See :mod:`repro.trace.tracer` for the span model and the determinism
contract, and ``repro-trace`` (:mod:`repro.trace.cli`) for turning an
export back into a Fig. 1-style latency breakdown.
"""

from repro.trace.export import (
    chrome_dumps,
    export_chrome,
    export_jsonl,
    jsonl_dumps,
    load_trace,
    loads_trace,
)
from repro.trace.tracer import (
    INHERIT,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
)

__all__ = [
    "INHERIT",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceContext",
    "Tracer",
    "chrome_dumps",
    "export_chrome",
    "export_jsonl",
    "jsonl_dumps",
    "load_trace",
    "loads_trace",
]
