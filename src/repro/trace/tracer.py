"""Deterministic causal tracing clocked off the simulated clock.

A :class:`Tracer` collects :class:`Span` records describing what one
logical operation did — agent op, directory lookup, invalidation fan-out,
storage round trip — as a tree linked by ``(trace_id, span_id,
parent_id)``.  The design constraints mirror the repository's analysis
rules:

* **Simulated time only** (DET01): spans are stamped with ``sim.now``;
  the tracer never reads a wall clock.
* **Deterministic identity** (DET03): trace/span ids come from plain
  counters, never ``id()`` or hashes, so two identically-seeded runs
  produce byte-identical exports regardless of ``PYTHONHASHSEED``.
* **Zero-cost no-op mode**: an unconfigured simulator carries the shared
  :data:`NULL_TRACER` whose ``active`` flag lets hot paths skip span
  construction entirely.

Context propagation is ambient: every :class:`~repro.sim.process.Process`
carries a ``trace_ctx`` slot, inherited from its spawner and updated as
spans open and close, so generator-based protocol code rarely needs to
thread contexts by hand.  RPC boundaries carry the context explicitly in
``Message.trace``; passing ``trace=INHERIT`` at a call site (the default)
says "attach to whatever operation this process is serving".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TraceContext:
    """Position inside one span tree, carried across process boundaries."""

    trace_id: int
    span_id: int


class _Inherit:
    """Sentinel: resolve the parent from the current process context."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "INHERIT"


#: Pass as ``parent=``/``trace=`` to propagate the ambient TraceContext.
INHERIT = _Inherit()


class Span:
    """One timed node of a trace tree.  Usable as a context manager."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "category",
                 "start_ms", "end_ms", "attrs",
                 "_tracer", "_process", "_prev_ctx", "tid")

    def __init__(self, tracer, trace_id, span_id, parent_id, name,
                 category, start_ms, attrs):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.attrs = attrs
        self.tid = 0
        self._tracer = tracer
        self._process = None
        self._prev_ctx: Optional[TraceContext] = None

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    @property
    def duration_ms(self) -> float:
        end = self.end_ms if self.end_ms is not None else self.start_ms
        return end - self.start_ms

    def set(self, key: str, value) -> "Span":
        """Attach/overwrite one attribute (e.g. ``status`` on timeout)."""
        self.attrs[key] = value
        return self

    def end(self) -> None:
        self._tracer._end(self)

    def to_dict(self) -> dict:
        end = self.end_ms if self.end_ms is not None else self.start_ms
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_ms": self.start_ms,
            "end_ms": end,
            "duration_ms": end - self.start_ms,
            "attrs": self.attrs,
            "tid": self.tid,
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end_ms is None else f"{self.duration_ms:.3f}ms"
        return (f"Span({self.category}:{self.name} "
                f"t{self.trace_id}/s{self.span_id} {state})")


class _NullSpan:
    """Shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()
    context = None

    def set(self, key, value):
        return self

    def end(self):
        return None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Per-run span collector bound to one :class:`Simulator`.

    Spans are handed out by :meth:`span` (context manager) and recorded
    in *closure* order once ended; only completed spans are exported.
    ``open_spans()`` exposes whatever is still running — a drained
    simulation must leave it empty.
    """

    active = True

    def __init__(self):
        self._sim = None
        self._finished: list = []
        # Insertion-ordered registry of spans not yet ended (dict-as-set).
        self._open: dict = {}
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        # Process -> lane id for Chrome export; assigned by first use so
        # the numbering is deterministic. Key None = outside any process.
        self._lanes: dict = {}
        self._lane_names: dict = {}
        # Context for code running outside any sim process.
        self._ambient: Optional[TraceContext] = None

    # -- wiring -------------------------------------------------------

    def bind(self, sim) -> "Tracer":
        if self._sim is not None and self._sim is not sim:
            raise ValueError("Tracer is already bound to another Simulator")
        self._sim = sim
        return self

    @property
    def sim(self):
        return self._sim

    # -- context handling ---------------------------------------------

    def current(self) -> Optional[TraceContext]:
        """The TraceContext of the running process (or ambient code)."""
        process = self._sim.active_process if self._sim is not None else None
        if process is not None:
            return process.trace_ctx
        return self._ambient

    def resolve(self, parent) -> Optional[TraceContext]:
        """Normalize a ``parent=``/``trace=`` argument to a context."""
        if parent is INHERIT:
            return self.current()
        if parent is None or isinstance(parent, TraceContext):
            return parent
        if isinstance(parent, Span):
            return parent.context
        raise TypeError(f"not a trace parent: {parent!r}")

    def _set_current(self, ctx: Optional[TraceContext]) -> None:
        process = self._sim.active_process if self._sim is not None else None
        if process is not None:
            process.trace_ctx = ctx
        else:
            self._ambient = ctx

    def _lane_for(self, process) -> int:
        lane = self._lanes.get(process)
        if lane is None:
            lane = len(self._lanes)
            self._lanes[process] = lane
            if process is None:
                self._lane_names[lane] = "driver"
            else:
                self._lane_names[lane] = process.name or f"process-{lane}"
        return lane

    # -- span lifecycle -----------------------------------------------

    def span(self, name: str, category: str = "span",
             parent=INHERIT, **attrs) -> Span:
        """Open a span; it becomes the current context until ended."""
        if self._sim is None:
            raise RuntimeError("Tracer.span() before bind(): attach the "
                               "tracer via Simulator(tracer=...)")
        parent_ctx = self.resolve(parent)
        if parent_ctx is None:
            trace_id = next(self._trace_ids)
            parent_id = None
        else:
            trace_id = parent_ctx.trace_id
            parent_id = parent_ctx.span_id
        span = Span(self, trace_id, next(self._span_ids), parent_id,
                    name, category, self._sim.now, attrs)
        process = self._sim.active_process
        span._process = process
        span._prev_ctx = self.current()
        span.tid = self._lane_for(process)
        self._set_current(span.context)
        self._open[span] = None
        return span

    def instant(self, name: str, category: str = "event",
                parent=INHERIT, **attrs) -> Span:
        """Record a zero-duration event without shifting the context."""
        if self._sim is None:
            raise RuntimeError("Tracer.instant() before bind()")
        parent_ctx = self.resolve(parent)
        if parent_ctx is None:
            trace_id = next(self._trace_ids)
            parent_id = None
        else:
            trace_id = parent_ctx.trace_id
            parent_id = parent_ctx.span_id
        span = Span(self, trace_id, next(self._span_ids), parent_id,
                    name, category, self._sim.now, attrs)
        span.tid = self._lane_for(self._sim.active_process)
        span.end_ms = span.start_ms
        self._finished.append(span)
        return span

    def _end(self, span: Span) -> None:
        if span.end_ms is not None:
            return
        span.end_ms = self._sim.now
        self._open.pop(span, None)
        self._finished.append(span)
        # Restore the context on whichever process opened the span, but
        # only if that span is still its current context (spans closed
        # out of order keep whatever the inner code installed).
        process = span._process
        holder_ctx = (process.trace_ctx if process is not None
                      else self._ambient)
        if holder_ctx is not None and holder_ctx.span_id == span.span_id:
            if process is not None:
                process.trace_ctx = span._prev_ctx
            else:
                self._ambient = span._prev_ctx

    # -- inspection / export ------------------------------------------

    @property
    def spans(self) -> list:
        """Completed spans, in the order they ended."""
        return list(self._finished)

    def open_spans(self) -> list:
        """Spans begun but not yet ended (should drain to empty)."""
        return list(self._open)

    def lane_names(self) -> dict:
        """Chrome-export lane id -> human-readable process name."""
        return dict(self._lane_names)

    def to_dicts(self) -> list:
        """Completed spans as JSON-ready dicts, sorted by span id."""
        return [span.to_dict()
                for span in sorted(self._finished, key=lambda s: s.span_id)]


class NullTracer:
    """Inactive tracer: every operation is a no-op.

    ``active`` is False so hot paths can skip attribute packing; code
    that opens spans unconditionally still works and pays only a couple
    of attribute lookups.
    """

    active = False

    def bind(self, sim) -> "NullTracer":
        return self

    @property
    def sim(self):
        return None

    def current(self) -> Optional[TraceContext]:
        return None

    def resolve(self, parent) -> Optional[TraceContext]:
        return None

    def span(self, name, category="span", parent=INHERIT, **attrs):
        return NULL_SPAN

    def instant(self, name, category="event", parent=INHERIT, **attrs):
        return NULL_SPAN

    @property
    def spans(self) -> list:
        return []

    def open_spans(self) -> list:
        return []

    def lane_names(self) -> dict:
        return {}

    def to_dicts(self) -> list:
        return []


#: Shared inactive tracer; the default for every Simulator.
NULL_TRACER = NullTracer()
