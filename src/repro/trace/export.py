"""Trace serialization: JSONL span records and Chrome ``trace_event``.

Both writers are byte-deterministic for a given simulation: spans are
emitted sorted by span id (creation order), every JSON object is dumped
with ``sort_keys=True``, and nothing derived from object identity or
hash order reaches the output.  The Chrome variant loads directly in
Perfetto / ``chrome://tracing`` — one ``pid`` for the run, one ``tid``
lane per simulator process, complete (``ph: "X"``) events in
microseconds.

These are plain functions (not simulation processes), so file I/O here
is outside the SIM02 no-blocking-calls contract.
"""

from __future__ import annotations

import json
from typing import Iterable, Union


def _span_dicts(source) -> list:
    """Accept a Tracer or an iterable of span dicts; return sorted dicts."""
    if hasattr(source, "to_dicts"):
        return source.to_dicts()
    return sorted(source, key=lambda s: s["span_id"])


def jsonl_dumps(source) -> str:
    """Serialize completed spans as one JSON object per line."""
    lines = [json.dumps(span, sort_keys=True, separators=(",", ":"))
             for span in _span_dicts(source)]
    return "\n".join(lines) + ("\n" if lines else "")


def export_jsonl(source, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(jsonl_dumps(source))


def chrome_events(source, lane_names=None) -> list:
    """Build the Chrome ``traceEvents`` list (metadata + complete events)."""
    spans = _span_dicts(source)
    if lane_names is None:
        lane_names = source.lane_names() if hasattr(source, "lane_names") else {}
    events = []
    for tid in sorted(lane_names):
        events.append({
            "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": lane_names[tid]},
        })
    for span in spans:
        args = dict(span.get("attrs") or {})
        args["trace_id"] = span["trace_id"]
        args["span_id"] = span["span_id"]
        if span.get("parent_id") is not None:
            args["parent_id"] = span["parent_id"]
        events.append({
            "ph": "X",
            "pid": 1,
            "tid": span.get("tid", 0),
            "name": span["name"],
            "cat": span["category"],
            # trace_event timestamps are microseconds; sim time is ms.
            "ts": span["start_ms"] * 1000.0,
            "dur": (span["end_ms"] - span["start_ms"]) * 1000.0,
            "args": args,
        })
    return events


def chrome_dumps(source, lane_names=None) -> str:
    """Serialize as a Chrome trace_event JSON document."""
    events = chrome_events(source, lane_names=lane_names)
    lines = [json.dumps(event, sort_keys=True, separators=(",", ":"))
             for event in events]
    body = ",\n  ".join(lines)
    return ('{"displayTimeUnit": "ms",\n "traceEvents": [\n  '
            + body + "\n ]}\n")


def export_chrome(source, path, lane_names=None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_dumps(source, lane_names=lane_names))


def _spans_from_chrome(document: dict) -> list:
    spans = []
    for event in document.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        trace_id = args.pop("trace_id", None)
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        start_ms = event.get("ts", 0.0) / 1000.0
        duration_ms = event.get("dur", 0.0) / 1000.0
        spans.append({
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "name": event.get("name", ""),
            "category": event.get("cat", "span"),
            "start_ms": start_ms,
            "end_ms": start_ms + duration_ms,
            "duration_ms": duration_ms,
            "attrs": args,
            "tid": event.get("tid", 0),
        })
    return spans


def loads_trace(text: str) -> list:
    """Parse either export format into a list of span dicts."""
    stripped = text.lstrip()
    if not stripped:
        return []
    if stripped.startswith("{") and "traceEvents" in stripped.split("\n", 1)[0]:
        return _spans_from_chrome(json.loads(text))
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict) and "traceEvents" in document:
        return _spans_from_chrome(document)
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    return spans


def load_trace(path) -> list:
    """Read a trace file (JSONL or Chrome) into span dicts."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_trace(handle.read())
