"""Command-line entry point: ``python -m repro.trace`` / ``repro-trace``.

Usage::

    repro-trace out.json                 # Fig. 1-style breakdown table
    repro-trace out.json --format=json   # machine-readable summary
    repro-trace out.json --ops           # only the per-op table
    repro-trace out.json --since 500 --until 1500   # sim-time window

Accepts both export formats (JSONL span records and Chrome trace_event
documents) and auto-detects which one it was given.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.cli_common import (
    EXIT_OK,
    EXIT_USAGE,
    common_parent,
    output_stream,
    overlaps_window,
)
from repro.trace.export import load_trace
from repro.trace.summary import (
    category_totals,
    format_breakdown,
    op_breakdown,
    per_app_requests,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=("Summarize a repro.trace export (JSONL or Chrome "
                     "trace_event) into a Fig. 1-style latency-breakdown "
                     "table."),
        parents=[common_parent(formats=("text", "json"), out=True,
                               window=True)],
    )
    parser.add_argument("trace", type=Path,
                        help="trace file written by Tracer export "
                             "(JSONL or Chrome trace_event JSON)")
    parser.add_argument("--ops", action="store_true",
                        help="print only the per-op table")
    return parser


def main(argv: Optional[list] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with output_stream(args.out, out) as out:
            return _run(args, out)
    except OSError as exc:
        if args.out is None:
            raise
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return EXIT_USAGE


def _run(args, out) -> int:
    if not args.trace.exists():
        print(f"error: no such trace file: {args.trace}", file=out)
        return EXIT_USAGE
    try:
        spans = load_trace(args.trace)
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"error: {args.trace} is not a repro trace export: {exc}",
              file=out)
        return EXIT_USAGE

    if args.since is not None or args.until is not None:
        spans = [span for span in spans
                 if overlaps_window(span.get("start_ms", 0.0),
                                    span.get("end_ms", 0.0),
                                    args.since, args.until)]

    if args.format == "json":
        payload = {
            "spans": len(spans),
            "per_app": per_app_requests(spans),
            "ops": {
                f"{scheme}:{name}": stats
                for (scheme, name), stats in sorted(op_breakdown(spans).items())
            },
            "categories": category_totals(spans),
        }
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
        return EXIT_OK

    if args.ops:
        ops = op_breakdown(spans)
        for (scheme, name), stats in sorted(ops.items()):
            print(f"{scheme:>12}  {name:<8} n={stats['count']:<6} "
                  f"total={stats['total_ms']:.2f}ms "
                  f"mean={stats['mean_ms']:.3f}ms", file=out)
        return EXIT_OK

    print(format_breakdown(spans, title=f"trace: {args.trace}"),
          end="", file=out)
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
