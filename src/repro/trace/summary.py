"""Turn a span soup back into a Fig. 1-style latency breakdown.

Works on the plain span dicts produced by :mod:`repro.trace.export`
(either format) or ``Tracer.to_dicts()``.  Two views are computed:

* **Per-app request table** — for traces that contain ``request`` root
  spans (FaaS platform runs): requests, mean response, storage and
  compute milliseconds attributed from ``op``/``compute`` descendant
  spans, and the storage share of the breakdown — the same columns as
  ``fig01_breakdown``'s counter-based table, which makes the two
  directly comparable.
* **Category totals** — time summed per span category (agent, rpc,
  invalidation, storage, ...) across the whole trace; useful for raw
  operation traces that have no surrounding requests.
"""

from __future__ import annotations

from typing import Optional


def _mean(total: float, count: int) -> float:
    return total / count if count else 0.0


def per_app_requests(spans) -> dict:
    """app -> aggregate request stats derived purely from the trace.

    ``request`` spans are roots, so every span in the same ``trace_id``
    belongs to that request; storage time is the sum of ``op`` spans
    (the uniform StorageAPI instrumentation) and compute time the sum of
    ``compute`` spans.
    """
    requests = {}     # trace_id -> (app, duration)
    storage = {}      # trace_id -> ms
    compute = {}      # trace_id -> ms
    for span in spans:
        category = span.get("category")
        if category == "request":
            app = (span.get("attrs") or {}).get("app", "?")
            requests[span["trace_id"]] = (app, span["duration_ms"])
        elif category == "op":
            storage[span["trace_id"]] = (
                storage.get(span["trace_id"], 0.0) + span["duration_ms"])
        elif category == "compute":
            compute[span["trace_id"]] = (
                compute.get(span["trace_id"], 0.0) + span["duration_ms"])

    table: dict = {}
    for trace_id, (app, duration_ms) in requests.items():
        row = table.setdefault(app, {
            "requests": 0, "response_ms": 0.0,
            "storage_ms": 0.0, "compute_ms": 0.0,
        })
        row["requests"] += 1
        row["response_ms"] += duration_ms
        row["storage_ms"] += storage.get(trace_id, 0.0)
        row["compute_ms"] += compute.get(trace_id, 0.0)
    for row in table.values():
        count = row["requests"]
        row["response_ms"] = _mean(row["response_ms"], count)
        row["storage_ms"] = _mean(row["storage_ms"], count)
        row["compute_ms"] = _mean(row["compute_ms"], count)
        busy = row["storage_ms"] + row["compute_ms"]
        row["storage_pct"] = 100.0 * row["storage_ms"] / busy if busy else 0.0
    return table


def category_totals(spans) -> dict:
    """category -> {"count", "total_ms", "mean_ms"} over all spans."""
    totals: dict = {}
    for span in spans:
        row = totals.setdefault(span.get("category", "span"),
                                {"count": 0, "total_ms": 0.0})
        row["count"] += 1
        row["total_ms"] += span["duration_ms"]
    for row in totals.values():
        row["mean_ms"] = _mean(row["total_ms"], row["count"])
    return totals


def op_breakdown(spans) -> dict:
    """(scheme, op name) -> count / mean duration for ``op`` spans."""
    ops: dict = {}
    for span in spans:
        if span.get("category") != "op":
            continue
        scheme = (span.get("attrs") or {}).get("scheme", "?")
        row = ops.setdefault((scheme, span.get("name", "?")),
                             {"count": 0, "total_ms": 0.0})
        row["count"] += 1
        row["total_ms"] += span["duration_ms"]
    for row in ops.values():
        row["mean_ms"] = _mean(row["total_ms"], row["count"])
    return ops


def _render_table(title: str, columns: list, rows: list) -> list:
    widths = {col: len(col) for col in columns}
    rendered = []
    for row in rows:
        cells = {}
        for col in columns:
            value = row.get(col, "")
            text = f"{value:.2f}" if isinstance(value, float) else str(value)
            cells[col] = text
            widths[col] = max(widths[col], len(text))
        rendered.append(cells)
    rule = "+" + "+".join("-" * (widths[c] + 2) for c in columns) + "+"
    out = [title, rule,
           "|" + "|".join(f" {c.ljust(widths[c])} " for c in columns) + "|",
           rule]
    for cells in rendered:
        out.append("|" + "|".join(
            f" {cells[c].ljust(widths[c])} " for c in columns) + "|")
    out.append(rule)
    return out


def format_breakdown(spans, title: Optional[str] = None) -> str:
    """Human-readable Fig. 1-style summary of a span list."""
    lines = []
    if title:
        lines.append(title)
    total_spans = len(list(spans))
    lines.append(f"{total_spans} completed span(s)")
    lines.append("")

    apps = per_app_requests(spans)
    if apps:
        rows = [
            {"app": app, **stats} for app, stats in sorted(apps.items())
        ]
        lines.extend(_render_table(
            "Per-app latency breakdown (means per request, trace-derived)",
            ["app", "requests", "response_ms", "storage_ms", "compute_ms",
             "storage_pct"],
            rows))
        lines.append("")

    ops = op_breakdown(spans)
    if ops:
        rows = [
            {"scheme": scheme, "op": name, **stats}
            for (scheme, name), stats in sorted(ops.items())
        ]
        lines.extend(_render_table(
            "Storage operations (category 'op')",
            ["scheme", "op", "count", "total_ms", "mean_ms"], rows))
        lines.append("")

    totals = category_totals(spans)
    if totals:
        rows = [
            {"category": category, **stats}
            for category, stats in sorted(totals.items())
        ]
        lines.extend(_render_table(
            "Time by span category",
            ["category", "count", "total_ms", "mean_ms"], rows))
    return "\n".join(lines).rstrip() + "\n"
