"""Telemetry rules (MET*).

The metrics layer (:mod:`repro.telemetry`) promises byte-identical
exports across runs and ``PYTHONHASHSEED`` values.  Two source-level
disciplines keep that promise:

- **Explicit label sets.**  ``registry.counter/gauge/histogram`` must
  state ``labelnames=`` at the call site.  The registry rejects
  conflicting label sets at runtime, but only when both sites actually
  execute; the static check catches the unlabeled-instrument collision
  (two layers registering the same metric name with different implied
  label sets) before any simulation runs.
- **Order-safe sampler callbacks.**  Callbacks handed to
  ``set_callback`` run at every sampling instant and their return values
  land verbatim in exported timelines, so a callback that iterates a
  bare ``set`` (or materializes one with ``list``/``tuple``) feeds hash
  order straight into the byte-determinism contract.  Order-insensitive
  reductions (``sum``/``min``/``max``/``len``/...) stay allowed, same as
  DET02.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.engine import ModuleInfo, Rule, register
from repro.analysis.rules.determinism import UnorderedIterationRule
from repro.analysis.setness import (
    ModuleSetFacts,
    is_setish,
    local_set_names,
)

#: Instrument-constructing methods of MetricsRegistry.
_INSTRUMENT_METHODS = frozenset({"counter", "gauge", "histogram"})

#: Receiver names that identify a metrics registry at a call site.
_REGISTRY_NAMES = frozenset({"metrics", "registry"})

#: Wrappers that preserve their argument's (hash) order.
_ORDER_PRESERVING = frozenset({"list", "tuple", "iter", "reversed",
                               "enumerate"})

_ORDER_INSENSITIVE = UnorderedIterationRule.ORDER_INSENSITIVE


def _is_registry_receiver(node: ast.AST) -> bool:
    """Whether an attribute-call receiver looks like a MetricsRegistry."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    return (name in _REGISTRY_NAMES
            or name.endswith("_metrics") or name.endswith("_registry"))


@register
class TelemetryDisciplineRule(Rule):
    """MET01: explicit label sets; hash-order-free sampler callbacks."""

    id = "MET01"
    name = "telemetry-discipline"
    description = (
        "registry.counter/gauge/histogram calls must pass an explicit "
        "labelnames= (empty tuple for unlabeled instruments), and "
        "callbacks passed to set_callback must not iterate or "
        "materialize bare sets — sampled values are exported "
        "byte-for-byte, so hash order would leak into timelines"
    )

    def check_module(self, module: ModuleInfo):
        facts = ModuleSetFacts(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if (func.attr in _INSTRUMENT_METHODS
                    and _is_registry_receiver(func.value)):
                yield from self._check_instrument_call(module, node, func)
            elif func.attr == "set_callback" and node.args:
                yield from self._check_callback(module, node.args[0], facts)

    # -- (a) explicit label sets -----------------------------------------
    def _check_instrument_call(self, module: ModuleInfo, node: ast.Call,
                               func: ast.Attribute):
        if any(kw.arg == "labelnames" for kw in node.keywords):
            return
        yield self.finding(
            module, node,
            f"{ast.unparse(func.value)}.{func.attr}(...) without an "
            "explicit labelnames=: state the label set at the call site "
            "(labelnames=() for unlabeled instruments) so same-named "
            "instruments from different layers cannot silently collide")

    # -- (b) order-safe callbacks ----------------------------------------
    def _check_callback(self, module: ModuleInfo, callback: ast.AST,
                        facts: ModuleSetFacts):
        body = self._callback_body(module, callback)
        if body is None:
            return
        local_names = (local_set_names(body, facts)
                       if isinstance(body, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))
                       else set())
        nodes = (ast.walk(body.body) if isinstance(body, ast.Lambda)
                 else ast.walk(body))
        for node in nodes:
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_setish(node.iter, facts, local_names):
                    yield self._order_finding(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.DictComp,
                                   ast.GeneratorExp)):
                if self._consumed_order_insensitively(module, node):
                    continue
                for generator in node.generators:
                    if is_setish(generator.iter, facts, local_names):
                        yield self._order_finding(module, generator.iter)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_PRESERVING
                    and node.args
                    and is_setish(node.args[0], facts, local_names)):
                yield self._order_finding(module, node)

    def _callback_body(self, module: ModuleInfo,
                       callback: ast.AST) -> Optional[ast.AST]:
        """The AST to scan: a lambda, or the local def a name points at."""
        if isinstance(callback, ast.Lambda):
            return callback
        if isinstance(callback, ast.Name):
            enclosing = module.enclosing_function(callback)
            scopes = [enclosing] if enclosing is not None else []
            scopes.append(module.tree)
            for scope in scopes:
                for node in ast.walk(scope):
                    if (isinstance(node, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                            and node.name == callback.id):
                        return node
        return None

    def _consumed_order_insensitively(self, module: ModuleInfo,
                                      node: ast.AST) -> bool:
        parent = module.parent(node)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_INSENSITIVE)

    def _order_finding(self, module: ModuleInfo, node: ast.AST):
        return self.finding(
            module, node,
            f"sampler callback walks set expression "
            f"{ast.unparse(node)!r}: its hash order varies with "
            "PYTHONHASHSEED and the sampled value is exported verbatim; "
            "reduce order-insensitively (sum/min/max/len) or sort first")
