"""Flight-recorder rules (OBS*).

The protocol event log (:mod:`repro.obs`) promises two things its call
sites can silently break:

- **Interned event types.**  Every ``recorder.emit(...)`` names its
  event with one of the interned constants from
  :mod:`repro.obs.events`.  A string literal at the call site may
  typo-fork the taxonomy ("cache.instal") and defeats identity-based
  dispatch in post-mortem tooling; a formatted string additionally
  allocates per emission.
- **Zero-cost Null sink.**  Emission sites gate on ``recorder.active``
  so a run without a recorder never evaluates the event arguments.  An
  *unguarded* emit whose arguments do real work (calls, f-strings,
  arithmetic, comprehensions) pays that work on every run — including
  the benchmark runs whose wall times gate CI.
- **Byte-deterministic dumps.**  Event attrs are exported verbatim
  (JSONL, byte-compared across ``PYTHONHASHSEED`` values), so an attr
  that materializes a bare set in iteration order leaks hash order into
  the dump — same contract as MET01's sampler callbacks.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleInfo, Rule, register
from repro.analysis.setness import ModuleSetFacts, is_setish

#: Receiver names that identify a flight recorder at a call site.
_RECORDER_NAMES = frozenset({"obs", "recorder"})

#: Wrappers that preserve their argument's (hash) order.
_ORDER_PRESERVING = frozenset({"list", "tuple", "iter", "reversed",
                               "enumerate"})

#: Argument shapes that do real work when evaluated.
_EXPENSIVE = (ast.Call, ast.JoinedStr, ast.BinOp, ast.ListComp,
              ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _is_recorder_receiver(node: ast.AST) -> bool:
    """Whether an attribute-call receiver looks like a FlightRecorder."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    return (name in _RECORDER_NAMES
            or name.endswith("_obs") or name.endswith("_recorder"))


@register
class ObsDisciplineRule(Rule):
    """OBS01: interned event types; cheap, order-safe emission sites."""

    id = "OBS01"
    name = "obs-discipline"
    description = (
        "recorder.emit(...) must name its event with an interned "
        "constant from repro.obs.events (never a string literal or "
        "formatted string), must not pass attrs that materialize bare "
        "sets in hash order (dumps are byte-compared across "
        "PYTHONHASHSEED), and emits with computed arguments must sit "
        "under an `if <recorder>.active:` guard so the Null sink stays "
        "zero-cost"
    )

    def check_module(self, module: ModuleInfo):
        facts = ModuleSetFacts(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "emit"
                    and _is_recorder_receiver(func.value)):
                continue
            yield from self._check_event_type(module, node)
            yield from self._check_set_order(module, node, facts)
            yield from self._check_guard(module, node)

    # -- (a) interned event types ----------------------------------------
    def _check_event_type(self, module: ModuleInfo, node: ast.Call):
        if not node.args:
            return
        etype = node.args[0]
        if isinstance(etype, (ast.Name, ast.Attribute)):
            return
        yield self.finding(
            module, etype,
            f"emit() event type {ast.unparse(etype)!r} is not an "
            "interned constant: name events with the constants from "
            "repro.obs.events so the taxonomy cannot typo-fork and "
            "emission stays allocation-free")

    # -- (b) hash-order-free attrs ---------------------------------------
    def _check_set_order(self, module: ModuleInfo, node: ast.Call,
                         facts: ModuleSetFacts):
        values = list(node.args[1:]) + [kw.value for kw in node.keywords]
        for value in values:
            for sub in ast.walk(value):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id in _ORDER_PRESERVING
                        and sub.args
                        and is_setish(sub.args[0], facts, set())):
                    yield self.finding(
                        module, sub,
                        f"emit() attr materializes set expression "
                        f"{ast.unparse(sub)!r} in hash order: recorded "
                        "attrs are dumped byte-for-byte across "
                        "PYTHONHASHSEED values; sort the set or record "
                        "an order-insensitive reduction (len/sum)")

    # -- (c) Null-sink gating --------------------------------------------
    def _check_guard(self, module: ModuleInfo, node: ast.Call):
        values = list(node.args) + [kw.value for kw in node.keywords]
        if not any(isinstance(value, _EXPENSIVE) for value in values):
            return
        if self._under_active_guard(module, node):
            return
        yield self.finding(
            module, node,
            "emit() with computed arguments outside an `if "
            "<recorder>.active:` guard: the arguments are evaluated "
            "even under the Null sink, taxing every unrecorded run; "
            "hoist the emit under an active check")

    def _under_active_guard(self, module: ModuleInfo,
                            node: ast.AST) -> bool:
        current = module.parent(node)
        while current is not None:
            if isinstance(current, ast.If) and any(
                    isinstance(sub, ast.Attribute) and sub.attr == "active"
                    for sub in ast.walk(current.test)):
                return True
            current = module.parent(current)
        return False
