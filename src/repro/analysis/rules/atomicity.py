"""Yield-point atomicity rules (ATM*, INT01).

The simulator interleaves processes only at suspension points, so any
value read from shared state *before* a ``yield`` may be stale *after*
it — another process ran in between, and the kernel may additionally
throw :class:`~repro.sim.errors.Interrupt` right at the yield.  These
rules do a may-path dataflow over the per-function CFG
(:mod:`repro.analysis.flow`) with the interprocedural may-suspend
summary (:mod:`repro.analysis.summaries`) deciding which statements
actually suspend:

- **ATM01** (check-then-act): a local bound from shared state
  (``self.*`` attribute, ``self.cache.get(...)``-style getter,
  subscript) flows across a suspension point into a later guard or
  shared-state write.  Guards that *revalidate* — their test performs a
  fresh ``self.*`` read or ``self._method(...)`` call (the
  epoch/``_still_home`` pattern) — are not flagged.
- **ATM02** (torn write): the same shared object is mutated twice with
  a suspension point on a path between the mutations; interleaved
  processes observe the half-applied update.
- **INT01** (interrupt-unsafe): shared state is mutated before a
  reachable suspension point that is not covered by a ``try`` whose
  ``finally``/``except`` mentions the mutated object — an Interrupt
  thrown at the yield leaves the mutation applied with no compensation.

Known limitations (documented in DESIGN.md §11): mutation through
helper methods (``self._install(...)``) is not tracked — only direct
field/subscript writes and well-known mutator-method calls; augmented
assignments (``self.hits += 1``) are treated as counters and exempt
from ATM02/INT01; a rebound local is assumed fresh even when rebound
from another stale value of the same origin.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    ProjectRule,
    is_generator_function,
    is_sim_process,
    register,
)
from repro.analysis.flow import (
    CFG,
    build_cfg,
    enclosing_trys,
    find_path,
    stmt_exprs,
)
from repro.analysis.summaries import ProjectSummaries

#: Receiver methods that read an entry out of shared state.
GETTER_NAMES = frozenset({
    "get", "peek", "lookup", "snapshot", "entry_for", "find",
})

#: Receiver methods that mutate their receiver in place.
MUTATOR_NAMES = frozenset({
    "add", "append", "extend", "insert", "remove", "discard", "pop",
    "popitem", "clear", "update", "put", "set", "setdefault",
    "set_exclusive", "set_shared", "install", "push", "store", "delete",
})

#: How deep derived-taint chains are chased (x -> d1 -> d2 -> use).
_MAX_TAINT_DEPTH = 3


# ---------------------------------------------------------------------------
# Expression classification
# ---------------------------------------------------------------------------
def _chain_root(expr: ast.AST) -> Optional[ast.Name]:
    """The Name at the base of an attribute/subscript chain, if any."""
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def _rooted_at_self(expr: ast.AST) -> bool:
    root = _chain_root(expr)
    return root is not None and root.id == "self"


def _ambient_kernel_read(expr: ast.Attribute) -> bool:
    """``self.sim.*`` attribute chains: ambient kernel context.

    ``self.sim.now`` / ``.tracer`` / ``.active_process`` are process-
    local views of the kernel, and reading them across yields is the
    *point* (elapsed-time measurement, deadline checks) — not a stale
    snapshot of protocol shared state.
    """
    parts: list[str] = []
    node: ast.AST = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    return (isinstance(node, ast.Name) and node.id == "self"
            and bool(parts) and parts[-1] == "sim")


def _shared_reads(expr: ast.AST) -> list[ast.AST]:
    """Shared-state reads performed by ``expr``.

    ``self.attr`` loads, ``self.<obj>.get(...)``-style getter calls and
    ``self.<obj>[k]`` subscripts.  Subtrees under yield/``yield from``
    are skipped — a value produced *through* a suspension is fresh by
    definition — and a pure attribute chain used as a call's function
    (``self.cache.get``) is method access, not a data read.

    Taint does not flow *through* opaque calls: the value returned by a
    non-getter call (``self.sim.spawn(...)``, ``tracer.span(...)``) is
    the callee's product, not a raw snapshot, even when a ``self.attr``
    appears among the arguments (usually a key or config label).
    Getter calls and shared subscripts nested in arguments still count.
    """
    reads: list[ast.AST] = []

    def walk(node: ast.AST, opaque: bool = False) -> None:
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Lambda)):
            return
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in GETTER_NAMES
                    and _rooted_at_self(func.value)):
                reads.append(node)
            elif not (isinstance(func, ast.Attribute)
                      and _rooted_at_self(func)):
                walk(func, True)
            for arg in node.args:
                walk(arg, True)
            for keyword in node.keywords:
                walk(keyword.value, True)
            return
        if isinstance(node, ast.Attribute) and _rooted_at_self(node):
            if not opaque and not _ambient_kernel_read(node):
                reads.append(node)
            return
        if isinstance(node, ast.Subscript) and _rooted_at_self(node.value):
            reads.append(node)
            walk(node.slice, opaque)
            return
        for child in ast.iter_child_nodes(node):
            walk(child, opaque)

    walk(expr)
    return reads


def _loaded_names(expr: ast.AST, *, through_calls: bool = True) -> set[str]:
    """Names loaded by ``expr``, outside yield subtrees.

    With ``through_calls=False``, call subtrees are skipped entirely —
    the derived-taint pass uses this so a call *result* is not treated
    as a snapshot just because a stale name was among the arguments.
    In that mode ``IfExp`` tests are skipped too: the test is evaluated
    at binding time and does not enter the bound *value*.
    """
    names: set[str] = set()

    def walk(node: ast.AST) -> None:
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Lambda)):
            return
        if not through_calls and isinstance(node, ast.Call):
            return
        if not through_calls and isinstance(node, ast.IfExp):
            walk(node.body)
            walk(node.orelse)
            return
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            names.add(node.id)
        for child in ast.iter_child_nodes(node):
            walk(child)

    walk(expr)
    return names


def _has_fresh_self_read(test: ast.expr) -> bool:
    """Whether a guard test revalidates against live shared state."""
    return any(isinstance(node, ast.Attribute) and _rooted_at_self(node)
               for node in ast.walk(test))


def _flatten_targets(target: ast.expr) -> Iterable[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten_targets(target.value)
    else:
        yield target


def _bound_names(stmt: ast.stmt) -> set[str]:
    """Local names (re)bound by executing ``stmt`` — the kill set."""
    names: set[str] = set()

    def add(target: ast.expr) -> None:
        for leaf in _flatten_targets(target):
            if isinstance(leaf, ast.Name):
                names.add(leaf.id)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            add(target)
    elif isinstance(stmt, ast.AnnAssign):
        add(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        add(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                add(item.optional_vars)
    for expr in stmt_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.NamedExpr) and isinstance(
                    node.target, ast.Name):
                names.add(node.target.id)
    return names


# ---------------------------------------------------------------------------
# Per-function model
# ---------------------------------------------------------------------------
class _TaintBinding:
    """One assignment whose value (transitively) snapshots shared state."""

    __slots__ = ("name", "stmt", "source", "parents")

    def __init__(self, name: str, stmt: ast.stmt,
                 source: Optional[ast.AST], parents: tuple[str, ...]):
        self.name = name
        self.stmt = stmt
        self.source = source      # the shared-read expression, if direct
        self.parents = parents    # tainted names the value derives from


class _Mutation:
    """One direct shared-state write."""

    __slots__ = ("stmt", "root_text", "base_name", "token", "value_names")

    def __init__(self, stmt: ast.stmt, root_text: str, base_name: str,
                 token: str, value_names: set[str]):
        self.stmt = stmt
        self.root_text = root_text    # the object being mutated, as text
        self.base_name = base_name    # root identifier ("self" or a local)
        self.token = token            # identifier a cleanup would mention
        self.value_names = value_names


class _FunctionModel:
    """CFG + taint + mutations + suspensions for one sim process."""

    def __init__(self, func: ast.AST, summaries: ProjectSummaries,
                 mutable_params: set[str]):
        self.func = func
        self.cfg: CFG = build_cfg(func)
        self.stmts = list(self.cfg.statements())
        # Keyed by statement node (identity hash), no id() involved.
        self._bound = {s: _bound_names(s) for s in self.stmts}
        self.suspensions = {
            s: node for s in self.stmts
            if (node := summaries.suspension_in(s, func)) is not None
        }
        self.taint: dict[str, list[_TaintBinding]] = {}
        self._collect_taint()
        self.mutable_params = mutable_params
        self.mutations = [m for s in self.stmts
                          for m in self._classify_mutations(s)]

    # -- taint ------------------------------------------------------------
    def _collect_taint(self) -> None:
        assigns = [s for s in self.stmts
                   if isinstance(s, (ast.Assign, ast.AnnAssign))
                   and getattr(s, "value", None) is not None]
        for stmt in assigns:
            reads = _shared_reads(stmt.value)
            if not reads:
                continue
            for name in sorted(_bound_names(stmt)):
                self.taint.setdefault(name, []).append(
                    _TaintBinding(name, stmt, reads[0], ()))
        # Derived taint, to a fixpoint over the tainted-name set.
        recorded: set[tuple[ast.stmt, str]] = set()
        changed = True
        while changed:
            changed = False
            for stmt in assigns:
                loaded = _loaded_names(stmt.value, through_calls=False)
                parents = tuple(sorted(loaded & self.taint.keys()))
                if not parents:
                    continue
                for name in sorted(_bound_names(stmt)):
                    key = (stmt, name)
                    if key in recorded or any(
                            b.stmt is stmt for b in self.taint.get(name, [])):
                        continue
                    recorded.add(key)
                    self.taint.setdefault(name, []).append(
                        _TaintBinding(name, stmt, None, parents))
                    changed = True

    # -- mutations --------------------------------------------------------
    def _is_shared_root(self, base: Optional[ast.Name]) -> bool:
        return base is not None and (
            base.id == "self" or base.id in self.taint
            or base.id in self.mutable_params)

    def _classify_mutations(self, stmt: ast.stmt) -> Iterable[_Mutation]:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            value = getattr(stmt, "value", None)
            value_names = _loaded_names(value) if value is not None else set()
            for target in targets:
                for leaf in _flatten_targets(target):
                    if isinstance(leaf, (ast.Attribute, ast.Subscript)):
                        base = _chain_root(leaf)
                        if not self._is_shared_root(base):
                            continue
                        root = leaf.value
                        token = (leaf.attr if isinstance(leaf, ast.Attribute)
                                 else None)
                        root_text = ast.unparse(root)
                        yield _Mutation(
                            stmt, root_text, base.id,
                            token or root_text.split(".")[-1], value_names)
        elif (isinstance(stmt, ast.Expr)
              and isinstance(stmt.value, ast.Call)
              and isinstance(stmt.value.func, ast.Attribute)
              and stmt.value.func.attr in MUTATOR_NAMES):
            call = stmt.value
            receiver = call.func.value
            base = _chain_root(receiver)
            if self._is_shared_root(base):
                value_names: set[str] = set()
                for arg in call.args:
                    value_names |= _loaded_names(arg)
                for keyword in call.keywords:
                    value_names |= _loaded_names(keyword.value)
                root_text = ast.unparse(receiver)
                yield _Mutation(stmt, root_text, base.id,
                                root_text.split(".")[-1], value_names)
        # AugAssign deliberately excluded: counters/accumulators.

    # -- queries ----------------------------------------------------------
    def suspends(self, stmt: ast.stmt) -> bool:
        return stmt in self.suspensions

    def rebinds(self, name: str):
        return lambda stmt: name in self._bound.get(stmt, ())

    def stale_witness(
        self, binding: _TaintBinding, use: ast.stmt,
        depth: int = _MAX_TAINT_DEPTH,
        seen: Optional[set] = None,
    ) -> Optional[tuple[ast.stmt, _TaintBinding]]:
        """A suspension on a kill-free path from snapshot to use, if any.

        For derived bindings the suspension may instead sit between the
        *origin* snapshot and the deriving assignment; the chain is
        chased up to ``_MAX_TAINT_DEPTH`` parents.
        """
        if binding.stmt is use:
            return None
        seen = seen if seen is not None else set()
        if binding in seen:
            return None
        seen.add(binding)
        kill = self.rebinds(binding.name)
        witness = find_path(self.cfg, binding.stmt, use,
                            between=self.suspends, kill=kill)
        if witness is not None:
            return witness, binding
        if depth > 0 and binding.parents:
            if find_path(self.cfg, binding.stmt, use, kill=kill) is None:
                return None
            for parent_name in binding.parents:
                for parent in self.taint.get(parent_name, []):
                    result = self.stale_witness(
                        parent, binding.stmt, depth - 1, seen)
                    if result is not None:
                        return result
        return None

    def origin_of(self, binding: _TaintBinding) -> _TaintBinding:
        while binding.source is None and binding.parents:
            parents = self.taint.get(binding.parents[0], [])
            if not parents:
                break
            binding = parents[0]
        return binding


# ---------------------------------------------------------------------------
# Project-level driver (shared by the three rule classes)
# ---------------------------------------------------------------------------
def _make_finding(rule: str, module: ModuleInfo, node: ast.AST,
                  message: str) -> Finding:
    return Finding(
        rule=rule, path=module.display_path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message, symbol=module.qualname(node))


def _word_mentioned(token: str, text: str) -> bool:
    return re.search(rf"\b{re.escape(token)}\b", text) is not None


def _cleanup_covers(func: ast.AST, suspension: ast.stmt,
                    mutation: _Mutation) -> bool:
    """Whether an Interrupt at ``suspension`` runs cleanup naming the
    mutated object (a try body with a finally/handler mentioning it)."""
    for try_stmt, region in enclosing_trys(func.body, suspension):
        if region != "body":
            continue
        cleanup = list(try_stmt.finalbody)
        for handler in try_stmt.handlers:
            cleanup.extend(handler.body)
        if not cleanup:
            continue
        text = "\n".join(ast.unparse(s) for s in cleanup)
        if (_word_mentioned(mutation.token, text)
                or _word_mentioned(mutation.base_name, text)):
            return True
    return False


def _analyze_function(module: ModuleInfo, func: ast.AST,
                      summaries: ProjectSummaries) -> dict[str, list]:
    params = {a.arg for a in (
        func.args.posonlyargs + func.args.args + func.args.kwonlyargs)}
    params.discard("self")
    model = _FunctionModel(func, summaries, params)
    out: dict[str, list[Finding]] = {"ATM01": [], "ATM02": [], "INT01": []}

    # -- ATM01: stale snapshot into a guard -------------------------------
    flagged: set[ast.stmt] = set()
    for stmt in model.stmts:
        if not isinstance(stmt, (ast.If, ast.While, ast.Assert)):
            continue
        if _has_fresh_self_read(stmt.test):
            continue  # revalidating guard: reads live state
        for name in sorted(_loaded_names(stmt.test) & model.taint.keys()):
            if stmt in flagged:
                break
            hit = next(filter(None, (model.stale_witness(b, stmt)
                                     for b in model.taint[name])), None)
            if hit is None:
                continue
            witness, binding = hit
            origin = model.origin_of(binding)
            flagged.add(stmt)
            out["ATM01"].append(_make_finding(
                "ATM01", module, stmt,
                f"check-then-act across a suspension point: {name!r} "
                f"snapshots shared state at line {origin.stmt.lineno} but "
                f"guards this branch after the process can suspend at line "
                f"{witness.lineno}; other processes run in between — "
                "re-read after the yield or revalidate with a fresh self.* "
                "check"))

    # -- ATM01: stale snapshot written back to shared state ---------------
    # Only values flowing *into* shared state count as write-uses here;
    # mutating *through* a stale handle (entry.state = ...) is the torn-
    # write/interrupt territory of ATM02/INT01, not a stale write-back.
    for mutation in model.mutations:
        if mutation.stmt in flagged:
            continue
        used = mutation.value_names - {"self"}
        for name in sorted(used & model.taint.keys()):
            hit = next(filter(None, (model.stale_witness(b, mutation.stmt)
                                     for b in model.taint[name])), None)
            if hit is None:
                continue
            witness, binding = hit
            origin = model.origin_of(binding)
            flagged.add(mutation.stmt)
            out["ATM01"].append(_make_finding(
                "ATM01", module, mutation.stmt,
                f"stale write-back: {name!r} snapshots shared state at "
                f"line {origin.stmt.lineno}, the process can suspend at "
                f"line {witness.lineno}, and the possibly-stale value is "
                f"then written into {mutation.root_text!r}; re-read or "
                "version-check before installing"))
            break

    # -- ATM02: torn multi-field update -----------------------------------
    # Mutations inside except/finally suites are compensation (or normal
    # lifecycle teardown), not halves of a torn update.
    in_cleanup = {
        m.stmt for m in model.mutations
        if any(region in ("handler", "finally")
               for _try, region in enclosing_trys(func.body, m.stmt))}
    torn: set[ast.stmt] = set()
    for second in model.mutations:
        if second.stmt in torn or second.stmt in in_cleanup:
            continue
        for first in model.mutations:
            if first.stmt is second.stmt or first.stmt in in_cleanup:
                continue
            if first.root_text != second.root_text:
                continue
            kill = (model.rebinds(first.base_name)
                    if first.base_name != "self" else None)
            witness = find_path(model.cfg, first.stmt, second.stmt,
                                between=model.suspends, kill=kill)
            if witness is None:
                continue
            torn.add(second.stmt)
            out["ATM02"].append(_make_finding(
                "ATM02", module, second.stmt,
                f"torn write to {first.root_text!r}: mutated at line "
                f"{first.stmt.lineno} and again here, with a suspension "
                f"point at line {witness.lineno} between them; interleaved "
                "processes observe the half-applied update — finish the "
                "update before yielding, or revalidate and rewrite "
                "atomically after"))
            break

    # -- INT01: mutation unprotected against Interrupt --------------------
    interrupted: set[ast.stmt] = set()
    for mutation in model.mutations:
        if mutation.stmt in interrupted or mutation.stmt in in_cleanup:
            continue
        # A later mutation of the same object closes this mutation's
        # exposure window (it is checked on its own); rebinding the base
        # local changes which object is meant.
        peers = {m.stmt for m in model.mutations
                 if m.root_text == mutation.root_text
                 and m.stmt is not mutation.stmt}
        rebind = (model.rebinds(mutation.base_name)
                  if mutation.base_name != "self" else None)

        def kill(stmt, _peers=peers, _rebind=rebind):
            return stmt in _peers or (_rebind is not None
                                      and _rebind(stmt))

        for suspension in model.suspensions:
            if _cleanup_covers(func, suspension, mutation):
                continue
            if find_path(model.cfg, mutation.stmt, suspension,
                         kill=kill) is None:
                continue
            interrupted.add(mutation.stmt)
            out["INT01"].append(_make_finding(
                "INT01", module, mutation.stmt,
                f"interrupt-unsafe mutation: {mutation.root_text!r} is "
                f"mutated here and the process can suspend at line "
                f"{suspension.lineno} with no try/finally or except "
                f"cleanup naming it on the Interrupt path; an Interrupt "
                "at the yield leaves the mutation applied — mutate after "
                "the suspension or add compensating cleanup"))
            break

    return out


def _compute(modules: list[ModuleInfo]) -> dict[str, list[Finding]]:
    summaries = ProjectSummaries(modules)
    merged: dict[str, list[Finding]] = {"ATM01": [], "ATM02": [], "INT01": []}
    for module in modules:
        for func in module.functions():
            if not is_generator_function(func) or not is_sim_process(func):
                continue
            per_func = _analyze_function(module, func, summaries)
            for rule_id, findings in per_func.items():
                merged[rule_id].extend(findings)
    return merged


def _project_findings(modules: list[ModuleInfo]) -> dict[str, list[Finding]]:
    """One shared analysis pass per analyzer run, cached on the modules.

    The cache is attached to the first ModuleInfo (with the module
    objects themselves as validity key), so it dies with the run's
    modules and can never leak across analyzer runs.
    """
    if not modules:
        return {}
    anchor = modules[0]
    key = tuple(modules)
    cached = getattr(anchor, "_atomicity_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    result = _compute(modules)
    anchor._atomicity_cache = (key, result)
    return result


# ---------------------------------------------------------------------------
# Rule classes
# ---------------------------------------------------------------------------
class _AtomicityRule(ProjectRule):
    def check_project(self, modules: list[ModuleInfo]) -> Iterable[Finding]:
        return _project_findings(modules).get(self.id, [])


@register
class StaleSnapshotRule(_AtomicityRule):
    """ATM01: shared-state snapshot used in a guard/write after a yield."""

    id = "ATM01"
    name = "stale-snapshot"
    description = (
        "a value read from shared state before a suspension point must "
        "not decide a branch or be written back after it without "
        "revalidation; the simulator interleaves other processes at "
        "every yield (check-then-act race)"
    )


@register
class TornWriteRule(_AtomicityRule):
    """ATM02: multi-field shared update with a suspension in the middle."""

    id = "ATM02"
    name = "torn-write"
    description = (
        "a multi-step update of one shared object must not suspend "
        "between its writes; interleaved processes would observe the "
        "half-applied state"
    )


@register
class InterruptUnsafeMutationRule(_AtomicityRule):
    """INT01: shared mutation before a yield with no Interrupt cleanup."""

    id = "INT01"
    name = "interrupt-unsafe-mutation"
    description = (
        "shared state mutated before a suspension point needs a "
        "try/finally (or except) compensating on the Interrupt path; "
        "the kernel can kill the process at any yield"
    )
