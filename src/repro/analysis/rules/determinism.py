"""Determinism rules (DET*): keep every simulator run bit-for-bit equal.

The simulator promises (``repro.sim.Simulator``) that two runs with the
same seed produce identical event sequences.  The only sanctioned
randomness is ``sim.rng.stream(name)``; the only sanctioned clock is
``sim.now``.  These rules ban the ambient alternatives and the subtler
killer: iterating a ``set`` (hash order — varies with ``PYTHONHASHSEED``)
into anything order-sensitive.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ModuleInfo, Rule, register
from repro.analysis.setness import (ModuleSetFacts, is_setish,
                                    local_set_bindings, set_names_at)

#: Modules whose import alone signals ambient nondeterminism in sim code.
BANNED_MODULES = {
    "time": "use sim.now / sim.timeout() for simulated time",
    "datetime": "wall-clock time varies across runs; use sim.now",
    "secrets": "OS entropy is nondeterministic; use sim.rng.stream()",
}

#: random.<fn> module-level calls draw from the shared, OS-seeded global
#: generator.  random.Random(seed) instances passed around are fine.
BANNED_RANDOM_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "seed", "getrandbits", "randbytes",
}

#: Other attribute calls that read ambient entropy or the wall clock.
BANNED_ATTR_CALLS = {
    ("os", "urandom"): "os.urandom() is OS entropy; use sim.rng.stream()",
    ("uuid", "uuid1"): "uuid1 embeds the wall clock and MAC address",
    ("uuid", "uuid4"): "uuid4 is random; derive ids from itertools.count",
}


@register
class BannedNondeterminismRule(Rule):
    """DET01: ambient randomness / wall-clock access."""

    id = "DET01"
    name = "banned-nondeterminism"
    description = (
        "bans time/datetime/secrets imports, module-level random.* calls, "
        "os.urandom and uuid1/uuid4 inside the simulated tree; use "
        "sim.now and sim.rng.stream() instead"
    )

    def check_module(self, module: ModuleInfo):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_MODULES:
                        yield self.finding(
                            module, node,
                            f"import of nondeterministic module "
                            f"{alias.name!r}: {BANNED_MODULES[root]}")
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in BANNED_MODULES:
                    yield self.finding(
                        module, node,
                        f"import from nondeterministic module "
                        f"{node.module!r}: {BANNED_MODULES[root]}")
                elif root == "random":
                    for alias in node.names:
                        if alias.name in BANNED_RANDOM_FUNCS:
                            yield self.finding(
                                module, node,
                                f"'from random import {alias.name}' uses the "
                                "global OS-seeded generator; use "
                                "sim.rng.stream()")
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_call(self, module: ModuleInfo, node: ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            pair = (func.value.id, func.attr)
            if pair in BANNED_ATTR_CALLS:
                yield self.finding(
                    module, node,
                    f"{pair[0]}.{pair[1]}(): {BANNED_ATTR_CALLS[pair]}")
            elif func.value.id == "random" and func.attr in BANNED_RANDOM_FUNCS:
                yield self.finding(
                    module, node,
                    f"random.{func.attr}() draws from the global OS-seeded "
                    "generator; use a seeded sim.rng.stream() substream")
            elif (func.value.id == "random" and func.attr == "Random"
                    and not node.args and not node.keywords):
                yield self.finding(
                    module, node,
                    "random.Random() without a seed falls back to OS "
                    "entropy; pass an explicit seed")


@register
class UnorderedIterationRule(Rule):
    """DET02: iterating a set feeds hash order into the simulation."""

    id = "DET02"
    name = "unordered-iteration"
    description = (
        "flags for-loops and comprehensions whose iterable is a set "
        "(iteration order depends on PYTHONHASHSEED); wrap the iterable "
        "in sorted() or use an insertion-ordered dict"
    )

    #: Calls whose result does not depend on the argument's order, so a
    #: comprehension directly inside them is harmless.
    ORDER_INSENSITIVE = frozenset({
        "sorted", "min", "max", "sum", "len", "any", "all", "set",
        "frozenset", "Counter",
    })

    def check_module(self, module: ModuleInfo):
        facts = ModuleSetFacts(module.tree)
        local_cache: dict = {}

        def names_for(node: ast.AST) -> set:
            # Position-aware: a name rebound via sorted() before this use
            # is a list here, even if it held a set earlier in the body.
            func = module.enclosing_function(node)
            if func is None:
                return set()
            if func not in local_cache:
                local_cache[func] = local_set_bindings(func, facts)
            return set_names_at(local_cache[func],
                                (node.lineno, node.col_offset))

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_setish(node.iter, facts, names_for(node)):
                    yield self._finding_for(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                if self._consumed_order_insensitively(module, node):
                    continue
                for generator in node.generators:
                    if is_setish(generator.iter, facts, names_for(node)):
                        yield self._finding_for(module, generator.iter)

    def _consumed_order_insensitively(self, module: ModuleInfo,
                                      node: ast.AST) -> bool:
        parent = module.parent(node)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in self.ORDER_INSENSITIVE)

    def _finding_for(self, module: ModuleInfo, iterable: ast.AST) -> Finding:
        return self.finding(
            module, iterable,
            f"iteration over set expression {ast.unparse(iterable)!r}: set "
            "order depends on PYTHONHASHSEED and varies across runs; wrap "
            "in sorted() or keep an insertion-ordered dict")


@register
class IdentityOrderingRule(Rule):
    """DET03: id() leaks address-space layout into program behavior."""

    id = "DET03"
    name = "identity-ordering"
    description = (
        "flags id(...) calls: CPython ids are memory addresses, which "
        "differ across runs, so any id-keyed ordering or set membership "
        "walk is nondeterministic; key by a stable attribute instead"
    )

    def check_module(self, module: ModuleInfo):
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "id"
                    and len(node.args) == 1):
                yield self.finding(
                    module, node,
                    "id() returns a memory address that varies across runs; "
                    "use an explicit identity list or a stable key")
