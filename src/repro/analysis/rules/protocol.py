"""Protocol-surface rules (PRO*).

The RPC layer (:mod:`repro.net.rpc`) is stringly-typed: method names are
literals at both the ``register_handler`` and the ``call``/``notify``
sites, and nothing ties the two together at import time.  A typo'd or
removed handler only surfaces as a 5-second simulated timeout deep inside
an experiment.  These rules close that gap statically, and enforce the
two RPC/locking disciplines every agent relies on:

- every called method is registered somewhere, every registered method is
  exercised, and registered handler references resolve (PRO01);
- every client-side ``call`` has an explicit timeout path — an explicit
  ``timeout=`` or an enclosing handler for ``RpcTimeout`` (PRO02);
- every ``Resource.acquire()`` is matched by a ``release()`` on all exit
  paths, exceptional ones included (PRO03).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis import cfg
from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    ProjectRule,
    Rule,
    register,
)

#: Exception names that constitute a timeout path when caught.
_TIMEOUT_HANDLERS = {"RpcTimeout", "RpcError", "Exception", "BaseException"}


def _string_arg(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _dict_literal_keys(func: ast.AST, name: str) -> list[tuple[str, ast.AST]]:
    """String keys (and value nodes) of ``name = {...}`` inside ``func``."""
    results = []
    for node in ast.walk(func):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
                and isinstance(node.value, ast.Dict)):
            for key, value in zip(node.value.keys, node.value.values):
                literal = _string_arg(key) if key is not None else None
                if literal is not None:
                    results.append((literal, value))
    return results


class _RpcSite:
    """One register_handler / call / notify occurrence."""

    def __init__(self, module: ModuleInfo, node: ast.AST, method: str,
                 handler_expr: Optional[ast.AST] = None):
        self.module = module
        self.node = node
        self.method = method
        self.handler_expr = handler_expr


def _loop_dict_name(func: ast.AST, var: str) -> Optional[str]:
    """Dict iterated as ``for var, ... in <dict>.items():`` inside ``func``."""
    for node in ast.walk(func):
        if not isinstance(node, ast.For):
            continue
        target = node.target
        if isinstance(target, ast.Tuple) and target.elts:
            target = target.elts[0]  # the key variable
        if not (isinstance(target, ast.Name) and target.id == var):
            continue
        it = node.iter
        if (isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute)
                and it.func.attr == "items"
                and isinstance(it.func.value, ast.Name)):
            return it.func.value.id
    return None


def _iter_rpc_sites(module: ModuleInfo) -> Iterator[tuple[str, _RpcSite]]:
    """Yield ("register"|"call"|"notify", site) for one module."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr == "register_handler" and len(node.args) >= 2:
            method = _string_arg(node.args[0])
            if method is not None:
                yield "register", _RpcSite(module, node, method, node.args[1])
            elif isinstance(node.args[0], ast.Name):
                # The agent idiom: handlers = {"read": self._handle_read,
                # ...}; for method, handler in handlers.items():
                # register_handler(method, handler) — resolve the dict the
                # loop iterates and take its literal keys.
                enclosing = module.enclosing_function(node)
                if enclosing is not None:
                    dict_name = _loop_dict_name(enclosing, node.args[0].id)
                    if dict_name is not None:
                        for literal, value in _dict_literal_keys(
                                enclosing, dict_name):
                            yield "register", _RpcSite(
                                module, node, literal, value)
        elif ((func.attr in ("call", "notify")
               or func.attr.startswith("_call")) and len(node.args) >= 2):
            # `_call_*` covers per-class wrappers that forward the method
            # name to endpoint.call() (e.g. ConcordAgent._call_catching).
            if not _looks_like_rpc(node, func):
                continue
            method = _string_arg(node.args[1])
            if method is not None:
                kind = "notify" if func.attr == "notify" else "call"
                yield kind, _RpcSite(module, node, method)


def _looks_like_rpc(node: ast.Call, func: ast.Attribute) -> bool:
    """Filter out unrelated ``.call``/``.notify`` methods."""
    if func.attr.startswith("_call"):
        return True
    receiver = ast.unparse(func.value)
    if "endpoint" in receiver or "client" in receiver:
        return True
    keywords = {kw.arg for kw in node.keywords}
    return bool(keywords & {"size_bytes", "timeout"})


@register
class RpcSurfaceRule(ProjectRule):
    """PRO01: called/registered RPC method names must match up."""

    id = "PRO01"
    name = "rpc-surface-match"
    description = (
        "every method name passed to endpoint.call()/notify() must be "
        "registered via register_handler() somewhere in the tree (and "
        "vice versa), and registered handler references must resolve"
    )

    def check_project(self, modules: list[ModuleInfo]):
        registered: dict[str, list[_RpcSite]] = {}
        invoked: dict[str, list[_RpcSite]] = {}
        for module in modules:
            for kind, site in _iter_rpc_sites(module):
                table = registered if kind == "register" else invoked
                table.setdefault(site.method, []).append(site)
        for method, sites in sorted(invoked.items()):
            if method not in registered:
                for site in sites:
                    yield self.finding(
                        site.module, site.node,
                        f"RPC method {method!r} is called but no "
                        "register_handler() in the analyzed tree provides "
                        "it; the call can only time out")
        for method, sites in sorted(registered.items()):
            if method not in invoked:
                for site in sites:
                    yield self.finding(
                        site.module, site.node,
                        f"RPC handler {method!r} is registered but never "
                        "called via endpoint.call()/notify() in the "
                        "analyzed tree; dead protocol surface",
                        severity="warning")
        for sites in registered.values():
            for site in sites:
                problem = self._unresolved_handler(site)
                if problem is not None:
                    yield self.finding(site.module, site.node, problem)

    @staticmethod
    def _unresolved_handler(site: _RpcSite) -> Optional[str]:
        expr = site.handler_expr
        if expr is None:
            return None
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            # self._handle_x must exist on the enclosing class.
            owner = _enclosing_class(site.module, expr)
            if owner is None:
                return None
            defined = {
                item.name for item in owner.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            assigned = {
                target.attr
                for node in ast.walk(owner)
                for target in getattr(node, "targets", [])
                if isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            }
            if expr.attr not in defined | assigned:
                return (f"handler for {site.method!r} references "
                        f"self.{expr.attr}, which {owner.name} does not "
                        "define")
        elif isinstance(expr, ast.Name):
            module_names = _module_level_names(site.module)
            enclosing = site.module.enclosing_function(site.node)
            local = set()
            if enclosing is not None:
                local = {
                    node.name for node in ast.walk(enclosing)
                    if isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
                } | {
                    t.id
                    for node in ast.walk(enclosing)
                    for t in getattr(node, "targets", [])
                    if isinstance(t, ast.Name)
                } | {a.arg for a in enclosing.args.args}
            if expr.id not in module_names | local:
                return (f"handler for {site.method!r} references undefined "
                        f"name {expr.id!r}")
        return None


def _enclosing_class(module: ModuleInfo, node: ast.AST) -> Optional[ast.ClassDef]:
    current = module.parent(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        current = module.parent(current)
    return None


def _module_level_names(module: ModuleInfo) -> set:
    names = set()
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            names.update(t.id for t in node.targets if isinstance(t, ast.Name))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            names.update((a.asname or a.name).split(".")[0]
                         for a in node.names)
    return names


@register
class RpcTimeoutRule(Rule):
    """PRO02: every endpoint.call() needs an explicit timeout path."""

    id = "PRO02"
    name = "rpc-call-timeout"
    description = (
        "endpoint.call() sites must pass an explicit timeout= or sit "
        "inside a try that catches RpcTimeout/RpcError, so a dead peer "
        "cannot silently stall the experiment on the library default"
    )

    def check_module(self, module: ModuleInfo):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (not isinstance(func, ast.Attribute) or func.attr != "call"
                    or len(node.args) < 2):
                continue
            if not _looks_like_rpc(node, func):
                continue
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            if self._inside_timeout_handler(module, node):
                continue
            yield self.finding(
                module, node,
                f"endpoint.call({ast.unparse(node.args[1])}) has no "
                "explicit timeout= and no enclosing RpcTimeout handler; "
                "pass timeout= (e.g. DEFAULT_RPC_TIMEOUT_MS) or catch "
                "RpcTimeout")

    @staticmethod
    def _inside_timeout_handler(module: ModuleInfo, node: ast.AST) -> bool:
        current = module.parent(node)
        child = node
        while current is not None and not isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(current, ast.Try) and child in current.body:
                for handler in current.handlers:
                    if handler.type is None:
                        return True
                    names = _exception_names(handler.type)
                    if names & _TIMEOUT_HANDLERS:
                        return True
            child = current
            current = module.parent(current)
        return False


def _exception_names(node: ast.AST) -> set:
    if isinstance(node, ast.Tuple):
        names = set()
        for element in node.elts:
            names |= _exception_names(element)
        return names
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    return set()


@register
class LockDisciplineRule(Rule):
    """PRO03: acquire() without a release() on every exit path."""

    id = "PRO03"
    name = "lock-release-paths"
    description = (
        "every <lock>.acquire() must be matched by <lock>.release() on "
        "all exit paths: either released on the very next statement or "
        "protected by a try/finally covering every yield/raise/return in "
        "between (the simulator interrupts processes at yield points)"
    )

    def check_module(self, module: ModuleInfo):
        for func in module.functions():
            for problem in cfg.check_lock_discipline(func):
                if problem.reason == "no-release":
                    message = (
                        f"{problem.lock}.acquire() in {func.name!r} has no "
                        f"matching {problem.lock}.release() on the "
                        "fall-through path")
                else:
                    message = (f"{problem.lock}.acquire() in {func.name!r} "
                               f"is {problem.reason}")
                yield self.finding(module, problem.node, message)
