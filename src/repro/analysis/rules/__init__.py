"""Rule plugins: importing this package populates the rule registry.

Add a new rule family by creating a module here that defines
:class:`~repro.analysis.engine.Rule` subclasses decorated with
:func:`~repro.analysis.engine.register`, then import it below.
"""

from repro.analysis.rules import (
    atomicity,
    bench,
    determinism,
    obs,
    protocol,
    schemes,
    simprocess,
    telemetry,
    tracing,
)

__all__ = ["atomicity", "bench", "determinism", "obs", "protocol",
           "schemes", "simprocess", "telemetry", "tracing"]
