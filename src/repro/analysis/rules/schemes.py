"""Scheme-registry rules (SCH*).

The scheme registry (:mod:`repro.schemes`) is the single place where
caching schemes are named, described and built; every scheme class
promises a declared consistency level (the catalogue column, and what
the scheme-dispatched invariant checker verifies).  Two idioms break
that quietly:

- **Undeclared consistency.**  A ``StorageAPI`` subclass that never
  assigns ``consistency`` in its class body inherits the abstract
  default ("") — the catalogue shows "?" and the shootout cannot say
  what the scheme's checker is supposed to prove.
- **Registry bypass.**  Instantiating a scheme class directly (outside
  the registry's builder modules) skips the scheduler preference,
  prepare/preload hooks and shared-instance semantics recorded in its
  :class:`~repro.schemes.SchemeSpec`; experiments built that way drift
  from what ``build_scheme`` would have produced.

The subclass closure is computed by name over the analyzed tree, so the
rule needs no imports of the checked code.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.engine import Finding, ModuleInfo, ProjectRule, register

#: The abstract root of every caching scheme.
_ROOT_CLASS = "StorageAPI"


def _base_names(node: ast.ClassDef) -> Iterable[str]:
    for base in node.bases:
        if isinstance(base, ast.Name):
            yield base.id
        elif isinstance(base, ast.Attribute):
            yield base.attr


def _declares_consistency(node: ast.ClassDef) -> bool:
    """Whether the class body assigns ``consistency`` a string literal."""
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
            value = statement.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "consistency":
                return (isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                        and bool(value.value))
    return False


def _in_schemes_package(module: ModuleInfo) -> bool:
    return "schemes" in module.display_path.split("/")


@register
class SchemeDisciplineRule(ProjectRule):
    """SCH01: schemes declare consistency; construction via registry."""

    id = "SCH01"
    name = "scheme-discipline"
    description = (
        "every concrete StorageAPI subclass must declare its "
        "consistency level as a string literal in its class body "
        "(underscore-prefixed helper bases are exempt), and scheme "
        "classes must be instantiated only inside the registry's "
        "builder modules (repro/schemes/) — everywhere else goes "
        "through build_scheme()/build_scheme_map()"
    )

    def check_project(self, modules: List[ModuleInfo]) -> Iterable[Finding]:
        # Pass 1: the StorageAPI subclass closure, by class name.
        class_defs: list[tuple[ModuleInfo, ast.ClassDef]] = []
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    class_defs.append((module, node))
        scheme_classes = {_ROOT_CLASS}
        changed = True
        while changed:
            changed = False
            for _module, node in class_defs:
                if node.name in scheme_classes:
                    continue
                if any(base in scheme_classes
                       for base in _base_names(node)):
                    scheme_classes.add(node.name)
                    changed = True

        # Pass 2a: consistency declarations on concrete scheme classes.
        for module, node in class_defs:
            if (node.name not in scheme_classes
                    or node.name == _ROOT_CLASS
                    or node.name.startswith("_")):
                continue
            if not _declares_consistency(node):
                yield self.finding(
                    module, node,
                    f"scheme class {node.name!r} does not declare its "
                    "consistency level: assign a non-empty string "
                    "literal to `consistency` in the class body (e.g. "
                    '`consistency = "eventual"`) so catalogues and the '
                    "invariant dispatcher know what the scheme promises")

        # Pass 2b: direct instantiation outside the registry package.
        concrete = scheme_classes - {_ROOT_CLASS}
        for module in modules:
            if _in_schemes_package(module):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                else:
                    continue
                if name in concrete:
                    yield self.finding(
                        module, node,
                        f"scheme class {name!r} instantiated directly: "
                        "construct schemes through repro.schemes."
                        "build_scheme()/build_scheme_map() so the "
                        "registered scheduler, prepare/preload hooks "
                        "and shared-instance semantics apply")
