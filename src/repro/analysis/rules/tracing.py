"""Causal-tracing rules (TRC*).

The tracing layer (:mod:`repro.trace`) propagates a
:class:`~repro.trace.TraceContext` across RPC boundaries: ``call()`` and
``notify()`` take a ``trace=`` keyword defaulting to ``INHERIT`` (the
caller's ambient context).  That default keeps untraced code working, but
inside the protocol layers — ``core/`` and ``caching/`` — every RPC site
must *state* its parentage: an explicit ``trace=INHERIT`` (or an explicit
span/context) documents that the span tree stays connected, and makes an
accidental ``trace=None`` (detaching the subtree) visible in review.
TRC01 flags protocol-layer RPC sites that omit the keyword.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath

from repro.analysis.engine import ModuleInfo, Rule, register
from repro.analysis.rules.protocol import _looks_like_rpc

#: Directories whose RPC sites must annotate trace parentage.
_TRACED_LAYERS = {"core", "caching"}


def _in_traced_layer(module: ModuleInfo) -> bool:
    return bool(_TRACED_LAYERS & set(PurePosixPath(module.display_path).parts))


@register
class TraceContextRule(Rule):
    """TRC01: protocol-layer RPC sites must carry the trace context."""

    id = "TRC01"
    name = "rpc-trace-context"
    description = (
        "endpoint.call()/notify() sites inside core/ and caching/ must "
        "pass an explicit trace= (normally trace=INHERIT) so the incoming "
        "TraceContext is visibly propagated rather than silently dropped"
    )

    def check_module(self, module: ModuleInfo):
        if not _in_traced_layer(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (not isinstance(func, ast.Attribute)
                    or func.attr not in ("call", "notify")
                    or len(node.args) < 2):
                continue
            if not _looks_like_rpc(node, func):
                continue
            if any(kw.arg == "trace" for kw in node.keywords):
                continue
            yield self.finding(
                module, node,
                f"endpoint.{func.attr}({ast.unparse(node.args[1])}) does "
                "not state its trace parentage; pass trace=INHERIT (or an "
                "explicit parent context) so the causal span tree stays "
                "connected across this RPC")
