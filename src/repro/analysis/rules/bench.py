"""Bench rules (BEN*).

The bench layer (:mod:`repro.bench`) promises that a :class:`JobSpec`
can cross a ``spawn`` process boundary and reproduce the same work from
strings and JSON alone.  That only holds when job targets are
**importable module-level callables** and args are **JSON-serializable**
— a lambda, a closure, or a set in the args dict fails at sweep time,
possibly hours into a grid.  BEN01 moves those failures to analysis
time:

- the ``target=`` of every ``JobSpec(...)`` construction must be a plain
  string literal of the form ``"pkg.module:callable"`` (not an f-string,
  not the callable object itself);
- when the named module is part of the analyzed tree, the callable's
  root attribute must actually exist at module level (a top-level
  ``def``/``class``/assignment or an import);
- the ``args=`` expression must not contain literals JSON cannot encode
  (sets, set comprehensions, lambdas, bytes, complex numbers).

Dynamic args *values* (names, calls) stay allowed — grids are built
programmatically — because :class:`JobSpec` still canonicalizes at
runtime; BEN01 only rejects what is *provably* wrong at the source.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional

from repro.analysis.engine import Finding, ModuleInfo, ProjectRule, register

#: Same shape JobSpec accepts at runtime: ``pkg.module:qual.name``.
_TARGET_RE = re.compile(
    r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*"
    r":[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*$")

#: JobSpec positional order (mirrors repro.bench.job.JobSpec).
_POS_TARGET = 1
_POS_ARGS = 2


def _module_index(modules: List[ModuleInfo]) -> dict:
    """dotted-suffix -> [ModuleInfo] for every analyzed module.

    ``src/repro/bench/suite.py`` registers ``suite``,
    ``bench.suite``, ``repro.bench.suite``, ... so any spelling of the
    module path that targets use can be resolved.  Packages register
    their ``__init__.py`` under the package path.
    """
    index: dict = {}
    for module in modules:
        parts = module.display_path.split("/")
        if not parts[-1].endswith(".py"):
            continue
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts = parts[:-1] + [parts[-1][:-3]]
        for start in range(len(parts)):
            dotted = ".".join(parts[start:])
            if dotted:
                index.setdefault(dotted, []).append(module)
    return index


def _module_level_names(module: ModuleInfo) -> frozenset:
    """Names bound at the module's top level (defs, classes, imports,
    assignments)."""
    bound = []
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.append(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        bound.append(name_node.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.append(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.append((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.append(alias.asname or alias.name)
                if alias.name == "*":
                    bound.append("*")  # star import: assume anything
    return frozenset(bound)


def _keyword_or_positional(call: ast.Call, keyword: str,
                           position: int) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > position:
        return call.args[position]
    return None


def _is_jobspec_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "JobSpec"
    if isinstance(func, ast.Attribute):
        return func.attr == "JobSpec"
    return False


@register
class BenchJobDisciplineRule(ProjectRule):
    """BEN01: JobSpec targets resolvable, args JSON-serializable."""

    id = "BEN01"
    name = "bench-job-discipline"
    description = (
        "JobSpec(target=...) must be a string literal "
        "'pkg.module:callable' whose callable exists at module level "
        "(checked when the module is in the analyzed tree), and "
        "args= must not contain sets, lambdas, bytes or other literals "
        "JSON cannot encode — specs must survive the spawn boundary")

    def check_project(self,
                      modules: List[ModuleInfo]) -> Iterable[Finding]:
        index = _module_index(modules)
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call) and _is_jobspec_call(node):
                    yield from self._check_call(module, node, index)

    # -- one JobSpec(...) -------------------------------------------------
    def _check_call(self, module: ModuleInfo, call: ast.Call,
                    index: dict) -> Iterable[Finding]:
        target = _keyword_or_positional(call, "target", _POS_TARGET)
        if target is not None:
            yield from self._check_target(module, target, index)
        args = _keyword_or_positional(call, "args", _POS_ARGS)
        if args is not None:
            yield from self._check_args(module, args)

    def _check_target(self, module: ModuleInfo, target: ast.AST,
                      index: dict) -> Iterable[Finding]:
        if isinstance(target, ast.JoinedStr):
            yield self.finding(
                module, target,
                "JobSpec target built from an f-string: write the "
                "'pkg.module:callable' reference as a plain literal so "
                "it can be statically resolved and fingerprinted")
            return
        if not isinstance(target, ast.Constant):
            yield self.finding(
                module, target,
                f"JobSpec target must be a string literal "
                f"'pkg.module:callable', not {ast.unparse(target)!r}: "
                "passing the callable (or a computed name) cannot cross "
                "the spawn worker boundary")
            return
        if not isinstance(target.value, str) or not _TARGET_RE.match(
                target.value):
            yield self.finding(
                module, target,
                f"JobSpec target {target.value!r} does not look like "
                "'pkg.module:callable'")
            return
        module_name, _, qualname = target.value.partition(":")
        candidates = index.get(module_name)
        if not candidates:
            return  # module outside the analyzed tree: runtime's problem
        head = qualname.split(".")[0]
        for candidate in candidates:
            bound = _module_level_names(candidate)
            if head in bound or "*" in bound:
                return
        yield self.finding(
            module, target,
            f"JobSpec target {target.value!r}: {head!r} is not a "
            f"module-level name in {module_name!r} — spawn workers "
            "re-import targets by name, so nested functions and "
            "closures cannot be bench jobs")

    def _check_args(self, module: ModuleInfo,
                    args: ast.AST) -> Iterable[Finding]:
        for node in ast.walk(args):
            if isinstance(node, (ast.Set, ast.SetComp)):
                yield self.finding(
                    module, node,
                    f"JobSpec args contain a set "
                    f"({ast.unparse(node)!r}): JSON cannot encode sets "
                    "and their iteration order leaks PYTHONHASHSEED — "
                    "use a sorted list")
            elif isinstance(node, ast.Lambda):
                yield self.finding(
                    module, node,
                    "JobSpec args contain a lambda: args must be JSON "
                    "values; pass a 'pkg.module:callable' string and "
                    "resolve it inside the job instead")
            elif (isinstance(node, ast.Constant)
                    and isinstance(node.value, (bytes, complex))):
                yield self.finding(
                    module, node,
                    f"JobSpec args contain "
                    f"{type(node.value).__name__} literal "
                    f"{node.value!r}: not JSON-serializable")
