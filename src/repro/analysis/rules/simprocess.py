"""Sim-process discipline rules (SIM*).

Simulation processes are plain generator functions stepped by
``repro.sim.process.Process``; the kernel contract is narrow:

- a process may only ``yield`` Event-like objects (Event, Timeout, AllOf,
  AnyOf, Process, Resource grants) — yielding a bare value kills the
  process at runtime with a :class:`SimulationError`, but only on the
  path that executes it;
- a process must never perform real (wall-clock) blocking I/O — the
  simulated clock would keep standing still while real time passes, and
  the result depends on the host machine;
- code outside ``repro/sim`` must not read the kernel's private state
  (``Simulator._now``, the event heap, ...) — the public ``sim.now`` /
  ``peek()`` surface is the contract that lets the kernel evolve.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    ModuleInfo,
    Rule,
    is_generator_function,
    is_sim_process,
    register,
    walk_function_body,
)

#: Yield value node types that can never be an Event.
_NON_EVENT_NODES = (
    ast.Constant, ast.List, ast.Tuple, ast.Dict, ast.Set, ast.ListComp,
    ast.SetComp, ast.DictComp, ast.GeneratorExp, ast.BinOp, ast.Compare,
    ast.BoolOp, ast.UnaryOp, ast.JoinedStr, ast.FormattedValue, ast.Lambda,
)

#: Real-I/O builtins banned inside simulation processes.
_BLOCKING_BUILTINS = {"open", "input", "breakpoint"}

#: ``module.function`` calls that block on real time or real I/O.
_BLOCKING_ATTR_CALLS = {
    ("time", "sleep"),
    ("os", "system"),
    ("os", "popen"),
    ("shutil", "copyfile"),
}

#: Any attribute call rooted at one of these module names is real I/O.
_BLOCKING_MODULES = {"socket", "subprocess", "requests", "urllib", "http"}

#: Private Simulator attributes that only repro/sim may touch.
_KERNEL_PRIVATE_ATTRS = {"_now", "_heap", "_seq", "_active_process",
                         "_schedule"}


# Shared with the atomicity rules; see engine.is_sim_process.
_is_sim_process = is_sim_process


@register
class YieldNonEventRule(Rule):
    """SIM01: a sim process yielded something that cannot be an Event."""

    id = "SIM01"
    name = "yield-non-event"
    description = (
        "generator processes must only yield Event/Timeout/AllOf/AnyOf "
        "expressions; yielding a literal, collection or arithmetic result "
        "crashes the process at runtime on that path"
    )

    def check_module(self, module: ModuleInfo):
        for func in module.functions():
            if not is_generator_function(func) or not _is_sim_process(func):
                continue
            for node in walk_function_body(func):
                if not isinstance(node, ast.Yield):
                    continue
                value = node.value
                if value is None:
                    continue  # bare `yield`: the generator-marker idiom
                if isinstance(value, _NON_EVENT_NODES):
                    yield self.finding(
                        module, node,
                        f"process {func.name!r} yields "
                        f"{ast.unparse(value)!r}, which is not an Event; "
                        "yield sim.timeout()/events, or return the value")


@register
class BlockingIoRule(Rule):
    """SIM02: real blocking I/O inside a simulation process."""

    id = "SIM02"
    name = "blocking-io"
    description = (
        "bans open()/input()/time.sleep()/socket/subprocess calls inside "
        "generator processes: real I/O stalls the wall clock while the "
        "simulated clock stands still, making results machine-dependent"
    )

    def check_module(self, module: ModuleInfo):
        for func in module.functions():
            if not is_generator_function(func) or not _is_sim_process(func):
                continue
            for node in walk_function_body(func):
                if not isinstance(node, ast.Call):
                    continue
                message = self._blocking_reason(node)
                if message is not None:
                    yield self.finding(
                        module, node,
                        f"process {func.name!r} performs real blocking "
                        f"I/O: {message}")

    @staticmethod
    def _blocking_reason(node: ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_BUILTINS:
                return f"{func.id}() touches the real machine"
            return None
        if isinstance(func, ast.Attribute):
            root = func.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                if (root.id, func.attr) in _BLOCKING_ATTR_CALLS:
                    return f"{root.id}.{func.attr}() blocks on real time/IO"
                if root.id in _BLOCKING_MODULES:
                    return f"{root.id}.* performs real network/process I/O"
        return None


@register
class KernelPrivateStateRule(Rule):
    """SIM03: private simulator kernel state read outside repro/sim."""

    id = "SIM03"
    name = "kernel-private-state"
    description = (
        "code outside repro/sim must not touch Simulator._now/_heap/_seq/"
        "_active_process/_schedule; use sim.now, sim.peek() and the "
        "public scheduling API"
    )

    def check_module(self, module: ModuleInfo):
        parts = module.display_path.replace("\\", "/").split("/")
        if "sim" in parts:
            return  # the kernel may touch its own internals
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr in _KERNEL_PRIVATE_ATTRS):
                yield self.finding(
                    module, node,
                    f"access to private simulator state "
                    f"{ast.unparse(node)!r}; use the public Simulator API "
                    "(sim.now, sim.peek, sim.spawn)")
