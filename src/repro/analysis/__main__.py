"""``python -m repro.analysis`` — run the static-analysis suite."""

import sys

from repro.analysis.cli import main

sys.exit(main())
