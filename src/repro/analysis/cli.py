"""Command-line entry point: ``python -m repro.analysis`` / ``repro-analyze``.

Usage::

    python -m repro.analysis src/repro            # analyze the tree
    python -m repro.analysis --list-rules         # what is enforced
    python -m repro.analysis --format=json src    # machine-readable
    python -m repro.analysis --write-baseline src # accept current findings

Exit status: 0 when the tree is clean (modulo waivers/baseline), 1 when
any error-severity finding or parse error remains; ``--strict`` also
fails on warnings.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.analysis.engine import Analyzer, Baseline, all_rules
from repro.cli_common import (
    EXIT_OK,
    EXIT_USAGE,
    common_parent,
    output_stream,
)

BASELINE_NAME = "analysis-baseline.json"


def _default_baseline_path(paths: list[Path]) -> Optional[Path]:
    """``analysis-baseline.json`` next to the nearest pyproject.toml."""
    candidates = list(paths) or [Path.cwd()]
    probe = candidates[0].resolve()
    for ancestor in [probe] + list(probe.parents):
        if (ancestor / "pyproject.toml").exists():
            return ancestor / BASELINE_NAME
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=("Static analysis enforcing simulator determinism and "
                     "sim-process discipline for the Concord reproduction. "
                     "sarif output emits SARIF 2.1.0 for code-scanning "
                     "upload."),
        parents=[common_parent(formats=("text", "json", "sarif"), out=True)],
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: {BASELINE_NAME} next "
                             "to pyproject.toml, when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RULE", help="run only these rule ids "
                        "(repeatable)")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as failures")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _render_text(report, out) -> None:
    for finding in report.findings:
        print(f"{finding.location}:{finding.col}: {finding.severity} "
              f"{finding.rule} [{finding.symbol or '<module>'}] "
              f"{finding.message}", file=out)
    for path, message in report.parse_errors:
        print(f"{path}: parse-error: {message}", file=out)
    summary = (f"{report.files} files analyzed: "
               f"{len(report.errors)} error(s), "
               f"{len(report.warnings)} warning(s), "
               f"{report.waived} waived, {report.baselined} baselined")
    print(summary, file=out)


def _render_sarif(report, rules, out) -> None:
    """SARIF 2.1.0 — the dialect GitHub code scanning ingests."""
    results = []
    for finding in report.findings:
        results.append({
            "ruleId": finding.rule,
            "level": ("error" if finding.severity == "error" else "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path,
                                         "uriBaseId": "%SRCROOT%"},
                    "region": {"startLine": max(finding.line, 1),
                               "startColumn": finding.col + 1},
                },
            }],
        })
    for path, message in report.parse_errors:
        results.append({
            "ruleId": "parse-error",
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": path,
                                         "uriBaseId": "%SRCROOT%"},
                    "region": {"startLine": 1, "startColumn": 1},
                },
            }],
        })
    payload = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-analyze",
                "rules": [
                    {
                        "id": rule.id,
                        "name": rule.name,
                        "shortDescription": {"text": rule.description},
                        "defaultConfiguration": {
                            "level": ("error" if rule.severity == "error"
                                      else "warning"),
                        },
                    }
                    for rule in rules
                ],
            }},
            "results": results,
        }],
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def _render_json(report, out) -> None:
    payload = {
        "files": report.files,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "waived": report.waived,
        "baselined": report.baselined,
        "parse_errors": [
            {"path": path, "message": message}
            for path, message in report.parse_errors
        ],
        "findings": [finding.to_dict() for finding in report.findings],
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def main(argv: Optional[list] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with output_stream(args.out, out) as out:
            return _run(args, out)
    except OSError as exc:
        if args.out is None:
            raise
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return EXIT_USAGE


def _run(args, out) -> int:
    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id}  {rule.name:<22} [{rule.severity}] "
                  f"{rule.description}", file=out)
        return EXIT_OK

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        # A typo'd path must not produce a green "0 files analyzed" run.
        print(f"error: no such path: {', '.join(missing)}", file=out)
        return EXIT_USAGE
    baseline = Baseline()
    baseline_path = args.baseline or _default_baseline_path(paths)
    if (not args.no_baseline and not args.write_baseline
            and baseline_path is not None and baseline_path.exists()):
        baseline = Baseline.load(baseline_path)

    try:
        analyzer = Analyzer(baseline=baseline, select=args.select)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return EXIT_USAGE
    report = analyzer.run(paths)

    if args.write_baseline:
        if baseline_path is None:
            print("error: no pyproject.toml found to anchor the baseline; "
                  "pass --baseline PATH", file=out)
            return EXIT_USAGE
        previous = (Baseline.load(baseline_path)
                    if baseline_path.exists() else None)
        Baseline.dump(report.findings, baseline_path, previous=previous)
        print(f"wrote {len(report.findings)} suppression(s) to "
              f"{baseline_path}", file=out)
        return EXIT_OK

    try:
        if args.format == "json":
            _render_json(report, out)
        elif args.format == "sarif":
            _render_sarif(report, analyzer.rules, out)
        else:
            _render_text(report, out)
    except BrokenPipeError:
        # Piped into `head`/`grep -m` which closed early; swap stdout for
        # /dev/null so interpreter shutdown doesn't print a traceback, and
        # still report the analysis verdict via the exit code.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
