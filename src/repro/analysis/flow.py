"""Per-function control-flow graphs for sim-process analysis.

The simulator steps generator processes and may throw
:class:`~repro.sim.errors.Interrupt` into them at *every* suspension
point (``yield`` / ``yield from``), so the atomicity and lock-discipline
rules need real may-path reasoning, not a forward scan.  This module
lowers one function body (nested ``def``/``class`` bodies excluded —
they run in their own frames) into basic blocks:

- every own-body statement lands in exactly one block; compound
  statements (``if``/``while``/``for``/``try``/``with``) appear once as
  the *header* of the construct, their nested statements in blocks of
  their own;
- blocks ending in ``raise``/``return`` are terminal: no out-edges;
- loop headers carry the back-edge target; ``break``/``continue`` edge
  to the loop exit/header; ``while True:`` has no fall-out edge, so code
  after an unbroken infinite loop is correctly unreachable;
- ``try`` bodies get conservative may-raise edges: every block lowered
  inside the body edges to each handler entry, and (when a ``finally``
  exists) every block in the body/handler/else regions edges to the
  finally entry.  The return/raise-through-finally path is *not*
  modeled as edges (terminal blocks stay terminal); callers that care
  about finally semantics use :func:`enclosing_trys` structurally.

On top of the graph, :func:`find_path` answers the query every rule
here reduces to: *is there a path from statement A to statement B that
passes a statement satisfying* ``between`` *and avoids every statement
satisfying* ``kill``?
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, Optional

__all__ = [
    "Block", "CFG", "build_cfg", "build_cfg_body", "stmt_exprs",
    "own_statements", "enclosing_trys", "find_path", "contains_yield",
]


class Block:
    """One basic block: a run of statements with a single entry."""

    __slots__ = ("bid", "stmts", "succ")

    def __init__(self, bid: int):
        self.bid = bid
        self.stmts: list[ast.stmt] = []
        self.succ: list["Block"] = []

    def link(self, other: "Block") -> None:
        if other is not self and other not in self.succ:
            self.succ.append(other)

    @property
    def terminal(self) -> bool:
        """Ends in raise/return: control never falls out."""
        return bool(self.stmts) and isinstance(
            self.stmts[-1], (ast.Raise, ast.Return))

    def describe(self) -> str:
        """Stable one-line rendering, used by the golden-CFG tests."""
        labels = []
        for stmt in self.stmts:
            head = type(stmt).__name__
            labels.append(f"{head}@{stmt.lineno}")
        succ = ",".join(f"B{b.bid}" for b in self.succ)
        return f"B{self.bid}[{' '.join(labels)}] -> [{succ}]"


class CFG:
    """The lowered graph plus the statement -> block index."""

    def __init__(self, entry: Block, blocks: list[Block]):
        self.entry = entry
        self.blocks = blocks
        # Keyed by the statement node itself (identity hash), like
        # ModuleInfo._parents — no id() needed.
        self._home: dict[ast.stmt, tuple[Block, int]] = {}
        for block in blocks:
            for index, stmt in enumerate(block.stmts):
                self._home[stmt] = (block, index)

    def locate(self, stmt: ast.stmt) -> tuple[Block, int]:
        """(block, index-within-block) of a lowered statement."""
        return self._home[stmt]

    def statements(self) -> Iterator[ast.stmt]:
        for block in self.blocks:
            yield from block.stmts

    def describe(self) -> list[str]:
        return [block.describe() for block in self.blocks]


# ---------------------------------------------------------------------------
# Statement helpers
# ---------------------------------------------------------------------------
def stmt_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """Expressions evaluated by ``stmt`` *itself* (nested blocks excluded).

    For compound statements this is the header expression only: the test
    of an ``if``/``while``, the iterable of a ``for``, the context
    managers of a ``with`` — their bodies are separate blocks.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        exprs: list[ast.AST] = []
        for item in stmt.items:
            exprs.append(item.context_expr)
            if item.optional_vars is not None:
                exprs.append(item.optional_vars)
        return exprs
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return list(stmt.decorator_list) + [
            d for d in stmt.args.defaults + stmt.args.kw_defaults
            if d is not None]
    if isinstance(stmt, ast.ClassDef):
        return list(stmt.decorator_list) + list(stmt.bases)
    # Simple statements: every child expression is evaluated here.
    return [child for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.expr)]


def contains_yield(stmt: ast.stmt) -> Optional[ast.AST]:
    """First Yield/YieldFrom evaluated by ``stmt`` itself, if any.

    Lambda bodies are skipped: a yield inside a lambda belongs to the
    lambda's (generator) frame, not to this statement.
    """
    for expr in stmt_exprs(stmt):
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return node
            stack.extend(ast.iter_child_nodes(node))
    return None


def own_statements(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    """All statements the frame executes, excluding nested def/class bodies
    (the nested ``def``/``class`` statement itself is included)."""
    stack = list(body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for name in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, name, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            stack.extend(handler.body)
        for case in getattr(stmt, "cases", []) or []:
            stack.extend(case.body)


def enclosing_trys(body: list[ast.stmt],
                   target: ast.stmt) -> list[tuple[ast.Try, str]]:
    """``(try, region)`` pairs enclosing ``target``, outermost first.

    ``region`` is one of ``"body"``, ``"handler"``, ``"orelse"``,
    ``"finally"`` — which part of the ``try`` the statement sits in,
    which decides whether that try's handlers/finally run for an
    exception raised at the statement.
    """
    found: list[tuple[ast.Try, str]] = []

    def descend(stmts: list[ast.stmt],
                trail: list[tuple[ast.Try, str]]) -> bool:
        for stmt in stmts:
            if stmt is target:
                found.extend(trail)
                return True
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Try):
                if descend(stmt.body, trail + [(stmt, "body")]):
                    return True
                for handler in stmt.handlers:
                    if descend(handler.body, trail + [(stmt, "handler")]):
                        return True
                if descend(stmt.orelse, trail + [(stmt, "orelse")]):
                    return True
                if descend(stmt.finalbody, trail + [(stmt, "finally")]):
                    return True
                continue
            for name in ("body", "orelse"):
                if descend(getattr(stmt, name, []) or [], trail):
                    return True
            for case in getattr(stmt, "cases", []) or []:
                if descend(case.body, trail):
                    return True
        return False

    descend(body, [])
    return found


# ---------------------------------------------------------------------------
# The builder
# ---------------------------------------------------------------------------
def _const_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value) is True


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[Block] = []
        #: (break_target, continue_target) stack for enclosing loops.
        self.loops: list[tuple[Block, Block]] = []

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def build(self, body: list[ast.stmt]) -> CFG:
        entry = self.new_block()
        end = self.lower(body, entry)
        del end  # falling off the end is the implicit return
        self._prune()
        return CFG(entry, self.blocks)

    # -- statement-list lowering ------------------------------------------
    def lower(self, stmts: list[ast.stmt],
              cur: Optional[Block]) -> Optional[Block]:
        """Lower ``stmts`` starting in ``cur``; return the fall-out block
        (None when control cannot fall out of the list)."""
        for stmt in stmts:
            if cur is None:
                # Unreachable code still gets blocks (the exactly-one-block
                # invariant), just no incoming edges.
                cur = self.new_block()
            if isinstance(stmt, ast.If):
                cur = self._lower_if(stmt, cur)
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                cur = self._lower_loop(stmt, cur)
            elif isinstance(stmt, ast.Try):
                cur = self._lower_try(stmt, cur)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                cur = self._lower_with(stmt, cur)
            elif isinstance(stmt, ast.Match):
                cur = self._lower_match(stmt, cur)
            elif isinstance(stmt, (ast.Break, ast.Continue)):
                cur.stmts.append(stmt)
                if self.loops:
                    target = self.loops[-1][0 if isinstance(stmt, ast.Break)
                                            else 1]
                    cur.link(target)
                cur = None
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                cur.stmts.append(stmt)
                cur = None  # terminal: no out-edges, by contract
            else:
                cur.stmts.append(stmt)
        return cur

    def _lower_if(self, stmt: ast.If, cur: Block) -> Optional[Block]:
        cur.stmts.append(stmt)
        then_entry = self.new_block()
        cur.link(then_entry)
        then_end = self.lower(stmt.body, then_entry)
        else_end: Optional[Block] = None
        has_else = bool(stmt.orelse)
        if has_else:
            else_entry = self.new_block()
            cur.link(else_entry)
            else_end = self.lower(stmt.orelse, else_entry)
        if then_end is None and else_end is None and has_else:
            return None  # both branches terminated
        join = self.new_block()
        if not has_else:
            cur.link(join)  # condition-false fall-through
        for end in (then_end, else_end):
            if end is not None:
                end.link(join)
        return join

    def _lower_loop(self, stmt: ast.stmt, cur: Block) -> Block:
        header = self.new_block()
        cur.link(header)
        header.stmts.append(stmt)
        after = self.new_block()
        body_entry = self.new_block()
        header.link(body_entry)
        self.loops.append((after, header))
        body_end = self.lower(stmt.body, body_entry)
        self.loops.pop()
        if body_end is not None:
            body_end.link(header)  # back-edge
        infinite = isinstance(stmt, ast.While) and _const_true(stmt.test)
        if not infinite:
            if stmt.orelse:
                orelse_entry = self.new_block()
                header.link(orelse_entry)
                orelse_end = self.lower(stmt.orelse, orelse_entry)
                if orelse_end is not None:
                    orelse_end.link(after)
            else:
                header.link(after)
        return after

    def _lower_try(self, stmt: ast.Try, cur: Block) -> Optional[Block]:
        cur.stmts.append(stmt)
        region_start = len(self.blocks)
        body_entry = self.new_block()
        cur.link(body_entry)
        body_end = self.lower(stmt.body, body_entry)
        body_region = self.blocks[region_start:]

        handler_entries: list[Block] = []
        handler_ends: list[Block] = []
        handler_start = len(self.blocks)
        for handler in stmt.handlers:
            entry = self.new_block()
            handler_entries.append(entry)
            end = self.lower(handler.body, entry)
            if end is not None:
                handler_ends.append(end)
        handler_region = self.blocks[handler_start:]

        orelse_start = len(self.blocks)
        orelse_end: Optional[Block] = body_end
        orelse_region: list[Block] = []
        if stmt.orelse:
            orelse_entry = self.new_block()
            if body_end is not None:
                body_end.link(orelse_entry)
            orelse_end = self.lower(stmt.orelse, orelse_entry)
            orelse_region = self.blocks[orelse_start:]

        # May-raise edges: any statement in the body can transfer to any
        # handler; unmatched/re-raised exceptions and exceptions in the
        # else-region additionally reach the finally (below).  Terminal
        # blocks stay terminal by contract: an explicit raise/return ends
        # its path, and its handler/finally continuation is not modeled
        # (the structural enclosing_trys() view covers those callers).
        for block in body_region:
            if block.terminal:
                continue
            for entry in handler_entries:
                block.link(entry)

        normal_ends = [end for end in (orelse_end, *handler_ends)
                       if end is not None]
        if stmt.finalbody:
            final_entry = self.new_block()
            final_end = self.lower(stmt.finalbody, final_entry)
            for block in (*body_region, *handler_region, *orelse_region):
                if not block.terminal:
                    block.link(final_entry)  # exceptional entry to finally
            for end in normal_ends:
                end.link(final_entry)
            if final_end is None:
                return None
            return final_end
        if not normal_ends:
            return None
        join = self.new_block()
        for end in normal_ends:
            end.link(join)
        return join

    def _lower_with(self, stmt: ast.stmt, cur: Block) -> Optional[Block]:
        cur.stmts.append(stmt)
        body_entry = self.new_block()
        cur.link(body_entry)
        return self.lower(stmt.body, body_entry)

    def _lower_match(self, stmt: ast.Match, cur: Block) -> Optional[Block]:
        cur.stmts.append(stmt)
        ends = []
        for case in stmt.cases:
            entry = self.new_block()
            cur.link(entry)
            end = self.lower(case.body, entry)
            if end is not None:
                ends.append(end)
        join = self.new_block()
        cur.link(join)  # no case matched
        for end in ends:
            end.link(join)
        return join

    def _prune(self) -> None:
        """Drop empty blocks nothing reaches (lazy joins that never joined).

        Statement-carrying blocks are never dropped, so the exactly-one-
        block invariant survives; the entry block survives even if empty.
        """
        while True:
            preds: dict[int, int] = {}
            for block in self.blocks:
                for succ in block.succ:
                    preds[succ.bid] = preds.get(succ.bid, 0) + 1
            dead = [b for b in self.blocks
                    if not b.stmts and preds.get(b.bid, 0) == 0
                    and b is not self.blocks[0]]
            if not dead:
                break
            dead_ids = {b.bid for b in dead}
            self.blocks = [b for b in self.blocks if b.bid not in dead_ids]
            for block in self.blocks:
                block.succ = [s for s in block.succ
                              if s.bid not in dead_ids]
        for index, block in enumerate(self.blocks):
            block.bid = index


def build_cfg(func: ast.AST) -> CFG:
    """CFG of a function's own body (nested defs are separate graphs)."""
    return _Builder().build(func.body)


def build_cfg_body(body: list[ast.stmt]) -> CFG:
    """CFG of a bare statement list (e.g. one ``finally`` suite)."""
    return _Builder().build(body)


# ---------------------------------------------------------------------------
# Path queries
# ---------------------------------------------------------------------------
def find_path(
    cfg: CFG,
    src: ast.stmt,
    dst: ast.stmt,
    *,
    between: Optional[Callable[[ast.stmt], bool]] = None,
    kill: Optional[Callable[[ast.stmt], bool]] = None,
) -> Optional[ast.stmt]:
    """Witness for "src can reach dst through ``between``, avoiding ``kill``".

    Searches paths starting *after* ``src`` and ending *at* ``dst``
    (neither endpoint is tested against the predicates).  Returns the
    first ``between``-satisfying statement of some such path — or, when
    ``between`` is None, ``dst`` itself if any kill-free path exists;
    None when no qualifying path exists.
    """
    src_block, src_index = cfg.locate(src)
    dst_block, dst_index = cfg.locate(dst)

    def scan(block: Block, start: int, stop: Optional[int],
             witness: Optional[ast.stmt]):
        """Walk block.stmts[start:stop]; returns (survived, witness)."""
        stop_index = len(block.stmts) if stop is None else stop
        for stmt in block.stmts[start:stop_index]:
            if kill is not None and kill(stmt):
                return False, witness
            if witness is None and between is not None and between(stmt):
                witness = stmt
        return True, witness

    # Same-block fast path: src strictly before dst in one block.
    if src_block is dst_block and src_index < dst_index:
        alive, witness = scan(src_block, src_index + 1, dst_index, None)
        if alive and (between is None or witness is not None):
            return witness if between is not None else dst
    # General search.  State: (block, found-between-yet); at most two
    # visits per block.
    seen: set[tuple[int, bool]] = set()
    stack: list[tuple[Block, int, Optional[ast.stmt]]] = [
        (src_block, src_index + 1, None)]
    while stack:
        block, start, witness = stack.pop()
        if block is dst_block and start <= dst_index:
            alive, candidate = scan(block, start, dst_index, witness)
            if alive and (between is None or candidate is not None):
                return candidate if between is not None else dst
            # A kill before dst in this block also blocks continuing past
            # it on this visit — but paths through dst's *successors* and
            # back are covered by re-entering the block from the top.
        alive, witness = scan(block, start, None, witness)
        if not alive:
            continue
        for succ in block.succ:
            state = (succ.bid, witness is not None)
            if state not in seen:
                seen.add(state)
                stack.append((succ, 0, witness))
    return None
