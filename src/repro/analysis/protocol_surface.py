"""Cross-check: every coherence op the agent serves is model-checked.

The runtime protocol surface is the handler table in
``repro/core/agent.py`` (the RPC methods a :class:`CacheAgent` answers);
the verified surface is the transition set the explicit-state model
checker in ``repro/verify/model.py`` explores.  A coherence op that the
agent implements but the model never exercises is an unverified code
path — exactly how protocol bugs slip into "verified" systems.

This module extracts both surfaces from the AST (no imports of either
module, so it works on a broken tree) and maps each agent op to the
model event(s) that exercise it:

===================  =====================================
agent op             model transition that drives it
===================  =====================================
read                 Read (miss path fetches from home)
write                Write (forwarded to the home agent)
rfo                  Write (read-for-ownership on remote write)
fetch_downgrade      Read (E-state owner downgraded to S)
invalidate           Write (sharers invalidated before grant)
external_write       Write (storage update routed to home)
===================  =====================================

Lifecycle transitions (DataEvict, NodeFail, Leave, Join, RecoverOnFail)
drive the membership machinery rather than a single RPC handler and are
acknowledged separately.

Run with ``python -m repro.analysis.protocol_surface`` (``--format=json``
for machine-readable output); exits non-zero when any agent op lacks a
covering model event, or a mapped event vanished from the model.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from pathlib import Path
from typing import Optional

_PACKAGE_ROOT = Path(__file__).resolve().parent.parent  # src/repro
AGENT_PATH = _PACKAGE_ROOT / "core" / "agent.py"
MODEL_PATH = _PACKAGE_ROOT / "verify" / "model.py"

#: agent RPC op -> model event name(s) that exercise the op.
OP_COVERAGE = {
    "read": ("Read",),
    "write": ("Write",),
    "rfo": ("Write",),
    "fetch_downgrade": ("Read",),
    "invalidate": ("Write",),
    "external_write": ("Write",),
    # Shard-replica mirroring: entry snapshots fan out on every
    # directory mutation (reads create entries too) and the mirror is
    # consumed when a follower adopts a failed leader's shards.
    "dir_replicate": ("Read", "Write", "RecoverOnFail"),
}

#: Model transitions that drive membership/recovery rather than one RPC.
LIFECYCLE_EVENTS = frozenset(
    {"DataEvict", "NodeFail", "Leave", "Join", "RecoverOnFail"})

#: ``add(f"Read({node})", ...)`` / ``add("RecoverOnFail", ...)`` — the
#: event name is everything before the first parenthesis.
_EVENT_NAME_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)")


def agent_ops(path: Path = AGENT_PATH) -> set:
    """RPC method names the cache agent registers handlers for.

    Finds every dict literal whose keys are all strings and whose values
    are all ``self.<something>`` attributes — the agent's handler-table
    idiom — and any direct ``register_handler("name", ...)`` calls.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    ops: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict) and node.keys:
            keys = [k.value for k in node.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)]
            values_ok = all(
                isinstance(v, ast.Attribute)
                and isinstance(v.value, ast.Name) and v.value.id == "self"
                for v in node.values)
            if len(keys) == len(node.keys) and values_ok:
                ops.update(keys)
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "register_handler"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            ops.add(node.args[0].value)
    return ops


def model_events(path: Path = MODEL_PATH) -> set:
    """Transition names the model checker's ``add(...)`` calls declare."""
    tree = ast.parse(path.read_text(), filename=str(path))
    events: set = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "add"
                and node.args):
            continue
        label = node.args[0]
        text: Optional[str] = None
        if isinstance(label, ast.Constant) and isinstance(label.value, str):
            text = label.value
        elif isinstance(label, ast.JoinedStr):
            first = label.values[0] if label.values else None
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                text = first.value
        if text is None:
            continue
        match = _EVENT_NAME_RE.match(text)
        if match:
            events.add(match.group(1))
    return events


def check(agent_path: Path = AGENT_PATH,
          model_path: Path = MODEL_PATH) -> dict:
    """Compute the coverage report (pure data; no printing)."""
    ops = agent_ops(agent_path)
    events = model_events(model_path)
    problems = []
    for op in sorted(ops):
        mapped = OP_COVERAGE.get(op)
        if mapped is None:
            problems.append(
                f"agent op {op!r} has no entry in OP_COVERAGE: either map "
                "it to the model event that exercises it or add the "
                "transition to verify/model.py")
            continue
        missing = [event for event in mapped if event not in events]
        if missing:
            problems.append(
                f"agent op {op!r} maps to model event(s) "
                f"{', '.join(missing)} which verify/model.py no longer "
                "declares")
    stale = [op for op in sorted(OP_COVERAGE) if op not in ops]
    for op in stale:
        problems.append(
            f"OP_COVERAGE lists {op!r} but the agent no longer registers "
            "a handler for it; drop the stale mapping")
    unmapped_events = sorted(
        events - LIFECYCLE_EVENTS
        - {event for mapped in OP_COVERAGE.values() for event in mapped})
    return {
        "agent_ops": sorted(ops),
        "model_events": sorted(events),
        "lifecycle_events": sorted(LIFECYCLE_EVENTS & events),
        "unmapped_model_events": unmapped_events,
        "problems": problems,
        "ok": not problems,
    }


def main(argv: Optional[list] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    as_json = "--format=json" in argv or "--json" in argv
    report = check()
    if as_json:
        json.dump(report, out, indent=2)
        out.write("\n")
    else:
        print(f"agent ops      : {', '.join(report['agent_ops'])}", file=out)
        print(f"model events   : {', '.join(report['model_events'])}",
              file=out)
        if report["unmapped_model_events"]:
            print("unmapped events: "
                  f"{', '.join(report['unmapped_model_events'])}", file=out)
        for problem in report["problems"]:
            print(f"error: {problem}", file=out)
        verdict = "OK" if report["ok"] else "FAIL"
        print(f"protocol-surface coverage: {verdict}", file=out)
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
