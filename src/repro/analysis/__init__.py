"""Static analysis enforcing the reproduction's determinism contract.

Every figure in this repo rests on one guarantee: a seeded run of the
discrete-event simulator is bit-for-bit deterministic.  This package is
the mechanical check of that guarantee — an AST-based, plugin-style rule
engine with three rule families:

- **DET*** — determinism: no ambient randomness or wall-clock reads, no
  iteration over hash-ordered sets into order-sensitive paths, no
  ``id()``-derived ordering;
- **SIM*** — sim-process discipline: generator processes yield only
  Event expressions, never perform real blocking I/O, never read private
  simulator kernel state;
- **PRO*** — protocol surface: RPC call/handler names match up, calls
  carry a timeout path, lock acquires release on all exit paths.

Run it with ``python -m repro.analysis src/repro`` (or the
``repro-analyze`` console script); waive a finding inline with
``# noqa: RULEID`` or accept it in ``analysis-baseline.json``.
"""

from repro.analysis.engine import (
    AnalysisReport,
    Analyzer,
    Baseline,
    Finding,
    ModuleInfo,
    ProjectRule,
    Rule,
    all_rules,
    register,
)

__all__ = [
    "AnalysisReport",
    "Analyzer",
    "Baseline",
    "Finding",
    "ModuleInfo",
    "ProjectRule",
    "Rule",
    "all_rules",
    "register",
]
