"""Core of the static-analysis suite: findings, rules, waivers, baseline.

The engine parses every ``.py`` file under the analyzed paths once, hands
the ASTs to a registry of pluggable rules, and filters the raw findings
through two suppression layers:

- **inline waivers** — a ``# noqa: RULE1,RULE2`` (or bare ``# noqa``)
  comment on the flagged line;
- **baseline file** — a checked-in JSON list of ``(rule, path, symbol)``
  triples for accepted pre-existing findings.  Matching by enclosing
  symbol (function/class qualname) instead of line number keeps baseline
  entries stable under unrelated edits.

Rules subclass :class:`Rule` (per-module) or :class:`ProjectRule`
(whole-tree, e.g. cross-file RPC surface matching) and self-register via
the :func:`register` decorator; importing :mod:`repro.analysis.rules`
populates the registry.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: ``# noqa`` / ``# noqa: DET01, SIM02`` inline waiver comments.
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<rules>[A-Za-z0-9_,\s-]+))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str              # as given to the analyzer (repo-relative in CI)
    line: int
    col: int
    message: str
    severity: str = SEVERITY_ERROR
    #: Qualname of the enclosing function/class ("" at module level);
    #: the baseline matches on this, not on the line number.
    symbol: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def baseline_key(self) -> tuple:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "symbol": self.symbol,
        }


class ModuleInfo:
    """A parsed module plus the lookup tables rules need."""

    def __init__(self, path: Path, display_path: str, source: str):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: dict = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        #: line number -> set of waived rule ids (None entry = waive all).
        self.waivers: dict[int, Optional[set]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                self.waivers[lineno] = None  # bare noqa: waive everything
            else:
                ids = {r.strip() for r in rules.split(",") if r.strip()}
                existing = self.waivers.get(lineno)
                if existing is None and lineno in self.waivers:
                    continue  # already waive-all
                self.waivers[lineno] = (existing or set()) | ids

    # -- tree helpers -----------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def qualname(self, node: ast.AST) -> str:
        """Dotted name of the innermost enclosing def/class of ``node``."""
        names: list[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                names.append(current.name)
            current = self._parents.get(current)
        return ".".join(reversed(names))

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self._parents.get(current)
        return None

    def is_waived(self, finding: Finding) -> bool:
        if finding.line not in self.waivers:
            return False
        rules = self.waivers[finding.line]
        return rules is None or finding.rule in rules

    def functions(self) -> Iterator[ast.FunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


def is_generator_function(func: ast.AST) -> bool:
    """Whether ``func`` contains a yield of its own (not from nested defs)."""
    for node in walk_function_body(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def is_sim_process(func: ast.AST) -> bool:
    """Whether a generator function looks like a kernel-stepped process.

    A sim process has at least one yield that could produce an Event — a
    call, name or attribute expression, or a ``yield from`` delegation.
    Pure value generators (host-side tooling yielding tuples/literals)
    are never handed to the kernel and are exempt from the SIM/ATM/INT
    process rules.
    """
    for node in walk_function_body(func):
        if isinstance(node, ast.YieldFrom):
            return True
        if isinstance(node, ast.Yield) and isinstance(
                node.value, (ast.Call, ast.Name, ast.Attribute, ast.IfExp,
                             ast.Await)):
            return True
    return False


def walk_function_body(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own statements, skipping nested def/class/lambda."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------
class Rule:
    """Base class for a per-module rule."""

    id: str = "XX00"
    name: str = "unnamed"
    severity: str = SEVERITY_ERROR
    description: str = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    # -- helpers for subclasses ------------------------------------------
    def finding(self, module: ModuleInfo, node: ast.AST, message: str,
                severity: Optional[str] = None) -> Finding:
        return Finding(
            rule=self.id,
            path=module.display_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity or self.severity,
            symbol=module.qualname(node),
        )


class ProjectRule(Rule):
    """A rule that needs the whole analyzed tree at once."""

    def check_project(self, modules: list[ModuleInfo]) -> Iterable[Finding]:
        return ()


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls):
    """Class decorator adding a rule (one instance) to the registry."""
    instance = rule_cls()
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    _REGISTRY[instance.id] = instance
    return rule_cls


def all_rules() -> dict[str, Rule]:
    """The registered rules, keyed by id (populated by importing .rules)."""
    from repro.analysis import rules as _rules  # noqa - import side effect

    del _rules
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------
#: Placeholder written for entries --write-baseline could not justify;
#: the tier-1 baseline test rejects it, forcing a human-written reason.
BASELINE_FIXME_REASON = "FIXME: justify this suppression"


class Baseline:
    """Checked-in suppressions for accepted findings.

    Every entry carries a one-line ``reason`` saying *why* the finding
    is accepted rather than fixed — the waiver policy (DESIGN.md §11)
    makes an unexplained suppression itself a defect, enforced by the
    tier-1 baseline test.
    """

    def __init__(self, entries: Iterable[dict] = ()):
        self._entries: dict[tuple, str] = {}
        for entry in entries:
            key = (entry["rule"], entry["path"], entry.get("symbol", ""))
            self._entries[key] = str(entry.get("reason", "")).strip()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> dict:
        """``(rule, path, symbol) -> reason`` for every suppression."""
        return dict(self._entries)

    def suppresses(self, finding: Finding) -> bool:
        return finding.baseline_key() in self._entries

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        return cls(data.get("suppressions", []))

    @staticmethod
    def dump(findings: Iterable[Finding], path: Path,
             previous: Optional["Baseline"] = None) -> None:
        """Write ``findings`` as the new baseline.

        Reasons written for a key in ``previous`` are carried over;
        genuinely new entries get a FIXME placeholder that the tier-1
        baseline test rejects until a human justifies the suppression.
        """
        keys = sorted({f.baseline_key() for f in findings})
        carried = previous.entries if previous is not None else {}
        payload = {
            "comment": (
                "Accepted findings of repro.analysis; entries match on "
                "(rule, path, enclosing symbol), not line numbers, and "
                "every entry must carry a one-line reason. Regenerate "
                "with: python -m repro.analysis --write-baseline"
            ),
            "suppressions": [
                {"rule": rule, "path": path_, "symbol": symbol,
                 "reason": carried.get((rule, path_, symbol))
                 or BASELINE_FIXME_REASON}
                for rule, path_, symbol in keys
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------
@dataclass
class AnalysisReport:
    """Outcome of one analyzer run."""

    findings: list = field(default_factory=list)     # surviving findings
    waived: int = 0                                  # dropped by # noqa
    baselined: int = 0                               # dropped by baseline
    files: int = 0
    parse_errors: list = field(default_factory=list)  # (path, message)

    @property
    def errors(self) -> list:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    def exit_code(self, strict: bool = False) -> int:
        if self.parse_errors or self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0


class Analyzer:
    """Runs the rule registry over a set of files/directories."""

    def __init__(
        self,
        rules: Optional[Iterable[Rule]] = None,
        baseline: Optional[Baseline] = None,
        select: Optional[Iterable[str]] = None,
    ):
        registry = all_rules()
        chosen = list(rules) if rules is not None else list(registry.values())
        if select is not None:
            wanted = set(select)
            unknown = wanted - {rule.id for rule in chosen}
            if unknown:
                raise ValueError(f"unknown rule ids: {sorted(unknown)}")
            chosen = [rule for rule in chosen if rule.id in wanted]
        self.rules = sorted(chosen, key=lambda rule: rule.id)
        self.baseline = baseline or Baseline()

    # -- file collection --------------------------------------------------
    @staticmethod
    def collect_files(paths: Iterable[Path]) -> list[Path]:
        files: list[Path] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                files.extend(sorted(
                    p for p in path.rglob("*.py")
                    if "__pycache__" not in p.parts
                    and not any(part.endswith(".egg-info") for part in p.parts)
                ))
            elif path.suffix == ".py":
                files.append(path)
        # De-duplicate, preserving deterministic order.
        seen: set = set()
        unique = []
        for file in files:
            resolved = file.resolve()
            if resolved not in seen:
                seen.add(resolved)
                unique.append(file)
        return unique

    def load_modules(self, paths: Iterable[Path],
                     report: AnalysisReport) -> list[ModuleInfo]:
        modules = []
        for file in self.collect_files(paths):
            display = self._display_path(file)
            try:
                source = file.read_text()
                modules.append(ModuleInfo(file, display, source))
            except (SyntaxError, UnicodeDecodeError) as exc:
                report.parse_errors.append((display, str(exc)))
        return modules

    @staticmethod
    def _display_path(file: Path) -> str:
        """Repo-relative when possible, so baselines are machine-portable."""
        resolved = file.resolve()
        for ancestor in resolved.parents:
            if (ancestor / "pyproject.toml").exists():
                return resolved.relative_to(ancestor).as_posix()
        return file.as_posix()

    # -- running ----------------------------------------------------------
    def run(self, paths: Iterable[Path]) -> AnalysisReport:
        report = AnalysisReport()
        modules = self.load_modules(paths, report)
        report.files = len(modules)
        raw: list[tuple[ModuleInfo, Finding]] = []
        for module in modules:
            for rule in self.rules:
                for finding in rule.check_module(module):
                    raw.append((module, finding))
        by_path = {module.display_path: module for module in modules}
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                for finding in rule.check_project(modules):
                    raw.append((by_path.get(finding.path), finding))
        for module, finding in raw:
            if module is not None and module.is_waived(finding):
                report.waived += 1
            elif self.baseline.suppresses(finding):
                report.baselined += 1
            else:
                report.findings.append(finding)
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report
