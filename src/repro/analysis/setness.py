"""Lightweight "is this expression a set?" inference.

Python iterates ``set``/``frozenset`` in hash order, which for strings
depends on ``PYTHONHASHSEED`` — so the same program produces *different*
iteration orders across runs.  Any set iteration that feeds scheduling,
RPC fan-out or metric aggregation therefore breaks the simulator's
bit-for-bit determinism guarantee.  This module syntactically classifies
expressions as set-producing so the determinism rules can flag iteration
over them.

The inference is deliberately local and conservative:

- literal sets / set comprehensions / ``set()`` / ``frozenset()`` calls;
- set operators (``|``, ``&``, ``-``, ``^``) and named set methods when
  an operand is already known set-ish;
- names assigned a set-ish expression earlier in the same function;
- ``self.x`` attributes annotated or assigned as sets in the same module;
- attribute names that are sets by repo convention (``sharers``,
  ``members``, ...), and calls to functions whose return annotation is
  ``set`` (collected per module, plus a cross-module known list);
- order-preserving wrappers (``list``/``tuple``/``iter``/``enumerate``)
  propagate set-ness from their argument.
"""

from __future__ import annotations

import ast
from typing import Optional

#: Attributes that hold sets by convention across the repo (hash ring
#: membership, directory sharer sets, speculation read sets, recovery
#: bookkeeping).  Extend when a new set-valued protocol field appears.
KNOWN_SET_ATTRS = frozenset({
    "members", "sharers", "spec_readers", "awaiting", "early_acks",
    "read_set", "_members",
})

#: Methods/functions whose *name* implies a set return across modules.
KNOWN_SET_RETURNS = frozenset({
    "stale_nodes", "paired_functions", "valid_holders_set",
})

#: Set methods returning a new set when the receiver is a set.
_SET_METHODS = frozenset({
    "difference", "union", "intersection", "symmetric_difference", "copy",
})

_ORDER_PRESERVING_WRAPPERS = frozenset({"list", "tuple", "iter", "reversed",
                                        "enumerate"})


class ModuleSetFacts:
    """Per-module facts: annotated set attributes and set-returning defs."""

    def __init__(self, tree: ast.Module):
        self.set_attrs: set[str] = set()
        self.set_returns: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and _is_set_annotation(node.annotation):
                target = node.target
                if isinstance(target, ast.Name):
                    self.set_attrs.add(target.id)
                elif isinstance(target, ast.Attribute):
                    self.set_attrs.add(target.attr)
            elif isinstance(node, ast.Assign):
                if _is_set_literalish(node.value):
                    for target in node.targets:
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            self.set_attrs.add(target.attr)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.returns is not None and _is_set_annotation(node.returns):
                    self.set_returns.add(node.name)
                # dataclass-style: field(default_factory=set)
        for node in ast.walk(tree):
            if (isinstance(node, ast.AnnAssign)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id == "field"):
                for keyword in node.value.keywords:
                    if (keyword.arg == "default_factory"
                            and isinstance(keyword.value, ast.Name)
                            and keyword.value.id in ("set", "frozenset")):
                        target = node.target
                        if isinstance(target, ast.Name):
                            self.set_attrs.add(target.id)


def _is_set_annotation(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset")
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.strip()
        return text.startswith(("set", "frozenset", "Set[", "FrozenSet["))
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    return False


def _is_set_literalish(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    return False


def local_set_bindings(
        func: ast.AST, facts: ModuleSetFacts,
) -> dict[str, list[tuple[tuple[int, int], bool]]]:
    """Position-ordered set-ness binding events per local name.

    Each event is ``((lineno, col), binds_a_set)``.  Unlike
    :func:`local_set_names` this is order-aware: a later rebinding to a
    non-set value *kills* set-ness for subsequent uses.  The motivating
    idiom is ``sorted()`` negation — the repo's own fix for DET02::

        nodes = self.directory.sharers(key)   # a set
        nodes = sorted(nodes)                 # now a list: order is fixed
        for node_id in nodes: ...             # fine, must not be flagged

    Two evaluation passes let straight renames settle regardless of
    textual order; ``AugAssign`` never changes the container type, so it
    only ever *adds* set-ness, never kills it.
    """
    bindings: dict[str, list[tuple[tuple[int, int], bool]]] = {}
    args = getattr(func, "args", None)
    origin = (getattr(func, "lineno", 0), getattr(func, "col_offset", 0))
    if args is not None:
        for arg in list(args.args) + list(args.kwonlyargs):
            if (arg.annotation is not None
                    and _is_set_annotation(arg.annotation)):
                bindings.setdefault(arg.arg, []).append((origin, True))

    assigns = [node for node in ast.walk(func)
               if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign))]
    assigns.sort(key=lambda node: (node.lineno, node.col_offset))

    def record(name: str, pos: tuple[int, int], setish: bool) -> None:
        events = bindings.setdefault(name, [])
        for index, (event_pos, _) in enumerate(events):
            if event_pos == pos:
                events[index] = (pos, setish)  # pass-2 refinement
                return
        events.append((pos, setish))
        events.sort(key=lambda event: event[0])

    for _pass in range(2):
        for node in assigns:
            pos = (node.lineno, node.col_offset)
            visible = set_names_at(bindings, pos)
            if isinstance(node, ast.Assign):
                if (len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    record(node.targets[0].id, pos,
                           is_setish(node.value, facts, visible))
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    if _is_set_annotation(node.annotation):
                        record(node.target.id, pos, True)
                    elif node.value is not None:
                        record(node.target.id, pos,
                               is_setish(node.value, facts, visible))
            else:  # AugAssign
                if (isinstance(node.target, ast.Name)
                        and isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                                 ast.Sub, ast.BitXor))
                        and is_setish(node.value, facts, visible)):
                    record(node.target.id, pos, True)
    return bindings


def set_names_at(bindings: dict[str, list[tuple[tuple[int, int], bool]]],
                 pos: tuple[int, int]) -> set[str]:
    """Names holding sets just before ``pos``: the last binding strictly
    earlier in the text wins.

    A name whose events all lie *after* ``pos`` counts when any of them
    binds a set — a use textually above its binding reaches it through a
    loop back-edge, and the conservative answer keeps the flag.
    """
    names: set[str] = set()
    for name, events in bindings.items():
        before = [setish for event_pos, setish in events if event_pos < pos]
        if before:
            if before[-1]:
                names.add(name)
        elif any(setish for _, setish in events):
            names.add(name)
    return names


def local_set_names(func: ast.AST, facts: ModuleSetFacts) -> set[str]:
    """Names bound to set-ish values anywhere in ``func``'s own body.

    One flow-insensitive pass bootstrapped from literal bindings, then a
    second pass propagates through straight renames (``a = b``).
    """
    names: set[str] = set()
    # Parameters annotated as sets.
    args = getattr(func, "args", None)
    if args is not None:
        for arg in list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None and _is_set_annotation(arg.annotation):
                names.add(arg.arg)
    for _pass in range(2):
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and is_setish(
                        node.value, facts, names):
                    names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if (isinstance(node.target, ast.Name)
                        and _is_set_annotation(node.annotation)):
                    names.add(node.target.id)
            elif isinstance(node, ast.AugAssign):
                if (isinstance(node.target, ast.Name)
                        and isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                                 ast.Sub, ast.BitXor))
                        and is_setish(node.value, facts, names)):
                    names.add(node.target.id)
    return names


def is_setish(node: ast.AST, facts: ModuleSetFacts,
              local_names: Optional[set] = None) -> bool:
    """Whether ``node`` syntactically evaluates to a set."""
    local_names = local_names or set()
    if _is_set_literalish(node):
        return True
    if isinstance(node, ast.Name):
        return node.id in local_names
    if isinstance(node, ast.Attribute):
        return node.attr in KNOWN_SET_ATTRS or node.attr in facts.set_attrs
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (is_setish(node.left, facts, local_names)
                or is_setish(node.right, facts, local_names))
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if (func.id in _ORDER_PRESERVING_WRAPPERS and node.args
                    and is_setish(node.args[0], facts, local_names)):
                return True
            if func.id in facts.set_returns or func.id in KNOWN_SET_RETURNS:
                return True
        if isinstance(func, ast.Attribute):
            if (func.attr in _SET_METHODS
                    and is_setish(func.value, facts, local_names)):
                return True
            if (func.attr in facts.set_returns
                    or func.attr in KNOWN_SET_RETURNS):
                return True
    if isinstance(node, ast.IfExp):
        return (is_setish(node.body, facts, local_names)
                or is_setish(node.orelse, facts, local_names))
    return False
