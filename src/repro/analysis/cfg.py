"""Control-flow reasoning for the lock-discipline rule.

The repo's simulation locks (:class:`repro.sim.resources.Resource`) are
acquired inside generator processes with ``yield lock.acquire()`` and must
be released on *every* exit path — including the exceptional ones, because
the simulator throws :class:`~repro.sim.errors.Interrupt` into processes
at yield points (node crashes) and RPC helpers raise out of ``yield from``.

Instead of a full CFG we exploit the code shape this enforces: after an
acquire, the release must be reachable without crossing any statement that
can escape (``yield``, ``yield from``, ``raise``, ``return``, ``break``,
``continue``) unless those statements sit inside a ``try`` whose
``finally`` performs the release.  Concretely, scanning forward from the
acquire statement (falling out of enclosing blocks as control does), the
first of these must come before anything risky:

- a statement performing ``<lock>.release()``;
- a ``try`` statement whose ``finally`` block contains the release (the
  acquire may also itself sit inside such a ``try``).

A release under a conditional inside the ``finally`` counts (the repo's
``if escalated: lock.release()`` idiom); defining a closure that would
release later does not.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class LockProblem:
    """One unbalanced acquire."""

    lock: str            # source text of the lock expression
    node: ast.AST        # the acquire statement
    reason: str          # "no-release" | "unprotected:<detail>"


def _expr_text(node: ast.AST) -> str:
    return ast.unparse(node)


def _lock_call(node: ast.AST, method: str) -> Optional[str]:
    """If ``node`` is ``<expr>.method()``, return the text of ``<expr>``."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and not node.args and not node.keywords):
        return _expr_text(node.func.value)
    return None


def find_acquires(stmt: ast.stmt) -> list[tuple[str, Optional[str]]]:
    """Acquire calls performed by ``stmt`` itself (no nested statements).

    Returns ``(lock_text, bound_name)`` pairs; ``bound_name`` is set when
    the acquire grant is first assigned (``grant = lock.acquire()``) and
    yielded afterwards.
    """
    results = []
    if isinstance(stmt, ast.Expr):
        value = stmt.value
        if isinstance(value, ast.Yield) and value.value is not None:
            lock = _lock_call(value.value, "acquire")
            if lock is not None:
                results.append((lock, None))
        else:
            lock = _lock_call(value, "acquire")
            if lock is not None:
                results.append((lock, None))
    elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        lock = _lock_call(stmt.value, "acquire")
        if lock is not None and isinstance(stmt.targets[0], ast.Name):
            results.append((lock, stmt.targets[0].id))
    return results


def _contains_release(node: ast.AST, lock: str) -> bool:
    """Whether ``node``'s subtree (nested defs excluded) releases ``lock``."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)) and current is not node:
            continue
        if _lock_call(current, "release") == lock:
            return True
        stack.extend(ast.iter_child_nodes(current))
    return False


def _is_risky(stmt: ast.stmt, grant_name: Optional[str]) -> Optional[str]:
    """Why ``stmt`` can escape before a release is reached, or None.

    A bare ``yield <grant_name>`` is the second half of an assigned
    acquire (``grant = lock.acquire(); yield grant``) and is not risky:
    the lock is not held until that yield completes.
    """
    if (grant_name is not None
            and isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Yield)
            and isinstance(stmt.value.value, ast.Name)
            and stmt.value.value.id == grant_name):
        return None
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not stmt:
            continue  # statements inside nested defs do not run here
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return "a yield"
        if isinstance(node, ast.Raise):
            return "a raise"
        if isinstance(node, ast.Return):
            return "a return"
        if isinstance(node, (ast.Break, ast.Continue)):
            return "a loop exit"
        stack.extend(ast.iter_child_nodes(node))
    return None


def _block_chain(func: ast.AST, acquire: ast.stmt) -> list[list[ast.stmt]]:
    """Statement suffixes control falls through after ``acquire``.

    The first element is the remainder of the acquire's own block (after
    the acquire); subsequent elements are the remainders of each enclosing
    block, up to the function body.  Each suffix is paired with the ``try``
    statements whose body encloses the acquire, which the caller checks
    for a protecting ``finally``.
    """
    chains: list[list[ast.stmt]] = []

    def descend(stmts: list[ast.stmt]) -> bool:
        for index, stmt in enumerate(stmts):
            if stmt is acquire:
                chains.append(list(stmts[index + 1:]))
                return True
            for block in _child_blocks(stmt):
                if descend(block):
                    chains.append(list(stmts[index + 1:]))
                    return True
        return False

    descend(func.body)
    return chains


def _child_blocks(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return  # nested definitions are separate scopes, analyzed on their own
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            yield block
    for handler in getattr(stmt, "handlers", []) or []:
        yield handler.body


def _enclosing_trys(func: ast.AST, acquire: ast.stmt) -> list[ast.Try]:
    """``try`` statements whose *body* contains the acquire, innermost last."""
    found: list[ast.Try] = []

    def descend(stmts: list[ast.stmt], trys: list[ast.Try]) -> bool:
        for stmt in stmts:
            if stmt is acquire:
                found.extend(trys)
                return True
            if isinstance(stmt, ast.Try):
                if descend(stmt.body, trys + [stmt]):
                    return True
                for block in [stmt.orelse, stmt.finalbody] + [
                        h.body for h in stmt.handlers]:
                    if descend(block, trys):
                        return True
            else:
                for block in _child_blocks(stmt):
                    if descend(block, trys):
                        return True
        return False

    descend(func.body, [])
    return found


def check_lock_discipline(func: ast.AST) -> list[LockProblem]:
    """All unbalanced ``acquire()`` statements in ``func``'s own body."""
    problems: list[LockProblem] = []
    statements: list[ast.stmt] = []
    stack: list[ast.stmt] = list(func.body)
    while stack:
        stmt = stack.pop()
        statements.append(stmt)
        for block in _child_blocks(stmt):
            stack.extend(block)
    statements.sort(key=lambda s: (s.lineno, s.col_offset))

    for stmt in statements:
        for lock, grant_name in find_acquires(stmt):
            problem = _check_one(func, stmt, lock, grant_name)
            if problem is not None:
                problems.append(problem)
    return problems


def _check_one(func: ast.AST, acquire: ast.stmt, lock: str,
               grant_name: Optional[str]) -> Optional[LockProblem]:
    # Safe if an enclosing try's finally releases the lock.
    for try_stmt in _enclosing_trys(func, acquire):
        if any(_contains_release(s, lock) for s in try_stmt.finalbody):
            return None
    # Otherwise scan forward along the fall-through chain.
    for suffix in _block_chain(func, acquire):
        for stmt in suffix:
            if _lock_call(getattr(stmt, "value", None) or ast.Pass(),
                          "release") == lock:
                return None  # immediate release statement
            if (isinstance(stmt, ast.Try)
                    and any(_contains_release(s, lock)
                            for s in stmt.finalbody)):
                return None  # protected region begins before anything risky
            risk = _is_risky(stmt, grant_name)
            if risk is not None:
                return LockProblem(
                    lock, acquire,
                    f"unprotected: {risk} at line {stmt.lineno} can exit "
                    f"before {lock}.release(); wrap in try/finally",
                )
    return LockProblem(lock, acquire, "no-release")
