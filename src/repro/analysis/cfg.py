"""Lock-discipline checking for the PRO03 rule, on the real CFG.

The repo's simulation locks (:class:`repro.sim.resources.Resource`) are
acquired inside generator processes with ``yield lock.acquire()`` and must
be released on *every* exit path — including the exceptional ones, because
the simulator throws :class:`~repro.sim.errors.Interrupt` into processes
at yield points (node crashes) and RPC helpers raise out of ``yield from``.

The check walks the per-function CFG (:mod:`repro.analysis.flow`) forward
from each acquire.  A path is *closed* when it reaches a statement that
releases the lock, or the header of a ``try`` whose ``finally`` releases
it on every path.  Before a path closes, it must not pass an unprotected
escape:

- any suspension point (``yield`` / ``yield from``): the kernel can throw
  ``Interrupt`` right there and the frame unwinds without releasing;
- ``raise`` / ``return``: the frame exits explicitly.

An escape is *protected* when some enclosing ``try`` (entered through its
body/handler/else region — ``finally`` code runs during unwinding and
cannot rely on its own cleanup) has a ``finally`` that releases the lock
on every path.  "Every path" is a CFG property of the ``finally`` suite
itself, not subtree containment: a release inside the ``else:`` of a
``try`` nested in the ``finally`` covers only the no-exception path, and
the handler path would still leak — containment-style scanning used to
accept exactly that shape.  A release under a plain conditional still
counts via its ``if`` header (the repo's ``if escalated: lock.release()``
idiom: the condition models whether the lock is still held).

A path that falls off the end of the function without closing is reported
as ``no-release``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from repro.analysis.flow import (
    CFG, build_cfg, build_cfg_body, contains_yield, enclosing_trys,
    stmt_exprs,
)


@dataclass(frozen=True)
class LockProblem:
    """One unbalanced acquire."""

    lock: str            # source text of the lock expression
    node: ast.AST        # the acquire statement
    reason: str          # "no-release" | "unprotected: <detail>"


def _expr_text(node: ast.AST) -> str:
    return ast.unparse(node)


def _lock_call(node: ast.AST, method: str) -> Optional[str]:
    """If ``node`` is ``<expr>.method()``, return the text of ``<expr>``."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and not node.args and not node.keywords):
        return _expr_text(node.func.value)
    return None


def find_acquires(stmt: ast.stmt) -> list[tuple[str, Optional[str]]]:
    """Acquire calls performed by ``stmt`` itself (no nested statements).

    Returns ``(lock_text, bound_name)`` pairs; ``bound_name`` is set when
    the acquire grant is first assigned (``grant = lock.acquire()``) and
    yielded afterwards.
    """
    results = []
    if isinstance(stmt, ast.Expr):
        value = stmt.value
        if isinstance(value, ast.Yield) and value.value is not None:
            lock = _lock_call(value.value, "acquire")
            if lock is not None:
                results.append((lock, None))
        else:
            lock = _lock_call(value, "acquire")
            if lock is not None:
                results.append((lock, None))
    elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        lock = _lock_call(stmt.value, "acquire")
        if lock is not None and isinstance(stmt.targets[0], ast.Name):
            results.append((lock, stmt.targets[0].id))
    return results


def _contains_release(node: ast.AST, lock: str) -> bool:
    """Whether ``node``'s subtree (nested defs excluded) releases ``lock``."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)) and current is not node:
            continue
        if _lock_call(current, "release") == lock:
            return True
        stack.extend(ast.iter_child_nodes(current))
    return False


def _stmt_releases(stmt: ast.stmt, lock: str) -> bool:
    """Whether ``stmt`` itself evaluates ``<lock>.release()`` (compound
    headers count only their own expressions, not nested blocks)."""
    for expr in stmt_exprs(stmt):
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if _lock_call(node, "release") == lock:
                return True
            stack.extend(ast.iter_child_nodes(node))
    return False


def _always_releases(body: list[ast.stmt], lock: str) -> bool:
    """Every entry-to-fall-out path through ``body`` releases ``lock``.

    Covering statements close a path: a statement performing the release,
    an ``if`` header whose subtree releases (the conditional-release
    idiom), or a nested ``try`` whose ``finally`` recursively satisfies
    this predicate.  Paths that diverge (raise/return inside ``body``)
    are not fall-out paths and do not defeat coverage.
    """
    exit_marker = ast.Pass(lineno=0, col_offset=0)
    cfg = build_cfg_body(list(body) + [exit_marker])

    def covers(stmt: ast.stmt) -> bool:
        if _stmt_releases(stmt, lock):
            return True
        if isinstance(stmt, ast.If) and _contains_release(stmt, lock):
            return True
        if (isinstance(stmt, ast.Try) and stmt.finalbody
                and _always_releases(stmt.finalbody, lock)):
            return True
        return False

    seen: set[int] = {cfg.entry.bid}
    stack = [cfg.entry]
    while stack:
        block = stack.pop()
        blocked = False
        for stmt in block.stmts:
            if stmt is exit_marker:
                return False  # an uncovered path reached the fall-out
            if covers(stmt):
                blocked = True
                break
        if blocked:
            continue
        for succ in block.succ:
            if succ.bid not in seen:
                seen.add(succ.bid)
                stack.append(succ)
    return True


def _protected(func: ast.AST, stmt: ast.stmt, lock: str) -> bool:
    """An enclosing try/finally releases ``lock`` when ``stmt`` escapes.

    Only enclosure through the body/handler/else regions counts: code in
    a ``finally`` is already unwinding and cannot rely on its own suite
    to run again.
    """
    for try_stmt, region in enclosing_trys(func.body, stmt):
        if region == "finally":
            continue
        if try_stmt.finalbody and _always_releases(try_stmt.finalbody, lock):
            return True
    return False


def _escape(stmt: ast.stmt, grant_name: Optional[str]) -> Optional[str]:
    """Why executing ``stmt`` can exit the frame while the lock is held.

    A bare ``yield <grant_name>`` is the second half of an assigned
    acquire (``grant = lock.acquire(); yield grant``) and is not an
    escape: the lock is not held until that yield completes.
    """
    if (grant_name is not None
            and isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Yield)
            and isinstance(stmt.value.value, ast.Name)
            and stmt.value.value.id == grant_name):
        return None
    if contains_yield(stmt) is not None:
        return "a yield"
    if isinstance(stmt, ast.Raise):
        return "a raise"
    if isinstance(stmt, ast.Return):
        return "a return"
    return None


def check_lock_discipline(func: ast.AST) -> list[LockProblem]:
    """All unbalanced ``acquire()`` statements in ``func``'s own body."""
    problems: list[LockProblem] = []
    cfg = build_cfg(func)
    statements = sorted(cfg.statements(),
                        key=lambda s: (s.lineno, s.col_offset))
    for stmt in statements:
        for lock, grant_name in find_acquires(stmt):
            problem = _check_one(func, cfg, stmt, lock, grant_name)
            if problem is not None:
                problems.append(problem)
    return problems


def _check_one(func: ast.AST, cfg: CFG, acquire: ast.stmt, lock: str,
               grant_name: Optional[str]) -> Optional[LockProblem]:
    if _protected(func, acquire, lock):
        return None  # the acquire sits inside a releasing try/finally

    def closes(stmt: ast.stmt) -> bool:
        return (_stmt_releases(stmt, lock)
                or (isinstance(stmt, ast.Try) and stmt.finalbody
                    and _always_releases(stmt.finalbody, lock)))

    escapes: list[tuple[int, int, str]] = []
    leaks_out = False
    acq_block, acq_index = cfg.locate(acquire)
    # Walk forward from the acquire.  Re-entering the acquire's block from
    # a back-edge rescans it from the top: statements lexically before the
    # acquire do run while the lock is held on looping paths.
    seen: set[int] = set()
    stack = [(acq_block, acq_index + 1)]
    while stack:
        block, start = stack.pop()
        alive = True
        for stmt in block.stmts[start:]:
            if closes(stmt):
                alive = False
                break
            label = _escape(stmt, grant_name)
            if label is not None and not _protected(func, stmt, lock):
                escapes.append((stmt.lineno, stmt.col_offset, label))
        if not alive:
            continue
        if not block.succ:
            if not block.terminal:
                leaks_out = True  # fell off the end still holding the lock
            continue
        for succ in block.succ:
            if succ.bid not in seen:
                seen.add(succ.bid)
                stack.append((succ, 0))
    if escapes:
        line, _, label = min(escapes)
        return LockProblem(
            lock, acquire,
            f"unprotected: {label} at line {line} can exit before "
            f"{lock}.release(); wrap in try/finally",
        )
    if leaks_out:
        return LockProblem(lock, acquire, "no-release")
    return None
