"""Interprocedural may-suspend summaries for the analyzed tree.

A statement in a sim process is a *suspension point* when executing it
can return control to the simulator kernel — other processes then run,
shared state moves underneath the suspended frame, and the kernel may
throw :class:`~repro.sim.errors.Interrupt` right there.  Syntactically:

- every ``yield <expr>`` is a suspension point (timeouts, event waits,
  ``yield lock.acquire()``);
- a ``yield from helper(...)`` suspends iff the *delegate* can suspend.
  The analyzer builds a call graph over the analyzed modules and
  computes the least may-suspend fixpoint: a function may suspend when
  its own body yields, or when it ``yield from``-delegates to a
  function that may suspend (transitively).  Delegates that cannot be
  resolved inside the tree — RPC endpoints, storage handles, foreign
  generators — are conservatively assumed to suspend, which matches
  every such helper in this repo (``endpoint.call``, ``storage.read`` /
  ``write``, ...).

The summary is what makes the atomicity rules interprocedural: a
``yield from self._append_log(...)`` three helpers deep is a suspension
point in the caller exactly when some function on the delegation chain
actually yields.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.flow import stmt_exprs

__all__ = ["ProjectSummaries", "KNOWN_SUSPENDING_ATTRS"]

#: Methods on objects outside the analyzed tree that are known to
#: suspend when delegated to (the RPC/storage/resource surface).
KNOWN_SUSPENDING_ATTRS = frozenset({
    "call", "notify", "read", "write", "acquire", "timeout", "wait",
    "sleep", "all_of", "any_of", "invoke", "join",
})


class _FuncInfo:
    __slots__ = ("node", "module_index", "class_name", "direct_yield",
                 "delegates", "may_suspend")

    def __init__(self, node: ast.AST, module_index: int,
                 class_name: Optional[str]):
        self.node = node
        self.module_index = module_index
        self.class_name = class_name
        self.direct_yield = False
        #: YieldFrom delegate descriptors gathered from the own body.
        self.delegates: list[ast.YieldFrom] = []
        self.may_suspend = False


class ProjectSummaries:
    """Call graph + may-suspend fixpoint over a set of modules.

    ``modules`` may be :class:`~repro.analysis.engine.ModuleInfo`
    objects, ``ast.Module`` trees, or anything with a ``.tree``.
    """

    def __init__(self, modules: Iterable[object]):
        self._infos: dict[ast.AST, _FuncInfo] = {}      # func node -> info
        self._by_name: dict[str, list[_FuncInfo]] = {}  # bare name
        self._by_class: dict[tuple[str, str], list[_FuncInfo]] = {}
        self._module_functions: list[dict[str, _FuncInfo]] = []
        for index, module in enumerate(modules):
            tree = getattr(module, "tree", module)
            self._index_module(tree, index)
        self._solve()

    # -- indexing ---------------------------------------------------------
    def _index_module(self, tree: ast.Module, module_index: int) -> None:
        module_level: dict[str, _FuncInfo] = {}
        self._module_functions.append(module_level)

        def visit(node: ast.AST, class_name: Optional[str],
                  at_module_level: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = _FuncInfo(child, module_index, class_name)
                    self._collect_body(info)
                    self._infos[child] = info
                    self._by_name.setdefault(child.name, []).append(info)
                    if class_name is not None:
                        self._by_class.setdefault(
                            (class_name, child.name), []).append(info)
                    elif at_module_level:
                        module_level[child.name] = info
                    visit(child, None, False)  # nested defs: own frames
                elif isinstance(child, ast.ClassDef):
                    visit(child, child.name, False)
                else:
                    visit(child, class_name, at_module_level)

        visit(tree, None, True)

    def _collect_body(self, info: _FuncInfo) -> None:
        stack: list[ast.AST] = list(info.node.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Yield):
                info.direct_yield = True
            elif isinstance(node, ast.YieldFrom):
                info.delegates.append(node)
            stack.extend(ast.iter_child_nodes(node))

    # -- fixpoint ---------------------------------------------------------
    def _solve(self) -> None:
        for info in self._infos.values():
            info.may_suspend = info.direct_yield
        changed = True
        while changed:
            changed = False
            for info in self._infos.values():
                if info.may_suspend:
                    continue
                for delegate in info.delegates:
                    if self._delegate_suspends(delegate, info):
                        info.may_suspend = True
                        changed = True
                        break

    def _resolve(self, call: ast.Call,
                 context: _FuncInfo) -> Optional[list[_FuncInfo]]:
        """Candidate targets of a delegate call, None when unresolvable."""
        func = call.func
        if isinstance(func, ast.Name):
            local = self._module_functions[context.module_index].get(func.id)
            if local is not None:
                return [local]
            return self._by_name.get(func.id)
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name) and func.value.id == "self"
                    and context.class_name is not None):
                exact = self._by_class.get((context.class_name, func.attr))
                if exact:
                    return exact
            if func.attr in KNOWN_SUSPENDING_ATTRS:
                # endpoint.call / storage.read / lock.acquire / ...: the
                # RPC-and-resources surface outside the tree.  A bare-name
                # coincidence with some analyzed method must not launder
                # these into "proven non-suspending".
                return None
            # Same-named method anywhere in the tree: a may-union.
            return self._by_name.get(func.attr)
        return None

    def _delegate_suspends(self, node: ast.YieldFrom,
                           context: _FuncInfo) -> bool:
        value = node.value
        if not isinstance(value, ast.Call):
            return True  # yield from <generator object>: unknown origin
        targets = self._resolve(value, context)
        if targets:
            return any(target.may_suspend for target in targets)
        return True  # outside the analyzed tree: assumed to suspend

    # -- public queries ---------------------------------------------------
    def may_suspend(self, func: ast.AST) -> bool:
        """Whether ``func`` (a FunctionDef analyzed here) can suspend."""
        info = self._infos.get(func)
        if info is None:
            return True
        return info.may_suspend

    def suspension_in(self, stmt: ast.stmt,
                      context_func: ast.AST) -> Optional[ast.AST]:
        """The Yield/YieldFrom making ``stmt`` a suspension point, if any.

        Only expressions the statement itself evaluates are considered
        (compound-statement bodies are separate statements); ``yield
        from`` delegates are classified through the fixpoint summary.
        """
        info = self._infos.get(context_func)
        for expr in stmt_exprs(stmt):
            stack: list[ast.AST] = [expr]
            while stack:
                node = stack.pop()
                if isinstance(node, ast.Lambda):
                    continue
                if isinstance(node, ast.Yield):
                    return node
                if isinstance(node, ast.YieldFrom):
                    if info is None or self._delegate_suspends(node, info):
                        return node
                    continue  # proven non-suspending delegation
                stack.extend(ast.iter_child_nodes(node))
        return None

    def stmt_suspends(self, stmt: ast.stmt, context_func: ast.AST) -> bool:
        return self.suspension_in(stmt, context_func) is not None
