"""Multi-region topology: named regions with a cross-region RTT matrix.

A :class:`RegionTopology` assigns cluster nodes to named regions and
adds an *extra* round-trip cost on top of the base
:class:`~repro.config.LatencyModel` for every cross-region hop:

- node→node messages between different regions pay half the pair's
  extra RTT each way (the base internode latency models the in-region
  fabric);
- storage operations pay the full extra RTT between the caller's region
  and the region hosting global storage (the backing store lives
  somewhere specific — cross-region readers eat a WAN round trip).

Intra-region traffic and single-region topologies are byte-identical to
runs with no topology at all: the extra term is exactly 0.0 and no code
path diverges, which is what lets the CI topology matrix fingerprint
flat and regional runs side by side.

Control-plane nodes (the coordinator, per-app controllers) are not in
the node→region map; they resolve to the *default region* (the first
region named), as does the storage service unless placed explicitly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

RttMatrix = Union[float, Mapping[Tuple[str, str], float]]


class RegionTopology:
    """Named regions, node assignment, and a per-region-pair RTT matrix."""

    def __init__(
        self,
        regions: Iterable[str],
        node_regions: Mapping[str, str],
        extra_rtt_ms: RttMatrix = 60.0,
        storage_region: Optional[str] = None,
    ):
        self.regions: Tuple[str, ...] = tuple(regions)
        if not self.regions:
            raise ValueError("RegionTopology needs at least one region")
        if len(set(self.regions)) != len(self.regions):
            raise ValueError(f"duplicate region names: {self.regions}")
        known = set(self.regions)
        self.node_regions: Dict[str, str] = dict(node_regions)
        for node, region in self.node_regions.items():
            if region not in known:
                raise ValueError(
                    f"node {node!r} assigned to unknown region {region!r}")
        self.default_region = self.regions[0]
        self.storage_region = storage_region or self.default_region
        if self.storage_region not in known:
            raise ValueError(
                f"storage placed in unknown region {self.storage_region!r}")
        self._extra: Dict[Tuple[str, str], float] = {}
        if isinstance(extra_rtt_ms, Mapping):
            for (a, b), rtt in extra_rtt_ms.items():
                if a not in known or b not in known:
                    raise ValueError(
                        f"RTT matrix names unknown region pair ({a!r}, {b!r})")
                if rtt < 0:
                    raise ValueError(f"negative RTT for ({a!r}, {b!r})")
                self._extra[(a, b)] = float(rtt)
                self._extra[(b, a)] = float(rtt)
        else:
            rtt = float(extra_rtt_ms)
            if rtt < 0:
                raise ValueError("extra_rtt_ms must be >= 0")
            for a in self.regions:
                for b in self.regions:
                    if a != b:
                        self._extra[(a, b)] = rtt

    @classmethod
    def even(cls, node_ids: Iterable[str],
             regions: Iterable[str] = ("east", "west"),
             extra_rtt_ms: RttMatrix = 60.0,
             storage_region: Optional[str] = None) -> "RegionTopology":
        """Round-robin ``node_ids`` over ``regions`` in the order given."""
        regions = tuple(regions)
        assignment = {node: regions[index % len(regions)]
                      for index, node in enumerate(node_ids)}
        return cls(regions, assignment, extra_rtt_ms, storage_region)

    # -- lookups ------------------------------------------------------------
    def region_of(self, node: str) -> str:
        """``node``'s region (default region for control-plane nodes)."""
        return self.node_regions.get(node, self.default_region)

    def nodes_in(self, region: str) -> Tuple[str, ...]:
        """The nodes assigned to ``region``, in assignment order."""
        if region not in self.regions:
            raise ValueError(f"unknown region {region!r}")
        return tuple(node for node, r in self.node_regions.items()
                     if r == region)

    def extra_rtt_ms(self, region_a: str, region_b: str) -> float:
        """Extra round-trip cost between two regions (0.0 within one)."""
        if region_a == region_b:
            return 0.0
        return self._extra.get((region_a, region_b), 0.0)

    def extra_one_way_ms(self, src_node: str, dst_node: str) -> float:
        """Extra one-way cost for a message ``src_node`` → ``dst_node``."""
        return self.extra_rtt_ms(self.region_of(src_node),
                                 self.region_of(dst_node)) / 2.0

    def storage_extra_ms(self, node: str) -> float:
        """Extra round-trip cost for ``node`` reaching global storage."""
        return self.extra_rtt_ms(self.region_of(node), self.storage_region)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RegionTopology(regions={self.regions!r}, "
                f"storage={self.storage_region!r}, "
                f"nodes={len(self.node_regions)})")
