"""Size accounting for simulated payloads.

The simulator never materializes real byte buffers; payload sizes drive the
serialization term of the latency model.  Any object exposing a
``size_bytes`` attribute declares its own wire size; common primitives get
reasonable defaults.
"""

from __future__ import annotations

DEFAULT_OBJECT_SIZE = 64


def sizeof(value: object) -> int:
    """Wire size in bytes of ``value`` for latency accounting."""
    if value is None:
        return 0
    declared = getattr(value, "size_bytes", None)
    if declared is not None:
        return int(declared)
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(sizeof(item) for item in value)
    if isinstance(value, dict):
        return sum(sizeof(k) + sizeof(v) for k, v in value.items())
    return DEFAULT_OBJECT_SIZE
