"""Internode message fabric and RPC layer."""

from repro.net.fabric import Message, Network, NetworkStats
from repro.net.regions import RegionTopology
from repro.net.rpc import Endpoint, Reply, RpcError, RpcTimeout, UnreachableError
from repro.net.sizes import sizeof

__all__ = [
    "Endpoint",
    "Message",
    "Network",
    "NetworkStats",
    "RegionTopology",
    "Reply",
    "RpcError",
    "RpcTimeout",
    "UnreachableError",
    "sizeof",
]
