"""Request/response RPC endpoints on top of the message fabric.

Handlers are generator functions (simulation processes) registered by
method name::

    def handle_read(endpoint, src, args):
        yield endpoint.sim.timeout(0.1)
        return Reply({"value": ...}, size_bytes=4096)

    endpoint.register_handler("read", handle_read)

Callers use :meth:`Endpoint.call`, which yields the response value or
raises :class:`RpcTimeout` when the peer never answers (crashed node,
dropped message) — mirroring how the real system detects unreachable
peers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.net.fabric import Message, Network
from repro.net.sizes import sizeof
from repro.obs.events import RPC_RESET, RPC_TIMEOUT
from repro.sim.errors import Interrupt
from repro.sim.events import PENDING, Event
from repro.trace.tracer import INHERIT, TraceContext  # noqa: F401 - re-export

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator

#: Library-wide RPC timeout.  Callers that have no system-level timeout
#: config should pass this explicitly (the PRO02 static-analysis rule
#: requires every call site to name its timeout path).
DEFAULT_RPC_TIMEOUT_MS = 5000.0


class RpcError(Exception):
    """Base class for RPC-level failures."""


class RpcTimeout(RpcError):
    """The peer did not answer within the timeout."""

    def __init__(self, dst: str, method: str, timeout: float):
        super().__init__(f"rpc {method!r} to {dst} timed out after {timeout}ms")
        self.dst = dst
        self.method = method
        self.timeout = timeout


class PeerDown(RpcTimeout):
    """The peer's node is down; the transport failed the call fast.

    Raised instead of waiting out the full RPC timeout when the fabric
    runs with ``fail_fast`` (armed by the fault injector): the caller
    gets connection-reset semantics after one propagation delay.
    Subclassing :class:`RpcTimeout` makes the error retriable everywhere
    the protocol already handles unanswered calls.
    """

    def __init__(self, dst: str, method: str, after_ms: float = 0.0):
        super().__init__(dst, method, after_ms)


class UnreachableError(RpcError):
    """Raised by a handler to signal the destination rejected the call."""


@dataclass
class Reply:
    """A handler's response value plus its wire size.

    ``meta`` piggybacks scheme-level metadata on the response message
    (the causal scheme's vector clocks); callers retrieve it by passing
    ``with_meta=True`` to :meth:`Endpoint.call`.
    """

    value: object
    size_bytes: Optional[int] = None
    meta: Optional[object] = None

    def wire_size(self) -> int:
        return self.size_bytes if self.size_bytes is not None else sizeof(self.value)


@dataclass
class _RemoteFailure:
    """Marshalled handler exception travelling back to the caller."""

    exception: BaseException


Handler = Callable[["Endpoint", str, object], Generator]

#: request kind -> interned "reply:<kind>" string (method names form a
#: small closed set, so the memo stays tiny).
_REPLY_KINDS: dict = {}


class _RpcWaiter(Event):
    """The client-side gate one in-flight RPC blocks on.

    Replaces the old response-``Event`` + 5000 ms ``Timeout`` + ``AnyOf``
    triple with a single event plus two raw schedule entries, while
    occupying the exact same ``(time, seq)`` slots so pop order — and
    therefore every simulated counter — is unchanged:

    - the *deadline* is a raw :meth:`Simulator.call_at` entry in the slot
      the old ``Timeout`` used; it fires :meth:`_deadline`, which triggers
      the gate only if nothing else already has (stale deadlines drain as
      no-ops, exactly like the old timers left in the heap);
    - response delivery records the payload on the waiter
      (unconditionally — a same-tick-as-deadline response must still win,
      matching the old code where the response event fired independently
      of the race) and, if the gate is still pending, schedules
      :meth:`_fire` via ``call_soon`` in the slot the old response
      event's processing used; ``_fire`` then triggers the gate in the
      slot the old ``AnyOf`` hop used.

    The caller inspects ``resp_done`` after the yield: the old code's
    ``response.triggered`` check, verbatim.
    """

    __slots__ = ("resp_done", "resp_value", "resp_exc", "resp_meta")

    def __init__(self, sim):
        self.sim = sim
        self.name = "rpc-wait"
        self._state = PENDING
        self._value = None
        self._exc = None
        self.callbacks = []
        self._defused = False
        #: Whether a response (value or remote failure) was delivered.
        self.resp_done = False
        self.resp_value = None
        self.resp_exc: Optional[BaseException] = None
        #: Metadata piggybacked on the response (Reply.meta), if any.
        self.resp_meta = None

    def _fire(self, _arg=None) -> None:
        """Second hop of response delivery (the old AnyOf hop's slot)."""
        if self._state is PENDING:
            exc = self.resp_exc
            if exc is not None:
                self.fail(exc)
            else:
                self.succeed(self.resp_value)

    def _deadline(self, _arg=None) -> None:
        """RPC deadline reached; a no-op if the gate already fired."""
        if self._state is PENDING:
            self.succeed(None)

    def _reject(self, error: BaseException) -> None:
        """Fail-fast rejection hop (scheduled by Endpoint.reject_call)."""
        if self._state is PENDING:
            self.fail(error)


class Endpoint:
    """A named RPC party attached to the network.

    One endpoint per (node, service); the address is
    ``"<node_id>/<service>"``.  Incoming requests spawn one handler process
    each; a node crash interrupts all in-flight handlers (their responses
    are never sent).
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        network: Network,
        node_id: str,
        service: str,
        service_time_ms: float = 0.0,
        cpu=None,
    ):
        self.network = network
        self.sim: "Simulator" = network.sim
        self.node_id = node_id
        self.service = service
        self.address = f"{node_id}/{service}"
        self._handlers: dict[str, Handler] = {}
        #: Methods whose handler takes the request's piggybacked metadata
        #: as a fourth argument (dict used as a set; membership only).
        self._meta_handlers: dict = {}
        #: method -> interned handler-process name "rpc:<addr>:<method>".
        self._spawn_names: dict[str, str] = {}
        self._pending: dict[int, "_RpcWaiter"] = {}
        #: request_id -> (dst_node, dst_address, method) for in-flight
        #: calls, so a declared node crash can fail them fast
        #: (insertion-ordered: rejection order must not depend on hashes).
        self._pending_dst: dict[int, tuple] = {}
        # Dict used as an insertion-ordered set: kill_inflight_handlers()
        # iterates it, and interrupt order must not depend on hash order.
        self._inflight_handlers: dict = {}
        #: CPU cost of accepting one request.  A server process handles
        #: requests one at a time for this slice, so a hot endpoint (e.g.
        #: the cache agent homing a popular key) becomes a queueing
        #: contention point under load — the effect Concord's local hits
        #: avoid and the versioning/single-home baselines suffer.
        self.service_time_ms = service_time_ms
        #: Optional CPU resource (the node's cores): the service slice
        #: competes with function execution for compute, so remote-heavy
        #: caching schemes lose cluster capacity to coherence work.
        self._cpu = cpu
        self._server = None
        #: Client-side calls that never got an answer (peer crashed or
        #: message dropped); sampled as rpc_timeouts_total.
        self.timeouts = 0
        #: Client-side calls failed fast with :class:`PeerDown`
        #: (fail-fast fabric only); sampled as rpc_peer_resets_total.
        self.resets = 0
        if service_time_ms > 0.0:
            from repro.sim.resources import Resource

            self._server = Resource(self.sim, capacity=1, name=f"srv:{self.address}")
        network.register(self)
        metrics = self.sim.metrics
        if metrics.active:
            metrics.gauge(
                "rpc_inflight", "Client calls awaiting a response.",
                labelnames=("node", "service"),
            ).set_callback(lambda: len(self._pending),
                           node=node_id, service=service)
            metrics.counter(
                "rpc_timeouts_total", "Client calls that timed out.",
                labelnames=("node", "service"),
            ).set_callback(lambda: self.timeouts,
                           node=node_id, service=service)
            metrics.counter(
                "rpc_peer_resets_total",
                "Client calls failed fast because the peer node was down.",
                labelnames=("node", "service"),
            ).set_callback(lambda: self.resets,
                           node=node_id, service=service)

    def close(self) -> None:
        """Detach from the network and abort in-flight handlers."""
        self.kill_inflight_handlers()
        self.network.unregister(self.address)

    # -- server side ---------------------------------------------------------
    def register_handler(self, method: str, handler: Handler,
                         meta: bool = False) -> None:
        """Register the generator function serving ``method``.

        With ``meta=True`` the handler receives the request's piggybacked
        metadata as a fourth argument: ``handler(endpoint, src, args,
        meta)``.  Handlers return metadata to the caller via
        :class:`Reply`'s ``meta`` field.
        """
        self._handlers[method] = handler
        if meta:
            self._meta_handlers[method] = None

    def kill_inflight_handlers(self) -> None:
        """Interrupt every running handler (crash semantics)."""
        for process in list(self._inflight_handlers):
            process.interrupt("node failure")
        self._inflight_handlers.clear()

    # -- fail-fast plumbing (fault injection) -------------------------------
    def reject_call(self, request_id: int, error: RpcError) -> None:
        """Fail the pending call ``request_id`` with ``error`` (idempotent)."""
        waiter = self._pending.pop(request_id, None)
        self._pending_dst.pop(request_id, None)
        if waiter is not None and not waiter.resp_done:
            self.resets += 1
            obs = self.sim.obs
            if obs.active:
                obs.emit(RPC_RESET, node=self.address, reason=type(error).__name__)
            # Two schedule hops to the caller (reject entry, then the
            # waiter's own processing) — the same slots the old
            # response-event failure + AnyOf hop occupied.
            self.sim.call_soon(waiter._reject, error)

    def fail_calls_to(self, node_id: str) -> None:
        """Fail every in-flight call addressed to ``node_id`` fast."""
        matching = [
            (request_id, dst, method)
            for request_id, (dst_node, dst, method) in self._pending_dst.items()
            if dst_node == node_id
        ]
        for request_id, dst, method in matching:
            self.reject_call(request_id, PeerDown(dst, method))

    def _receive(self, message: Message) -> None:
        if message.is_response:
            waiter = self._pending.pop(message.request_id, None)
            self._pending_dst.pop(message.request_id, None)
            if waiter is not None:
                payload = message.payload
                if isinstance(payload, _RemoteFailure):
                    waiter.resp_exc = payload.exception
                else:
                    waiter.resp_value = payload
                    waiter.resp_meta = message.meta
                # Recorded even when the deadline already fired this tick:
                # the caller resumes later in the tick and must see the
                # response (the old response event fired independently of
                # the AnyOf race, and call() checked response.triggered).
                waiter.resp_done = True
                if waiter._state is PENDING:
                    self.sim.call_soon(waiter._fire)
            return
        method, args = message.payload
        handler = self._handlers.get(method)
        if handler is None:
            self._respond(message, _RemoteFailure(RpcError(
                f"no handler for {method!r} at {self.address}")), 0)
            return
        name = self._spawn_names.get(method)
        if name is None:
            name = f"rpc:{self.address}:{method}"
            self._spawn_names[method] = name
        # When tracing is off, skip the _run_handler span wrapper entirely
        # (yield-from is transparent, so dropping the layer changes no
        # scheduling — it only removes a Python frame per request).
        if self.sim.tracer.active:
            body = self._run_handler(handler, message)
        else:
            body = self._serve(handler, message)
        process = self.sim.spawn(body, name=name, daemon=True)
        # The handler joins the caller's span tree: its ambient context is
        # whatever TraceContext travelled with the request.
        process.trace_ctx = message.trace
        self._inflight_handlers[process] = None
        process.callbacks.append(self._handler_done)

    def _handler_done(self, process: Event) -> None:
        # Event callbacks receive the firing event — here the handler
        # process itself, so no per-request closure is needed.
        self._inflight_handlers.pop(process, None)

    def _run_handler(self, handler: Handler, message: Message):
        # Server-side span: covers the service slice (queueing at a hot
        # agent) plus the handler body.  _serve() swallows Interrupt, so
        # the span ends on every path, including node crashes.  Only used
        # when tracing is on; _receive spawns _serve directly otherwise.
        with self.sim.tracer.span(f"serve:{message.kind}", "rpc.server",
                                  src=message.src, addr=self.address):
            yield from self._serve(handler, message)

    def _serve(self, handler: Handler, message: Message):
        try:
            if self._server is not None:
                yield self._server.acquire_wait()
                try:
                    if self._cpu is not None:
                        yield self._cpu.acquire_wait()
                        try:
                            yield self.sim.sleep(self.service_time_ms)
                        finally:
                            self._cpu.release()
                    else:
                        yield self.sim.sleep(self.service_time_ms)
                finally:
                    self._server.release()
            if message.kind in self._meta_handlers:
                result = yield from handler(
                    self, message.src, message.payload[1], message.meta)
            else:
                result = yield from handler(
                    self, message.src, message.payload[1])
        except Interrupt:
            return  # crashed mid-handling; no response ever leaves
        except RpcError as exc:
            self._respond(message, _RemoteFailure(exc), 0)
            return
        if isinstance(result, Reply):
            self._respond(message, result.value, result.wire_size(),
                          meta=result.meta)
        else:
            self._respond(message, result, sizeof(result))

    def _respond(self, request: Message, value: object, size_bytes: int,
                 meta: Optional[object] = None) -> None:
        if request.request_id is None:
            return  # one-way notify: nobody is waiting
        kind = request.kind
        reply_kind = _REPLY_KINDS.get(kind)
        if reply_kind is None:
            reply_kind = "reply:" + kind
            _REPLY_KINDS[kind] = reply_kind
        self.network.send(Message(
            src=self.address,
            dst=request.src,
            kind=reply_kind,
            payload=value,
            size_bytes=size_bytes,
            request_id=request.request_id,
            is_response=True,
            meta=meta,
        ))

    # -- client side ---------------------------------------------------------
    def call(
        self,
        dst: str,
        method: str,
        args: object = None,
        size_bytes: Optional[int] = None,
        timeout: Optional[float] = None,
        trace=INHERIT,
        meta: Optional[object] = None,
        with_meta: bool = False,
    ):
        """Issue an RPC; yields from a generator returning the response.

        ``meta`` piggybacks scheme-level metadata on the request (the
        handler sees it when registered with ``meta=True``); with
        ``with_meta=True`` the call returns ``(value, reply_meta)``
        instead of the bare value, where ``reply_meta`` is whatever the
        handler attached to its :class:`Reply` (None otherwise).

        Usage inside a process::

            value = yield from endpoint.call("node1/agent", "read", {...})

        Raises :class:`RpcTimeout` if no response arrives within
        ``timeout`` ms (default 5000), and re-raises any :class:`RpcError`
        the handler failed with.

        ``trace`` names the call's position in the span tree (TRC01):
        the default :data:`INHERIT` attaches to the calling process's
        ambient :class:`TraceContext`; pass an explicit context/span to
        re-parent, or ``None`` to start a fresh trace.  The context
        travels with the request, and the client span survives the
        timeout path (ended in a ``finally`` with ``status=timeout``),
        so retries issued afterwards join the same operation's trace.
        """
        sim = self.sim
        tracer = sim.tracer
        span = None
        ctx = None
        if tracer.active:
            span = tracer.span(f"rpc:{method}", "rpc", parent=trace, dst=dst)
            ctx = span.context
        try:
            request_id = next(self._ids)
            waiter = _RpcWaiter(sim)
            self._pending[request_id] = waiter
            self._pending_dst[request_id] = (
                Network.node_of(dst), dst, method)
            try:
                self.network.send(Message(
                    src=self.address,
                    dst=dst,
                    kind=method,
                    payload=(method, args),
                    size_bytes=(size_bytes if size_bytes is not None
                                else sizeof(args)),
                    request_id=request_id,
                    trace=ctx,
                    meta=meta,
                ))
                limit = (timeout if timeout is not None
                         else DEFAULT_RPC_TIMEOUT_MS)
                # The deadline is a raw entry in the slot the old Timeout
                # used; it stays in the wheel as a no-op after a response
                # wins, exactly like the stale timers the old code left
                # in the heap.
                sim.call_at(sim.now + limit, waiter._deadline)
                yield waiter
                if waiter.resp_done:
                    exc = waiter.resp_exc
                    if exc is not None:
                        # Late same-tick remote failure (deadline fired
                        # first): the old code raised it from
                        # response.value; re-raise it here unchanged.
                        raise exc
                    if with_meta:
                        return waiter.resp_value, waiter.resp_meta
                    return waiter.resp_value
                self.timeouts += 1
                obs = sim.obs
                if obs.active:
                    obs.emit(RPC_TIMEOUT, node=self.address, dst=dst,
                             method=method, limit_ms=limit)
                if span is not None:
                    span.set("status", "timeout")
                raise RpcTimeout(dst, method, limit)
            finally:
                # The in-flight window closes on every exit.  Response
                # delivery already popped these; the timeout path — and an
                # Interrupt thrown at the yield when the caller's node
                # crashes — must not leak the entry (the rpc_inflight
                # gauge and fail_calls_to() scans would keep seeing it).
                self._pending.pop(request_id, None)
                self._pending_dst.pop(request_id, None)
        finally:
            if span is not None:
                span.end()

    def notify(
        self,
        dst: str,
        method: str,
        args: object = None,
        size_bytes: Optional[int] = None,
        trace=INHERIT,
        meta: Optional[object] = None,
    ) -> None:
        """Fire-and-forget one-way message (no response expected).

        ``trace`` works as in :meth:`call`: the resolved TraceContext
        rides along so the receiving handler joins the span tree, but no
        client span is opened (there is nothing to wait for).  ``meta``
        piggybacks scheme metadata exactly as in :meth:`call`.
        """
        tracer = self.sim.tracer
        ctx = tracer.resolve(trace) if tracer.active else None
        self.network.send(Message(
            src=self.address,
            dst=dst,
            kind=method,
            payload=(method, args),
            size_bytes=size_bytes if size_bytes is not None else sizeof(args),
            request_id=None,
            trace=ctx,
            meta=meta,
        ))
