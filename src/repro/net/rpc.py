"""Request/response RPC endpoints on top of the message fabric.

Handlers are generator functions (simulation processes) registered by
method name::

    def handle_read(endpoint, src, args):
        yield endpoint.sim.timeout(0.1)
        return Reply({"value": ...}, size_bytes=4096)

    endpoint.register_handler("read", handle_read)

Callers use :meth:`Endpoint.call`, which yields the response value or
raises :class:`RpcTimeout` when the peer never answers (crashed node,
dropped message) — mirroring how the real system detects unreachable
peers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.net.fabric import Message, Network
from repro.net.sizes import sizeof
from repro.sim.errors import Interrupt
from repro.sim.events import Event
from repro.trace.tracer import INHERIT, TraceContext  # noqa: F401 - re-export

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator

#: Library-wide RPC timeout.  Callers that have no system-level timeout
#: config should pass this explicitly (the PRO02 static-analysis rule
#: requires every call site to name its timeout path).
DEFAULT_RPC_TIMEOUT_MS = 5000.0


class RpcError(Exception):
    """Base class for RPC-level failures."""


class RpcTimeout(RpcError):
    """The peer did not answer within the timeout."""

    def __init__(self, dst: str, method: str, timeout: float):
        super().__init__(f"rpc {method!r} to {dst} timed out after {timeout}ms")
        self.dst = dst
        self.method = method
        self.timeout = timeout


class PeerDown(RpcTimeout):
    """The peer's node is down; the transport failed the call fast.

    Raised instead of waiting out the full RPC timeout when the fabric
    runs with ``fail_fast`` (armed by the fault injector): the caller
    gets connection-reset semantics after one propagation delay.
    Subclassing :class:`RpcTimeout` makes the error retriable everywhere
    the protocol already handles unanswered calls.
    """

    def __init__(self, dst: str, method: str, after_ms: float = 0.0):
        super().__init__(dst, method, after_ms)


class UnreachableError(RpcError):
    """Raised by a handler to signal the destination rejected the call."""


@dataclass
class Reply:
    """A handler's response value plus its wire size."""

    value: object
    size_bytes: Optional[int] = None

    def wire_size(self) -> int:
        return self.size_bytes if self.size_bytes is not None else sizeof(self.value)


@dataclass
class _RemoteFailure:
    """Marshalled handler exception travelling back to the caller."""

    exception: BaseException


Handler = Callable[["Endpoint", str, object], Generator]


class Endpoint:
    """A named RPC party attached to the network.

    One endpoint per (node, service); the address is
    ``"<node_id>/<service>"``.  Incoming requests spawn one handler process
    each; a node crash interrupts all in-flight handlers (their responses
    are never sent).
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        network: Network,
        node_id: str,
        service: str,
        service_time_ms: float = 0.0,
        cpu=None,
    ):
        self.network = network
        self.sim: "Simulator" = network.sim
        self.node_id = node_id
        self.service = service
        self.address = f"{node_id}/{service}"
        self._handlers: dict[str, Handler] = {}
        self._pending: dict[int, Event] = {}
        #: request_id -> (dst_node, dst_address, method) for in-flight
        #: calls, so a declared node crash can fail them fast
        #: (insertion-ordered: rejection order must not depend on hashes).
        self._pending_dst: dict[int, tuple] = {}
        # Dict used as an insertion-ordered set: kill_inflight_handlers()
        # iterates it, and interrupt order must not depend on hash order.
        self._inflight_handlers: dict = {}
        #: CPU cost of accepting one request.  A server process handles
        #: requests one at a time for this slice, so a hot endpoint (e.g.
        #: the cache agent homing a popular key) becomes a queueing
        #: contention point under load — the effect Concord's local hits
        #: avoid and the versioning/single-home baselines suffer.
        self.service_time_ms = service_time_ms
        #: Optional CPU resource (the node's cores): the service slice
        #: competes with function execution for compute, so remote-heavy
        #: caching schemes lose cluster capacity to coherence work.
        self._cpu = cpu
        self._server = None
        #: Client-side calls that never got an answer (peer crashed or
        #: message dropped); sampled as rpc_timeouts_total.
        self.timeouts = 0
        #: Client-side calls failed fast with :class:`PeerDown`
        #: (fail-fast fabric only); sampled as rpc_peer_resets_total.
        self.resets = 0
        if service_time_ms > 0.0:
            from repro.sim.resources import Resource

            self._server = Resource(self.sim, capacity=1, name=f"srv:{self.address}")
        network.register(self)
        metrics = self.sim.metrics
        if metrics.active:
            metrics.gauge(
                "rpc_inflight", "Client calls awaiting a response.",
                labelnames=("node", "service"),
            ).set_callback(lambda: len(self._pending),
                           node=node_id, service=service)
            metrics.counter(
                "rpc_timeouts_total", "Client calls that timed out.",
                labelnames=("node", "service"),
            ).set_callback(lambda: self.timeouts,
                           node=node_id, service=service)
            metrics.counter(
                "rpc_peer_resets_total",
                "Client calls failed fast because the peer node was down.",
                labelnames=("node", "service"),
            ).set_callback(lambda: self.resets,
                           node=node_id, service=service)

    def close(self) -> None:
        """Detach from the network and abort in-flight handlers."""
        self.kill_inflight_handlers()
        self.network.unregister(self.address)

    # -- server side ---------------------------------------------------------
    def register_handler(self, method: str, handler: Handler) -> None:
        """Register the generator function serving ``method``."""
        self._handlers[method] = handler

    def kill_inflight_handlers(self) -> None:
        """Interrupt every running handler (crash semantics)."""
        for process in list(self._inflight_handlers):
            process.interrupt("node failure")
        self._inflight_handlers.clear()

    # -- fail-fast plumbing (fault injection) -------------------------------
    def reject_call(self, request_id: int, error: RpcError) -> None:
        """Fail the pending call ``request_id`` with ``error`` (idempotent)."""
        waiter = self._pending.pop(request_id, None)
        self._pending_dst.pop(request_id, None)
        if waiter is not None and not waiter.triggered:
            self.resets += 1
            waiter.fail(error)

    def fail_calls_to(self, node_id: str) -> None:
        """Fail every in-flight call addressed to ``node_id`` fast."""
        matching = [
            (request_id, dst, method)
            for request_id, (dst_node, dst, method) in self._pending_dst.items()
            if dst_node == node_id
        ]
        for request_id, dst, method in matching:
            self.reject_call(request_id, PeerDown(dst, method))

    def _receive(self, message: Message) -> None:
        if message.is_response:
            waiter = self._pending.pop(message.request_id, None)
            self._pending_dst.pop(message.request_id, None)
            if waiter is not None and not waiter.triggered:
                if isinstance(message.payload, _RemoteFailure):
                    waiter.fail(message.payload.exception)
                else:
                    waiter.succeed(message.payload)
            return
        method, args = message.payload
        handler = self._handlers.get(method)
        if handler is None:
            self._respond(message, _RemoteFailure(RpcError(
                f"no handler for {method!r} at {self.address}")), 0)
            return
        process = self.sim.spawn(
            self._run_handler(handler, message),
            name=f"rpc:{self.address}:{method}",
            daemon=True,
        )
        # The handler joins the caller's span tree: its ambient context is
        # whatever TraceContext travelled with the request.
        process.trace_ctx = message.trace
        self._inflight_handlers[process] = None
        process.callbacks.append(
            lambda _ev: self._inflight_handlers.pop(process, None))

    def _run_handler(self, handler: Handler, message: Message):
        tracer = self.sim.tracer
        if not tracer.active:
            yield from self._serve(handler, message)
            return
        # Server-side span: covers the service slice (queueing at a hot
        # agent) plus the handler body.  _serve() swallows Interrupt, so
        # the span ends on every path, including node crashes.
        with tracer.span(f"serve:{message.kind}", "rpc.server",
                         src=message.src, addr=self.address):
            yield from self._serve(handler, message)

    def _serve(self, handler: Handler, message: Message):
        try:
            if self._server is not None:
                yield self._server.acquire()
                try:
                    if self._cpu is not None:
                        yield self._cpu.acquire()
                        try:
                            yield self.sim.timeout(self.service_time_ms)
                        finally:
                            self._cpu.release()
                    else:
                        yield self.sim.timeout(self.service_time_ms)
                finally:
                    self._server.release()
            result = yield from handler(self, message.src, message.payload[1])
        except Interrupt:
            return  # crashed mid-handling; no response ever leaves
        except RpcError as exc:
            self._respond(message, _RemoteFailure(exc), 0)
            return
        if isinstance(result, Reply):
            self._respond(message, result.value, result.wire_size())
        else:
            self._respond(message, result, sizeof(result))

    def _respond(self, request: Message, value: object, size_bytes: int) -> None:
        if request.request_id is None:
            return  # one-way notify: nobody is waiting
        self.network.send(Message(
            src=self.address,
            dst=request.src,
            kind=f"reply:{request.kind}",
            payload=value,
            size_bytes=size_bytes,
            request_id=request.request_id,
            is_response=True,
        ))

    # -- client side ---------------------------------------------------------
    def call(
        self,
        dst: str,
        method: str,
        args: object = None,
        size_bytes: Optional[int] = None,
        timeout: Optional[float] = None,
        trace=INHERIT,
    ):
        """Issue an RPC; yields from a generator returning the response.

        Usage inside a process::

            value = yield from endpoint.call("node1/agent", "read", {...})

        Raises :class:`RpcTimeout` if no response arrives within
        ``timeout`` ms (default 5000), and re-raises any :class:`RpcError`
        the handler failed with.

        ``trace`` names the call's position in the span tree (TRC01):
        the default :data:`INHERIT` attaches to the calling process's
        ambient :class:`TraceContext`; pass an explicit context/span to
        re-parent, or ``None`` to start a fresh trace.  The context
        travels with the request, and the client span survives the
        timeout path (ended in a ``finally`` with ``status=timeout``),
        so retries issued afterwards join the same operation's trace.
        """
        tracer = self.sim.tracer
        span = None
        ctx = None
        if tracer.active:
            span = tracer.span(f"rpc:{method}", "rpc", parent=trace, dst=dst)
            ctx = span.context
        try:
            request_id = next(self._ids)
            response = Event(self.sim, name=f"rpc-resp:{method}")
            self._pending[request_id] = response
            self._pending_dst[request_id] = (
                Network.node_of(dst), dst, method)
            try:
                self.network.send(Message(
                    src=self.address,
                    dst=dst,
                    kind=method,
                    payload=(method, args),
                    size_bytes=(size_bytes if size_bytes is not None
                                else sizeof(args)),
                    request_id=request_id,
                    trace=ctx,
                ))
                limit = (timeout if timeout is not None
                         else DEFAULT_RPC_TIMEOUT_MS)
                timer = self.sim.timeout(limit)
                winner = yield self.sim.any_of([response, timer])
                if not response.triggered:
                    self.timeouts += 1
                    if span is not None:
                        span.set("status", "timeout")
                    raise RpcTimeout(dst, method, limit)
                del winner
                return response.value
            finally:
                # The in-flight window closes on every exit.  Response
                # delivery already popped these; the timeout path — and an
                # Interrupt thrown at the yield when the caller's node
                # crashes — must not leak the entry (the rpc_inflight
                # gauge and fail_calls_to() scans would keep seeing it).
                self._pending.pop(request_id, None)
                self._pending_dst.pop(request_id, None)
        finally:
            if span is not None:
                span.end()

    def notify(
        self,
        dst: str,
        method: str,
        args: object = None,
        size_bytes: Optional[int] = None,
        trace=INHERIT,
    ) -> None:
        """Fire-and-forget one-way message (no response expected).

        ``trace`` works as in :meth:`call`: the resolved TraceContext
        rides along so the receiving handler joins the span tree, but no
        client span is opened (there is nothing to wait for).
        """
        tracer = self.sim.tracer
        ctx = tracer.resolve(trace) if tracer.active else None
        self.network.send(Message(
            src=self.address,
            dst=dst,
            kind=method,
            payload=(method, args),
            size_bytes=size_bytes if size_bytes is not None else sizeof(args),
            request_id=None,
            trace=ctx,
        ))
