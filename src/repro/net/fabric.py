"""The message fabric connecting simulated nodes.

The :class:`Network` delivers :class:`Message` objects between registered
endpoints with a latency derived from the shared
:class:`~repro.config.LatencyModel`.  Messages to or from failed nodes are
silently dropped — exactly the behaviour a crashed process exhibits — so
upper layers must use timeouts to detect unreachability (as the paper's
protocol does in Section III-H).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.config import LatencyModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.rpc import Endpoint
    from repro.sim import Simulator


@dataclass(slots=True)
class Message:
    """A single one-way message on the wire."""

    src: str
    dst: str
    kind: str
    payload: object
    size_bytes: int
    #: Correlates a response with its request (None for one-way sends).
    request_id: Optional[int] = None
    is_response: bool = False
    #: TraceContext travelling with the request so the serving side joins
    #: the caller's span tree (None when tracing is off / for responses).
    trace: Optional[object] = None
    #: Scheme-level metadata piggybacked on the message (e.g. the causal
    #: scheme's vector clocks).  Opaque to the fabric; callers that care
    #: about wire realism must fold its size into ``size_bytes``.
    meta: Optional[object] = None


#: address -> node id memo for :meth:`Network.node_of`.  Addresses are
#: immutable strings and the mapping is a pure function of the address,
#: so the cache never needs invalidation.
_NODE_OF: dict = {}


@dataclass
class NetworkStats:
    """Aggregate traffic counters, by message kind."""

    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    by_kind: dict = field(default_factory=dict)

    def record(self, message: Message) -> None:
        self.messages += 1
        self.bytes += message.size_bytes
        self.by_kind[message.kind] = self.by_kind.get(message.kind, 0) + 1


@dataclass(frozen=True)
class _Window:
    """A half-open activity window in simulated time."""

    start: float
    end: float

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


class FaultRules:
    """Time-windowed partition/drop/delay rules applied by the fabric.

    Installed by :class:`repro.faults.injector.FaultInjector`; the fabric
    consults the rules on every ``send`` (and again at delivery, so a
    partition that begins while a message is in flight cuts it).  Drop
    decisions and delay jitter draw from the simulator's ``faults:net``
    substream — seeded, hash-order-free, replayable.
    """

    def __init__(self, network: "Network"):
        self.network = network
        self.sim = network.sim
        self._rng = network.sim.rng.stream("faults:net")
        #: (window, groups) — groups is a tuple of node-id tuples.
        self._partitions: list = []
        #: (window, probability, src_node | None, dst_node | None)
        self._drops: list = []
        #: (window, extra_ms, jitter_ms, src_node | None, dst_node | None)
        self._delays: list = []
        #: Messages dropped by injected rules (partitions + drops).
        self.dropped_injected = 0
        #: Messages given injected extra delay.
        self.delayed_injected = 0

    # -- rule installation ------------------------------------------------
    def add_partition(self, groups, start_ms: float, end_ms: float) -> None:
        frozen = tuple(tuple(group) for group in groups)
        self._partitions.append((_Window(start_ms, end_ms), frozen))

    def add_drop(self, start_ms: float, end_ms: float, probability: float,
                 src: Optional[str] = None, dst: Optional[str] = None) -> None:
        self._drops.append((_Window(start_ms, end_ms), probability, src, dst))

    def add_delay(self, start_ms: float, end_ms: float, extra_ms: float,
                  jitter_ms: float = 0.0, src: Optional[str] = None,
                  dst: Optional[str] = None) -> None:
        self._delays.append(
            (_Window(start_ms, end_ms), extra_ms, jitter_ms, src, dst))

    # -- fabric queries ---------------------------------------------------
    def blocked(self, src_node: str, dst_node: str) -> bool:
        """Whether an active partition severs ``src_node`` -> ``dst_node``."""
        now = self.sim.now
        for window, groups in self._partitions:
            if not window.active(now):
                continue
            src_group = dst_group = None
            for index, group in enumerate(groups):
                if src_node in group:
                    src_group = index
                if dst_node in group:
                    dst_group = index
            if (src_group is not None and dst_group is not None
                    and src_group != dst_group):
                return True
        return False

    def should_drop(self, src_node: str, dst_node: str) -> bool:
        """Whether an active drop rule claims this message (draws the RNG)."""
        now = self.sim.now
        for window, probability, src, dst in self._drops:
            if not window.active(now):
                continue
            if src is not None and src != src_node:
                continue
            if dst is not None and dst != dst_node:
                continue
            if probability >= 1.0 or self._rng.random() < probability:
                return True
        return False

    def extra_delay(self, src_node: str, dst_node: str) -> float:
        """Sum of injected delays from active delay rules (draws the RNG)."""
        now = self.sim.now
        total = 0.0
        for window, extra_ms, jitter_ms, src, dst in self._delays:
            if not window.active(now):
                continue
            if src is not None and src != src_node:
                continue
            if dst is not None and dst != dst_node:
                continue
            total += extra_ms
            if jitter_ms > 0.0:
                total += jitter_ms * self._rng.random()
        return total


class Network:
    """Latency-modelled fabric between named endpoints.

    Endpoint addresses are ``"<node_id>/<service>"``; node failures are
    tracked per node id, so crashing a node silences all its services at
    once.  Messages between services co-located on one node are delivered
    with zero network latency (in-memory hand-off).
    """

    def __init__(self, sim: "Simulator", latency: Optional[LatencyModel] = None,
                 topology=None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        #: Optional :class:`~repro.net.regions.RegionTopology`: adds half
        #: the region pair's extra RTT to each cross-region hop.  ``None``
        #: (and any single-region topology) is byte-identical to the
        #: flat fabric.
        self.topology = topology
        #: Ordered (src_region, dst_region) -> cross-region message count.
        self.cross_region: dict[tuple[str, str], int] = {}
        self._endpoints: dict[str, "Endpoint"] = {}
        self._down_nodes: set[str] = set()
        #: Per (src_node, dst_node) pair: the latest delivery timestamp
        #: handed out, enforcing FIFO delivery per connection as TCP does.
        self._pair_clock: dict[tuple[str, str], float] = {}
        #: Open same-tick delivery batch: ``[deliver_at, seq_watermark,
        #: messages]``.  See :meth:`send` for the coalescing rule.
        self._last_batch: Optional[list] = None
        self.stats = NetworkStats()
        #: Injected partition/drop/delay rules (see :meth:`fault_rules`).
        self.faults: Optional[FaultRules] = None
        #: When True, requests addressed to a down node fail fast with a
        #: retriable :class:`~repro.net.rpc.PeerDown` instead of silently
        #: timing out, and crashing a node fails its callers' in-flight
        #: requests immediately (connection-reset semantics).  Off by
        #: default so the base protocol keeps the paper's timeout-driven
        #: detection; the fault injector arms it.
        self.fail_fast = False
        metrics = sim.metrics
        if metrics.active:
            stats = self.stats
            metrics.counter(
                "net_messages_total", "Messages put on the wire.",
                labelnames=(),
            ).set_callback(lambda: stats.messages)
            metrics.counter(
                "net_bytes_total", "Payload bytes put on the wire.",
                labelnames=(),
            ).set_callback(lambda: stats.bytes)
            metrics.counter(
                "net_dropped_total",
                "Messages dropped at crashed or torn-down endpoints.",
                labelnames=(),
            ).set_callback(lambda: stats.dropped)
        if topology is not None:
            for src_region in topology.regions:
                for dst_region in topology.regions:
                    if src_region != dst_region:
                        self.cross_region[(src_region, dst_region)] = 0
            if metrics.active:
                counter = metrics.counter(
                    "net_cross_region_messages_total",
                    "Messages crossing a region boundary.",
                    labelnames=("src_region", "dst_region"),
                )
                for pair in self.cross_region:
                    counter.set_callback(
                        self._cross_region_callback(pair),
                        src_region=pair[0], dst_region=pair[1])

    def _cross_region_callback(self, pair: tuple):
        return lambda: self.cross_region[pair]

    # -- membership --------------------------------------------------------
    def register(self, endpoint: "Endpoint") -> None:
        """Attach ``endpoint``; its address must be unique."""
        if endpoint.address in self._endpoints:
            raise ValueError(f"duplicate endpoint address {endpoint.address!r}")
        self._endpoints[endpoint.address] = endpoint

    def unregister(self, address: str) -> None:
        """Detach the endpoint at ``address`` (idempotent)."""
        self._endpoints.pop(address, None)

    def endpoint(self, address: str) -> Optional["Endpoint"]:
        """The endpoint registered at ``address``, if any."""
        return self._endpoints.get(address)

    @staticmethod
    def node_of(address: str) -> str:
        """The node id component of an endpoint address."""
        node = _NODE_OF.get(address)
        if node is None:
            node = address.split("/", 1)[0]
            _NODE_OF[address] = node
        return node

    # -- fault-injection hooks ------------------------------------------------
    def fault_rules(self) -> FaultRules:
        """The installed :class:`FaultRules`, created on first use."""
        if self.faults is None:
            self.faults = FaultRules(self)
        return self.faults

    # -- failures ------------------------------------------------------------
    def fail_node(self, node_id: str) -> None:
        """Mark a node crashed: drop its traffic and kill its handlers."""
        self._down_nodes.add(node_id)
        for address, endpoint in self._endpoints.items():
            if self.node_of(address) == node_id:
                endpoint.kill_inflight_handlers()
        if self.fail_fast:
            # Connection-reset semantics: every survivor's in-flight call
            # to the dead node fails now rather than at its timeout.
            for address, endpoint in list(self._endpoints.items()):
                if self.node_of(address) != node_id:
                    endpoint.fail_calls_to(node_id)

    def restore_node(self, node_id: str) -> None:
        """Bring a crashed node back (new messages flow again)."""
        self._down_nodes.discard(node_id)

    def is_down(self, node_id: str) -> bool:
        return node_id in self._down_nodes

    # -- transmission --------------------------------------------------------
    def transit_time(self, src: str, dst: str, size_bytes: int) -> float:
        """One-way latency for a ``size_bytes`` message from src to dst."""
        src_node = self.node_of(src)
        dst_node = self.node_of(dst)
        if src_node == dst_node:
            return 0.0
        delay = self.latency.one_way(size_bytes)
        if self.topology is not None:
            delay += self.topology.extra_one_way_ms(src_node, dst_node)
        return delay

    def send(self, message: Message) -> None:
        """Put ``message`` on the wire (delivery is asynchronous)."""
        src_node = self.node_of(message.src)
        dst_node = self.node_of(message.dst)
        if src_node in self._down_nodes:
            self.stats.dropped += 1
            return
        extra = 0.0
        if self.faults is not None:
            if (self.faults.blocked(src_node, dst_node)
                    or self.faults.should_drop(src_node, dst_node)):
                self.stats.dropped += 1
                self.faults.dropped_injected += 1
                return
            extra = self.faults.extra_delay(src_node, dst_node)
            if extra > 0.0:
                self.faults.delayed_injected += 1
        if self.fail_fast and dst_node in self._down_nodes:
            # The destination's TCP stack is gone: a request gets an RST
            # back after one propagation delay instead of a silent drop.
            self.stats.dropped += 1
            if message.request_id is not None and not message.is_response:
                self._reject_fast(message)
            return
        stats = self.stats
        stats.messages += 1
        stats.bytes += message.size_bytes
        kind = message.kind
        by_kind = stats.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if src_node == dst_node:
            delay = extra
        else:
            delay = self.latency.one_way(message.size_bytes) + extra
            topology = self.topology
            if topology is not None:
                src_region = topology.region_of(src_node)
                dst_region = topology.region_of(dst_node)
                if src_region != dst_region:
                    delay += topology.extra_rtt_ms(src_region, dst_region) / 2.0
                    self.cross_region[(src_region, dst_region)] += 1
        # Messages between the same pair of nodes never overtake each
        # other (gRPC over one TCP connection): a later send is delivered
        # no earlier than every previous one.
        sim = self.sim
        now = sim.now
        pair_clock = self._pair_clock
        pair = (src_node, dst_node)
        deliver_at = now + delay
        floor = pair_clock.get(pair, 0.0)
        if floor > deliver_at:
            deliver_at = floor
        pair_clock[pair] = deliver_at
        # Same-tick coalescing: if the previous send scheduled delivery at
        # this exact timestamp and *nothing else* has been scheduled since
        # (the seq watermark is unchanged, so no entry can sit between
        # that batch and where this message's own entry would have gone),
        # appending to the batch dispatches the messages back-to-back in
        # exactly the (time, seq) order separate entries would have had.
        last = self._last_batch
        if (last is not None and last[0] == deliver_at
                and last[1] == sim.schedule_count):
            last[2].append(message)
            return
        batch = [message]
        sim.call_at(deliver_at, self._deliver_batch, batch)
        self._last_batch = [deliver_at, sim.schedule_count, batch]

    def _deliver_batch(self, batch: list) -> None:
        # Close the coalescing window: this batch is being dispatched, so
        # a later same-tick send must open a fresh entry even if nothing
        # was scheduled in between (deliveries that schedule nothing —
        # e.g. a message dropped at a crashed endpoint — leave the seq
        # watermark untouched).
        last = self._last_batch
        if last is not None and last[2] is batch:
            self._last_batch = None
        deliver = self._deliver
        for message in batch:
            deliver(message)

    def _reject_fast(self, message: Message) -> None:
        """Fail the caller's pending request with a retriable PeerDown."""
        from repro.net.rpc import PeerDown  # circular at module load

        source = self._endpoints.get(message.src)
        if source is None:
            return
        delay = self.latency.one_way(0)
        error = PeerDown(message.dst, message.kind, delay)
        self.sim.call_at(
            self.sim.now + delay, self._do_reject, (source, message.request_id, error))

    def _do_reject(self, job: tuple) -> None:
        source, request_id, error = job
        source.reject_call(request_id, error)

    def _deliver(self, message: Message) -> None:
        if self.node_of(message.dst) in self._down_nodes:
            self.stats.dropped += 1
            if (self.fail_fast and message.request_id is not None
                    and not message.is_response):
                self._reject_fast(message)
            return
        if self.faults is not None and self.faults.blocked(
                self.node_of(message.src), self.node_of(message.dst)):
            # The partition began while this message was in flight.
            self.stats.dropped += 1
            self.faults.dropped_injected += 1
            return
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None:
            # Endpoint was torn down while the message was in flight.
            self.stats.dropped += 1
            return
        endpoint._receive(message)
