"""The message fabric connecting simulated nodes.

The :class:`Network` delivers :class:`Message` objects between registered
endpoints with a latency derived from the shared
:class:`~repro.config.LatencyModel`.  Messages to or from failed nodes are
silently dropped — exactly the behaviour a crashed process exhibits — so
upper layers must use timeouts to detect unreachability (as the paper's
protocol does in Section III-H).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.config import LatencyModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.rpc import Endpoint
    from repro.sim import Simulator


@dataclass
class Message:
    """A single one-way message on the wire."""

    src: str
    dst: str
    kind: str
    payload: object
    size_bytes: int
    #: Correlates a response with its request (None for one-way sends).
    request_id: Optional[int] = None
    is_response: bool = False
    #: TraceContext travelling with the request so the serving side joins
    #: the caller's span tree (None when tracing is off / for responses).
    trace: Optional[object] = None


@dataclass
class NetworkStats:
    """Aggregate traffic counters, by message kind."""

    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    by_kind: dict = field(default_factory=dict)

    def record(self, message: Message) -> None:
        self.messages += 1
        self.bytes += message.size_bytes
        self.by_kind[message.kind] = self.by_kind.get(message.kind, 0) + 1


class Network:
    """Latency-modelled fabric between named endpoints.

    Endpoint addresses are ``"<node_id>/<service>"``; node failures are
    tracked per node id, so crashing a node silences all its services at
    once.  Messages between services co-located on one node are delivered
    with zero network latency (in-memory hand-off).
    """

    def __init__(self, sim: "Simulator", latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        self._endpoints: dict[str, "Endpoint"] = {}
        self._down_nodes: set[str] = set()
        #: Per (src_node, dst_node) pair: the latest delivery timestamp
        #: handed out, enforcing FIFO delivery per connection as TCP does.
        self._pair_clock: dict[tuple[str, str], float] = {}
        self.stats = NetworkStats()
        metrics = sim.metrics
        if metrics.active:
            stats = self.stats
            metrics.counter(
                "net_messages_total", "Messages put on the wire.",
                labelnames=(),
            ).set_callback(lambda: stats.messages)
            metrics.counter(
                "net_bytes_total", "Payload bytes put on the wire.",
                labelnames=(),
            ).set_callback(lambda: stats.bytes)
            metrics.counter(
                "net_dropped_total",
                "Messages dropped at crashed or torn-down endpoints.",
                labelnames=(),
            ).set_callback(lambda: stats.dropped)

    # -- membership --------------------------------------------------------
    def register(self, endpoint: "Endpoint") -> None:
        """Attach ``endpoint``; its address must be unique."""
        if endpoint.address in self._endpoints:
            raise ValueError(f"duplicate endpoint address {endpoint.address!r}")
        self._endpoints[endpoint.address] = endpoint

    def unregister(self, address: str) -> None:
        """Detach the endpoint at ``address`` (idempotent)."""
        self._endpoints.pop(address, None)

    def endpoint(self, address: str) -> Optional["Endpoint"]:
        """The endpoint registered at ``address``, if any."""
        return self._endpoints.get(address)

    @staticmethod
    def node_of(address: str) -> str:
        """The node id component of an endpoint address."""
        return address.split("/", 1)[0]

    # -- failures ------------------------------------------------------------
    def fail_node(self, node_id: str) -> None:
        """Mark a node crashed: drop its traffic and kill its handlers."""
        self._down_nodes.add(node_id)
        for address, endpoint in self._endpoints.items():
            if self.node_of(address) == node_id:
                endpoint.kill_inflight_handlers()

    def restore_node(self, node_id: str) -> None:
        """Bring a crashed node back (new messages flow again)."""
        self._down_nodes.discard(node_id)

    def is_down(self, node_id: str) -> bool:
        return node_id in self._down_nodes

    # -- transmission --------------------------------------------------------
    def transit_time(self, src: str, dst: str, size_bytes: int) -> float:
        """One-way latency for a ``size_bytes`` message from src to dst."""
        if self.node_of(src) == self.node_of(dst):
            return 0.0
        return self.latency.one_way(size_bytes)

    def send(self, message: Message) -> None:
        """Put ``message`` on the wire (delivery is asynchronous)."""
        if self.is_down(self.node_of(message.src)):
            self.stats.dropped += 1
            return
        self.stats.record(message)
        delay = self.transit_time(message.src, message.dst, message.size_bytes)
        # Messages between the same pair of nodes never overtake each
        # other (gRPC over one TCP connection): a later send is delivered
        # no earlier than every previous one.
        pair = (self.node_of(message.src), self.node_of(message.dst))
        deliver_at = max(self.sim.now + delay, self._pair_clock.get(pair, 0.0))
        self._pair_clock[pair] = deliver_at
        delay = deliver_at - self.sim.now
        self.sim.timeout(delay).callbacks.append(lambda _ev: self._deliver(message))

    def _deliver(self, message: Message) -> None:
        if self.is_down(self.node_of(message.dst)):
            self.stats.dropped += 1
            return
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None:
            # Endpoint was torn down while the message was in flight.
            self.stats.dropped += 1
            return
        endpoint._receive(message)
