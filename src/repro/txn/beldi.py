"""Beldi-style baseline: logged storage accesses + optimistic commit.

Beldi (OSDI '20) makes stateful serverless workflows transactional by
logging every storage access to a durable log and validating at commit
time.  We model its performance structure: each transactional read/write
pays an extra storage round trip for the log record, the writes are
buffered and flushed at commit after validation, and a conflict (version
moved under a read) aborts and re-executes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.storage import DataItem
from repro.txn.apps import TxnAppSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster


class BeldiRunner:
    """Executes transactional apps with Beldi-style logging."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.sim = cluster.sim
        self.storage = cluster.storage
        self.commits = 0
        self.aborts = 0
        self._log_seq = 0

    def _append_log(self, record: str):
        """One durable log append (a storage write round trip)."""
        self._log_seq += 1
        yield from self.storage.write(
            f"beldi:log:{self._log_seq}", DataItem(record, 64), writer="beldi")

    def run(self, app: TxnAppSpec, entity: int, writer_tag: str = "beldi",
            max_attempts: int = 40):
        """One logged transaction execution (yield from)."""
        rng = self.sim.rng.stream("beldi-backoff")
        for attempt in range(max_attempts):
            if attempt:
                backoff = 10.0 * (2 ** min(attempt, 5))
                yield self.sim.timeout(backoff * (0.5 + rng.random()))
            read_versions = {}
            write_buffer = {}
            for step in app.steps:
                yield self.sim.timeout(step.compute_ms)
                for template in step.reads:
                    key = template.format(e=entity)
                    if key in write_buffer:
                        continue
                    value, version = yield from self.storage.read(key)
                    yield from self._append_log(f"read {key}@{version}")
                    read_versions.setdefault(key, version)
                for template in step.writes:
                    key = template.format(e=entity)
                    write_buffer[key] = DataItem((key, writer_tag), 256)
                    yield from self._append_log(f"intent {key}")
            # Commit: validate the read set, then flush buffered writes.
            conflicted = False
            for key, version in read_versions.items():
                _value, current = yield from self.storage.read(key)
                if current != version:
                    conflicted = True
                    break
            if not conflicted:
                for key, value in write_buffer.items():
                    yield from self.storage.write(key, value, writer=writer_tag)
                yield from self._append_log("commit")
                self.commits += 1
                return True
            self.aborts += 1
            yield from self._append_log("abort")
        raise RuntimeError(f"beldi {app.name} gave up after {max_attempts} attempts")
