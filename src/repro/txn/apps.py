"""The five transactional applications of Figure 15.

The paper evaluates transactions with AWS-sample applications whose
transactions enclose a sequence of 6-8 functions.  Each step reads and
writes a few keys from a shared keyspace; contention comes from popular
keys touched by concurrent transactions (account balances, inventory
rows, booking tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TxnStep:
    """One function inside a transaction: its reads and writes."""

    name: str
    reads: tuple
    writes: tuple
    compute_ms: float = 2.0


@dataclass(frozen=True)
class TxnAppSpec:
    """A transactional application: a chain of steps."""

    name: str
    steps: tuple
    #: Number of distinct entities (rows) contended over.
    entities: int = 20

    def keyspace(self) -> set:
        keys = set()
        for entity in range(self.entities):
            for step in self.steps:
                for template in step.reads + step.writes:
                    keys.add(template.format(e=entity))
        return keys


def _chain(name: str, length: int, shared: list, per_step_entity_keys: int = 1):
    """Build a txn app: each step reads shared keys + entity rows and
    writes one entity row; templates use ``{e}`` for the entity id."""
    steps = []
    for index in range(length):
        reads = tuple(
            [f"{name}:row{index}:{{e}}"]
            + shared[index % len(shared):][:1]
        )
        writes = (f"{name}:row{index}:{{e}}",)
        steps.append(TxnStep(name=f"{name}-s{index}", reads=reads, writes=writes))
    return TxnAppSpec(name=name, steps=tuple(steps))


TXN_APPS: dict[str, TxnAppSpec] = {
    spec.name: spec
    for spec in (
        _chain("HotelBooking", 6, [f"HotelBooking:avail:{{e}}"]),
        _chain("OnlineShopping", 7, [f"OnlineShopping:stock:{{e}}"]),
        _chain("AccountRegistration", 6, [f"AccountRegistration:index:{{e}}"]),
        _chain("OnlineBanking", 8, [f"OnlineBanking:balance:{{e}}"]),
        _chain("HealthRecords", 7, [f"HealthRecords:chart:{{e}}"]),
    )
}
