"""Saga-pattern baseline for transactions (paper Section IV-A, Figure 15).

With AWS Sagas, the user writes compensating functions: each step commits
its writes immediately; if a later validation detects that a concurrently
committed transaction conflicted, previously completed steps are undone by
compensating writes and the saga re-executes.  Conflict detection happens
by re-reading the data from storage — the slow path the paper contrasts
with Concord's coherence-message detection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.storage import DataItem
from repro.txn.apps import TxnAppSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster


class SagaRunner:
    """Executes transactional apps as sagas over global storage."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.sim = cluster.sim
        self.storage = cluster.storage
        self.commits = 0
        self.compensations = 0

    def run(self, app: TxnAppSpec, entity: int, writer_tag: str = "saga",
            max_attempts: int = 40):
        """One saga execution (yield from); returns on success."""
        rng = self.sim.rng.stream("saga-backoff")
        for attempt in range(max_attempts):
            if attempt:
                # Randomized exponential backoff keeps concurrent sagas
                # from compensating each other forever.
                backoff = 10.0 * (2 ** min(attempt, 5))
                yield self.sim.timeout(backoff * (0.5 + rng.random()))
            read_versions = {}
            written = {}
            completed = []
            conflicted = False
            for step in app.steps:
                yield self.sim.timeout(step.compute_ms)
                for template in step.reads:
                    key = template.format(e=entity)
                    value, version = yield from self.storage.read(key)
                    if key in written:
                        if version != written[key]:
                            conflicted = True  # someone clobbered our write
                            break
                        continue
                    if key in read_versions and read_versions[key] != version:
                        conflicted = True  # someone committed under us
                        break
                    read_versions[key] = version
                if conflicted:
                    break
                for template in step.writes:
                    key = template.format(e=entity)
                    expected = written.get(key, read_versions.get(key))
                    if expected is not None:
                        # Read-modify-write: conditional update detects a
                        # concurrent writer (write-write conflict).
                        ok, version = yield from self.storage.compare_and_swap(
                            key, DataItem((key, writer_tag), 256), expected,
                            writer=writer_tag)
                        if not ok:
                            conflicted = True
                            break
                    else:
                        version = yield from self.storage.write(
                            key, DataItem((key, writer_tag), 256),
                            writer=writer_tag)
                    written[key] = version
                    read_versions.pop(key, None)
                    completed.append(key)
                if conflicted:
                    break
            if not conflicted:
                # Final validation: re-read the keys we only read.
                for key, version in list(read_versions.items()):
                    _value, current = yield from self.storage.read(key)
                    if current != version:
                        conflicted = True
                        break
            if not conflicted:
                self.commits += 1
                return True
            # Roll back: one compensating write per completed step.
            for key in reversed(completed):
                yield from self.storage.write(
                    key, DataItem((key, "compensated"), 256), writer=writer_tag)
                self.compensations += 1
        raise RuntimeError(f"saga {app.name} gave up after {max_attempts} attempts")
