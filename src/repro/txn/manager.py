"""Concord transactions: speculation in the caches, coherence-based
conflict detection (paper Section IV-A).

While a transaction executes, every item it reads is marked *speculatively
read* and every item it writes is buffered in the local cache instance as
*speculatively written* (never propagated to storage).  Conflicts:

- local: another process touching a speculative entry is detected at the
  cache access (the agent consults :class:`LocalTxnManager`);
- remote: the speculating cache holds read items in S/E and written items
  in E (via read-for-ownership), so a conflicting remote access produces
  an incoming ``invalidate`` or ``fetch_downgrade`` — the squash trigger.

A squashed transaction discards its buffered writes, backs off
exponentially and retries; after several squashes it escalates to running
under the global commit lock (the paper's priority mechanism).  Commits
serialize on the global lock and flush buffered writes write-through.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.caching.base import AccessContext, CacheEntry, EXCLUSIVE
from repro.net.sizes import sizeof
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.agent import CacheAgent
    from repro.core.concord import ConcordSystem


class TxnAborted(Exception):
    """The transaction was squashed by a conflicting access."""


@dataclass
class TxnContext:
    """Book-keeping for one in-flight transaction attempt."""

    txn_id: str
    node_id: str
    read_set: set = field(default_factory=set)
    #: key -> buffered value (not yet in storage).
    write_buffer: dict = field(default_factory=dict)
    squashed: bool = False
    squashed_by: Optional[str] = None
    #: Escalated attempts hold the global commit lock and run *protected*:
    #: conflicting accesses wait for the transaction instead of squashing
    #: it (the paper's priority mechanism, guaranteeing forward progress).
    escalated: bool = False
    #: Fired when this attempt finishes (commit or abort); protected-
    #: speculation waiters block on it.
    done: Optional[object] = None


class LocalTxnManager:
    """Per-agent speculation tracker, installed as ``agent.txn_manager``."""

    def __init__(self, agent: "CacheAgent"):
        self.agent = agent
        self.active: dict[str, TxnContext] = {}
        self.squashes = 0

    # -- agent hooks -------------------------------------------------------
    def protection_event(self, entry: CacheEntry):
        """The done-event of a *protected* (escalated) transaction marked
        on this entry, or None.  Conflicting local accesses wait on it
        instead of squashing the transaction (priority, Section IV-A)."""
        involved = set(entry.spec_readers)
        if entry.spec_writer is not None:
            involved.add(entry.spec_writer)
        for txn_id in sorted(involved):
            txn = self.active.get(txn_id)
            if txn is not None and txn.escalated and not txn.squashed:
                return txn.done
        return None

    def writer_protection_event(self, entry: CacheEntry):
        """Protection for *remote* coherence requests: only speculatively
        WRITTEN entries block them.  (A protected transaction's spec-read
        copies may be invalidated: it already holds the global commit
        lock, so no other transaction can commit around it, and waiting
        here could deadlock with the home's per-key lock.)"""
        if entry.spec_writer is None:
            return None
        txn = self.active.get(entry.spec_writer)
        if txn is not None and txn.escalated and not txn.squashed:
            return txn.done
        return None

    def on_local_access(self, key, entry: CacheEntry, ctx, is_write: bool):
        """Called on every local cache hit.  Returns True (entry usable),
        False (speculation squashed; caller re-resolves) or an event to
        wait on (the entry belongs to a protected transaction)."""
        accessor = getattr(ctx, "txn_id", None) if ctx is not None else None
        conflicts = (
            (entry.spec_writer is not None and entry.spec_writer != accessor)
            or (is_write and bool(entry.spec_readers - {accessor}))
        )
        if conflicts:
            waiting_on = self.protection_event(entry)
            if waiting_on is not None:
                return waiting_on
        if entry.spec_writer is not None and entry.spec_writer != accessor:
            # Read or write of data speculatively written by another txn.
            self._squash(entry.spec_writer, reason=f"local access to {key}")
            return False
        if is_write and entry.spec_readers - {accessor}:
            # Write to data speculatively read by other transactions.
            for txn_id in sorted(entry.spec_readers - {accessor}):
                self._squash(txn_id, reason=f"local write to {key}")
            entry.spec_readers &= {accessor} if accessor else set()
        if accessor is not None and accessor in self.active and not is_write:
            txn = self.active[accessor]
            txn.read_set.add(key)
            entry.spec_readers.add(accessor)
            entry.pinned = True  # keep it resident so conflicts reach us
        return True

    def on_install(self, key, entry: CacheEntry, ctx) -> None:
        """A value fetched during a transaction joins the read set."""
        accessor = getattr(ctx, "txn_id", None) if ctx is not None else None
        if accessor is not None and accessor in self.active:
            self.active[accessor].read_set.add(key)
            entry.spec_readers.add(accessor)
            entry.pinned = True

    def on_replace(self, key, entry: CacheEntry, ctx) -> None:
        """A fresh value is replacing a speculative cache entry."""
        accessor = getattr(ctx, "txn_id", None) if ctx is not None else None
        for txn_id in sorted(set(entry.spec_readers) - {accessor}):
            self._squash(txn_id, reason=f"replacement of {key}")
        if entry.spec_writer is not None and entry.spec_writer != accessor:
            self._squash(entry.spec_writer, reason=f"replacement of {key}")

    def on_external_invalidate(self, key, entry: CacheEntry) -> None:
        """A remote write invalidated a speculative entry."""
        for txn_id in sorted(entry.spec_readers):
            self._squash(txn_id, reason=f"external invalidate of {key}")
        if entry.spec_writer is not None:
            self._squash(entry.spec_writer, reason=f"external invalidate of {key}")

    def on_external_read(self, key, entry: CacheEntry) -> None:
        """A remote read reached a speculatively written entry."""
        if entry.spec_writer is not None:
            self._squash(entry.spec_writer, reason=f"external read of {key}")

    # -- internals ------------------------------------------------------------
    def _squash(self, txn_id: str, reason: str) -> None:
        txn = self.active.get(txn_id)
        if txn is None or txn.squashed:
            return
        if txn.escalated:
            return  # protected: conflicting parties wait instead
        txn.squashed = True
        txn.squashed_by = reason
        self.squashes += 1
        self._discard_speculation(txn)

    def _discard_speculation(self, txn: TxnContext) -> None:
        cache = self.agent.cache
        for key in list(txn.write_buffer):
            entry = cache.peek(key)
            if entry is not None and entry.spec_writer == txn.txn_id:
                cache.remove(key)
        for key in sorted(txn.read_set):
            entry = cache.peek(key)
            if entry is not None:
                entry.spec_readers.discard(txn.txn_id)
                if not entry.speculative:
                    entry.pinned = False


class TxnHandle:
    """The API a transaction body uses (read / write / compute)."""

    def __init__(self, runtime: "ConcordTxnRuntime", txn: TxnContext):
        self.runtime = runtime
        self.txn = txn
        self._ctx = AccessContext(function="txn", txn_id=txn.txn_id)

    def _check(self) -> None:
        if self.txn.squashed:
            raise TxnAborted(self.txn.squashed_by)

    def read(self, key: str):
        """Transactional read (yield from)."""
        self._check()
        if key in self.txn.write_buffer:
            return self.txn.write_buffer[key]
        value = yield from self.runtime.concord.read(
            self.txn.node_id, key, self._ctx)
        self._check()
        return value

    def write(self, key: str, value: object):
        """Transactional write: buffered locally, not yet durable.

        Escalated attempts also buffer here: they are *protected* (cannot
        be squashed; conflicting accesses wait), so speculation is safe
        and the fast path is preserved.
        """
        self._check()
        agent = self.runtime.concord.agents[self.txn.node_id]
        already_buffered = key in self.txn.write_buffer
        if not already_buffered:
            # Become the exclusive owner so conflicting remote accesses
            # are guaranteed to arrive here (and trigger a squash).
            yield from agent.acquire_exclusive(key, self._ctx)
            self._check()
        entry = agent.cache.peek(key)
        if entry is None:
            entry = CacheEntry(key=key, value=value, state=EXCLUSIVE,
                               size_bytes=sizeof(value))
            agent.cache.put(entry)
        entry.value = value
        entry.size_bytes = sizeof(value)
        entry.spec_writer = self.txn.txn_id
        entry.pinned = True
        self.txn.write_buffer[key] = value
        return None


#: Body signature: body(handle) -> generator returning the txn's result.
TxnBody = Callable[[TxnHandle], Generator]


class ConcordTxnRuntime:
    """Transaction execution on top of one application's ConcordSystem."""

    _ids = itertools.count(1)

    #: Squash count at which a transaction escalates to the global lock.
    #: Two optimistic attempts, then pessimistic: under contention two
    #: speculating transactions squash each other symmetrically, so the
    #: escape hatch must engage quickly (the paper's priority mechanism).
    ESCALATION_THRESHOLD = 2
    BACKOFF_BASE_MS = 4.0

    def __init__(self, concord: "ConcordSystem"):
        self.concord = concord
        self.sim = concord.sim
        #: Global commit lock (serializes commits, Section IV-A).
        self.commit_lock = Resource(self.sim, capacity=1, name="txn-commit")
        self.managers: dict[str, LocalTxnManager] = {}
        for node_id, agent in concord.agents.items():
            manager = LocalTxnManager(agent)
            agent.txn_manager = manager
            self.managers[node_id] = manager
        self.commits = 0
        self.aborts = 0

    def total_squashes(self) -> int:
        return sum(m.squashes for m in self.managers.values())

    def run(self, node_id: str, body: TxnBody, max_attempts: int = 20):
        """Execute ``body`` transactionally at ``node_id`` (yield from).

        Returns the body's return value after a successful commit.
        """
        rng = self.sim.rng.stream("txn-backoff")
        manager = self.managers[node_id]
        for attempt in range(max_attempts):
            escalated = attempt >= self.ESCALATION_THRESHOLD
            if escalated:
                # Priority escalation: run under the global lock so no
                # other commit can squash us (livelock freedom).
                yield self.commit_lock.acquire()
            txn = TxnContext(txn_id=f"txn-{next(self._ids)}", node_id=node_id,
                             escalated=escalated)
            txn.done = self.sim.event(f"done:{txn.txn_id}")
            manager.active[txn.txn_id] = txn
            try:
                handle = TxnHandle(self, txn)
                result = yield from body(handle)
                yield from self._commit(txn, already_locked=escalated)
                self.commits += 1
                return result
            except TxnAborted:
                self.aborts += 1
            finally:
                manager.active.pop(txn.txn_id, None)
                if not txn.done.triggered:
                    txn.done.succeed()
                if escalated:
                    self.commit_lock.release()
            # Exponential backoff before the retry.
            backoff = self.BACKOFF_BASE_MS * (2 ** min(attempt, 6))
            yield self.sim.timeout(backoff * (0.5 + rng.random()))
        raise TxnAborted(f"gave up after {max_attempts} attempts")

    def _commit(self, txn: TxnContext, already_locked: bool):
        if txn.squashed:
            raise TxnAborted(txn.squashed_by)
        if not already_locked:
            yield self.commit_lock.acquire()
        try:
            # One short control round trip to the lock service.
            yield self.sim.timeout(self.concord.latency.internode_rtt)
            if txn.squashed:
                raise TxnAborted(txn.squashed_by)
            agent = self.concord.agents[txn.node_id]
            manager = agent.txn_manager
            # Clear all of this transaction's speculation first: the
            # commit point has passed, the entries become plain E copies.
            for key in txn.write_buffer:
                entry = agent.cache.peek(key)
                if entry is not None and entry.spec_writer == txn.txn_id:
                    entry.spec_writer = None
                    entry.pinned = entry.speculative
            for key in sorted(txn.read_set):
                entry = agent.cache.peek(key)
                if entry is not None:
                    entry.spec_readers.discard(txn.txn_id)
                    entry.pinned = entry.speculative
            # Flush all buffered writes concurrently: they are independent
            # E-state updates, so the commit costs ~one storage round trip
            # rather than one per written key.  Tagged with our own txn id
            # so stray marks never read as conflicts with ourselves.
            flush_ctx = AccessContext(function="txn-commit", txn_id=txn.txn_id)
            flushes = [
                self.sim.spawn(
                    self.concord.write(txn.node_id, key, value, flush_ctx),
                    name=f"commit:{key}",
                )
                for key, value in txn.write_buffer.items()
            ]
            if flushes:
                yield self.sim.all_of(flushes)
        finally:
            if not already_locked:
                self.commit_lock.release()
