"""Transactional storage accesses (paper Section IV-A) and baselines.

- :class:`~repro.txn.manager.ConcordTxnRuntime` -- transactions on top of
  the Concord coherence protocol: speculative read/write sets buffered in
  the local cache instance, conflicts detected through coherence messages,
  squash + exponential backoff + priority escalation, global commit lock.
- :class:`~repro.txn.saga.SagaRunner` -- AWS Saga-pattern baseline:
  compensating writes on conflict, validation by re-reading storage.
- :class:`~repro.txn.beldi.BeldiRunner` -- Beldi-style baseline: every
  storage access is logged to storage; commit is validated optimistically.
"""

from repro.txn.manager import ConcordTxnRuntime, TxnAborted, TxnHandle
from repro.txn.saga import SagaRunner
from repro.txn.beldi import BeldiRunner
from repro.txn.apps import TXN_APPS, TxnAppSpec, TxnStep

__all__ = [
    "BeldiRunner",
    "ConcordTxnRuntime",
    "SagaRunner",
    "TXN_APPS",
    "TxnAborted",
    "TxnAppSpec",
    "TxnHandle",
    "TxnStep",
]
