"""The fault-injection daemon: replays a FaultPlan against a cluster.

The injector runs as a simulator daemon process and applies each
scheduled :class:`~repro.faults.plan.FaultEvent` at its simulated time:
crashes and restarts go through the :class:`~repro.cluster.Cluster`
lifecycle (so crash listeners — the FaaS platform, the coordination
heartbeats — see them), partitions/drops/delays install time-windowed
:class:`~repro.net.fabric.FaultRules` on the fabric, and brownouts
degrade global-storage latency.

On restart the injector also re-admits the node's cache instances
through :meth:`~repro.core.ConcordSystem.restart_instance` for every
registered system — a restarted process comes back empty and must rejoin
the coherence domain, never resume its stale state.

By default the injector arms the fabric's *fail-fast* mode: in-flight
RPCs to a crashed node fail immediately with the retriable
:class:`~repro.net.rpc.PeerDown` instead of waiting out their timeouts
(paper Section III-H's unreachability reports, minus the detection
latency).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.faults.plan import (
    EVENT_TYPES,
    FaultEvent,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    NetworkPartition,
    NodeCrash,
    NodeRestart,
    RegionPartition,
    StorageBrownout,
)
from repro.obs.events import FAULT_INJECT

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster
    from repro.core import ConcordSystem
    from repro.faas import FaasPlatform


class FaultInjector:
    """Replays one :class:`FaultPlan` against a cluster (daemon process)."""

    def __init__(
        self,
        cluster: "Cluster",
        plan: FaultPlan,
        systems: Iterable["ConcordSystem"] = (),
        platform: Optional["FaasPlatform"] = None,
        fail_fast: bool = True,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.plan = plan
        self.systems = list(systems)
        self.platform = platform
        self.fail_fast = fail_fast
        #: (sim_time_ms, kind, detail) per applied event, in order.
        self.applied: list[tuple[float, str, str]] = []
        #: kind name -> events applied so far.
        self.injected_by_kind: dict[str, int] = {}
        self._process = None
        metrics = self.sim.metrics
        if metrics.active:
            counter = metrics.counter(
                "faults_injected_total", "Fault events applied by kind.",
                labelnames=("kind",),
            )
            for kind in sorted(EVENT_TYPES):
                counter.set_callback(
                    lambda kind=kind: self.injected_by_kind.get(kind, 0),
                    kind=kind,
                )

    def start(self):
        """Spawn the injection daemon (idempotent); returns the process."""
        if self._process is None:
            if self.fail_fast:
                self.cluster.network.fail_fast = True
            self._process = self.sim.spawn(
                self._run(), name="faults:injector", daemon=True)
        return self._process

    # -- the daemon -----------------------------------------------------
    def _run(self):
        rules = self.cluster.network.fault_rules()
        for event in self.plan.events:
            if event.at_ms > self.sim.now:
                yield self.sim.timeout(event.at_ms - self.sim.now)
            self._apply(event, rules)

    def _apply(self, event: FaultEvent, rules) -> None:
        now = self.sim.now
        if isinstance(event, NodeCrash):
            self.cluster.crash_node(event.node)
            detail = event.node
        elif isinstance(event, NodeRestart):
            self.cluster.restart_node(event.node)
            for system in self.systems:
                self.sim.spawn(
                    system.restart_instance(event.node),
                    name=f"faults:rejoin:{system.app}:{event.node}",
                    daemon=True,
                )
            detail = event.node
        elif isinstance(event, NetworkPartition):
            rules.add_partition(event.groups, now, now + event.duration_ms)
            detail = "|".join(",".join(group) for group in event.groups)
        elif isinstance(event, RegionPartition):
            topology = self.cluster.config.regions
            if topology is None:
                raise ValueError(
                    f"RegionPartition({event.region!r}) needs a cluster "
                    "with SimConfig.regions set")
            isolated = topology.nodes_in(event.region)
            rest = tuple(node for node in self.cluster.node_ids
                         if node not in isolated)
            rules.add_partition((isolated, rest), now,
                                now + event.duration_ms)
            detail = event.region
        elif isinstance(event, MessageDrop):
            rules.add_drop(now, now + event.duration_ms, event.probability,
                           src=event.src, dst=event.dst)
            detail = f"p={event.probability}"
        elif isinstance(event, MessageDelay):
            rules.add_delay(now, now + event.duration_ms, event.extra_ms,
                            jitter_ms=event.jitter_ms,
                            src=event.src, dst=event.dst)
            detail = f"+{event.extra_ms}ms"
        elif isinstance(event, StorageBrownout):
            self.cluster.storage.set_brownout(
                event.slowdown, now + event.duration_ms)
            detail = f"x{event.slowdown}"
        else:  # pragma: no cover - EVENT_TYPES is closed
            raise TypeError(f"unknown fault event {event!r}")
        kind = event.kind
        self.injected_by_kind[kind] = self.injected_by_kind.get(kind, 0) + 1
        self.applied.append((now, kind, detail))
        tracer = self.sim.tracer
        if tracer.active:
            tracer.instant(f"fault:{kind}", "fault", detail=detail)
        obs = self.sim.obs
        if obs.active:
            # A dump-trigger event: a recorder with a dump_path writes the
            # full ring out, preserving the pre-fault flight recording.
            obs.emit(FAULT_INJECT, kind=kind, detail=detail)
