"""A canonical fault scenario: one app under load with faults injected.

Shared by the replay-determinism tests and the CI fault matrix
(``scripts/fault_matrix.py``): build a small single-app deployment of
any registered scheme (Concord by default), drive Poisson load through
the FaaS platform, replay a :class:`FaultPlan`, let recovery settle,
then capture everything a byte-level replay comparison needs — the
canonical telemetry export, the scheme-dispatched invariant verdict,
and the failure/recovery counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.faas import FaasPlatform
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs import FlightRecorder
from repro.obs import jsonl_dumps as obs_jsonl_dumps
from repro.schemes import build_scheme, make_scheduler, scheme_spec
from repro.sim import Simulator
from repro.telemetry import MetricsRegistry, Sampler, jsonl_dumps
from repro.verify import check_scheme_invariants
from repro.workloads import ALL_PROFILES, build_app, entity_inputs_factory
from repro.workloads.profiles import preload_storage

#: Post-load settle window: failure detection + recovery + drain.
SETTLE_MS = 4000.0


@dataclass
class ScenarioOutcome:
    """Everything a replay comparison or invariant check needs."""

    plan: FaultPlan
    seed: int
    completed: int = 0
    failed: int = 0
    rescheduled: int = 0
    #: (sim_time, app, node_id) failure declarations by the coordinator.
    failures_detected: list = field(default_factory=list)
    recoveries_completed: int = 0
    #: (sim_time, kind, detail) events the injector applied.
    applied: list = field(default_factory=list)
    #: Coherence-invariant violations at the quiescent end state.
    violations: list = field(default_factory=list)
    #: Canonical telemetry export (byte-compared across replays).
    telemetry_jsonl: str = ""
    #: Flight-recorder JSONL ("" unless the scenario ran with obs=...).
    #: Deliberately NOT part of the fingerprint: a recorder must never
    #: change what the fingerprint measures, and obs-on runs are
    #: fingerprint-compared against obs-off runs to prove it.
    obs_jsonl: str = ""
    #: Final shard leader table, one chain per shard (() for flat runs).
    shard_table: tuple = ()
    #: Shards that changed leaders during the run (re-homes + failovers).
    shards_rehomed: int = 0
    #: Leader-loss failovers among those re-homes.
    shard_failovers: int = 0
    #: The scheme instance under test (NOT part of the fingerprint;
    #: experiments read loss counters / staleness logs off it post-run).
    system: object = None

    def fingerprint(self) -> tuple:
        """Order-stable digest for replay equality assertions."""
        return (
            self.completed, self.failed, self.rescheduled,
            tuple(self.failures_detected), self.recoveries_completed,
            tuple(self.applied), tuple(self.violations),
            self.telemetry_jsonl,
            self.shard_table, self.shards_rehomed, self.shard_failovers,
        )


def run_fault_scenario(
    plan: FaultPlan,
    seed: int,
    num_nodes: int = 6,
    duration_ms: float = 8000.0,
    rps: float = 30.0,
    app_name: str = "SocNet",
    recovery_lease_ms=None,
    obs=None,
    shards=None,
    replication: int = 1,
    regions=None,
    settle_ms: float = SETTLE_MS,
    scheme: str = "concord",
    scheme_cfg: dict = None,
) -> ScenarioOutcome:
    """Run the canonical scenario once and capture its outcome.

    ``obs`` attaches a flight recorder: pass ``True`` for an in-memory
    ring (exported into ``ScenarioOutcome.obs_jsonl``), a path string
    for a recorder that also auto-dumps there on every injected fault,
    or a ready :class:`FlightRecorder`.

    ``shards``/``replication`` run the sharded-directory topology;
    ``regions`` accepts a :class:`~repro.net.RegionTopology` or an int
    (nodes split round-robin over that many regions).  ``settle_ms``
    stretches the post-load drain — region partitions need a longer one
    because unreachability reports trail the RPC timeout (~5 s) and the
    resulting eject/rejoin churn must finish before the checker runs.

    ``scheme`` selects any registered scheme (the CI fault matrix races
    the whole catalogue through here); ``scheme_cfg`` passes extra
    builder keywords.  Concord-specific outcome fields (recoveries,
    shard table) stay at their zero defaults for other schemes.
    """
    if isinstance(regions, int):
        from repro.net import RegionTopology

        regions = RegionTopology.even(
            [f"node{i}" for i in range(num_nodes)],
            regions=tuple(f"region{i}" for i in range(regions)))
    # isinstance first: an empty FlightRecorder is falsy (len() == 0).
    recorder = None
    if isinstance(obs, FlightRecorder):
        recorder = obs
    elif isinstance(obs, str):
        recorder = FlightRecorder(dump_path=obs)
    elif obs:
        recorder = FlightRecorder()
    registry = MetricsRegistry()
    sim = Simulator(seed=seed, metrics=registry, obs=recorder)
    config = SimConfig(
        num_nodes=num_nodes, cores_per_node=2,
        # Fast detection keeps recovery inside the settle window.
        heartbeat_interval_ms=200.0, heartbeat_misses=3,
        regions=regions,
    )
    cluster = Cluster(sim, config)
    coord = CoordinationService(cluster.network, config)
    profile = ALL_PROFILES[app_name]
    system = build_scheme(
        scheme, cluster, coord, app_name,
        recovery_lease_ms=recovery_lease_ms,
        shards=shards, replication=replication,
        **(scheme_cfg or {}),
    )
    preload_storage(cluster.storage, profile)
    spec = scheme_spec(scheme)
    if spec.preload is not None:
        # Schemes acting as the terminal store prime themselves too.
        spec.preload(system, profile)
    platform = FaasPlatform(
        cluster, scheduler=make_scheduler(scheme, {app_name: system}))
    app = platform.deploy(build_app(profile), system)
    factory = entity_inputs_factory(profile, sim)

    restartable = (system,) if hasattr(system, "restart_instance") else ()
    injector = FaultInjector(
        cluster, plan, systems=restartable, platform=platform)
    injector.start()
    sampler = Sampler(sim, interval_ms=100.0)
    sampler.start()
    sim.spawn(platform.open_loop(app_name, rps, duration_ms, factory),
              name="load")
    sim.run(until=duration_ms + settle_ms)
    sampler.stop()

    manager = getattr(system, "shard_manager", None)
    shard_table = ()
    if manager is not None:
        shard_table = system.controller.ring.table()
    controller = getattr(system, "controller", None)
    recoveries = (controller.recoveries_completed
                  if controller is not None else 0)

    return ScenarioOutcome(
        plan=plan,
        seed=seed,
        completed=app.requests_completed,
        failed=app.requests_failed,
        rescheduled=app.requests_rescheduled,
        failures_detected=list(coord.failures_detected),
        recoveries_completed=recoveries,
        applied=list(injector.applied),
        violations=check_scheme_invariants(system, cluster),
        telemetry_jsonl=jsonl_dumps(registry),
        obs_jsonl=obs_jsonl_dumps(recorder) if recorder is not None else "",
        shard_table=shard_table,
        shards_rehomed=manager.rehomes_total if manager is not None else 0,
        shard_failovers=(manager.failovers_total
                        if manager is not None else 0),
        system=system,
    )
