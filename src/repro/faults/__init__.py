"""Deterministic fault injection (crashes, partitions, brownouts).

A seeded :class:`FaultPlan` schedules fault events; the
:class:`FaultInjector` replays it against a cluster as a simulator
daemon.  Same plan + same simulator seed = byte-identical run, under any
``PYTHONHASHSEED`` — failing CI plans upload as JSON artifacts and
replay exactly (``scripts/fault_matrix.py``).
"""

from repro.faults.injector import FaultInjector
from repro.faults.scenario import ScenarioOutcome, run_fault_scenario
from repro.faults.plan import (
    EVENT_TYPES,
    FaultEvent,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    NetworkPartition,
    NodeCrash,
    NodeRestart,
    RegionPartition,
    StorageBrownout,
)

__all__ = [
    "EVENT_TYPES",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "MessageDelay",
    "MessageDrop",
    "NetworkPartition",
    "NodeCrash",
    "NodeRestart",
    "RegionPartition",
    "ScenarioOutcome",
    "StorageBrownout",
    "run_fault_scenario",
]
