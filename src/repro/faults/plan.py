"""Declarative, seeded fault schedules.

A :class:`FaultPlan` is a value object: an ordered schedule of fault
events (crashes, restarts, partitions, message drops/delays, storage
brownouts) plus the seed that generated it.  Plans serialize to JSON so a
failing CI run can upload the exact plan as an artifact and anyone can
replay it bit-for-bit (:mod:`repro.faults.injector` consumes plans;
``scripts/fault_matrix.py`` round-trips them).

Determinism contract: a plan is pure data — the only randomness is in
:meth:`FaultPlan.random`, which draws from an explicitly seeded
``random.Random`` and sorts every choice source, so the same seed yields
the same plan under any ``PYTHONHASHSEED``.  Randomness *during* the run
(probabilistic drops, delay jitter) comes from the simulator's named
substreams (``faults:net``), never from the plan.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, fields
from typing import Iterable, Optional


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one scheduled fault, fired at ``at_ms`` simulated time."""

    at_ms: float

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Hard-crash ``node``: network silence, processes die, memory lost."""

    node: str = ""


@dataclass(frozen=True)
class NodeRestart(FaultEvent):
    """Restart ``node`` empty: containers and cache state are gone."""

    node: str = ""


@dataclass(frozen=True)
class NetworkPartition(FaultEvent):
    """Sever traffic between the listed groups for ``duration_ms``.

    ``groups`` is a tuple of node-id tuples; messages between nodes in
    *different* groups are dropped (both directions), nodes absent from
    every group are unaffected.  Messages in flight when the partition
    starts are cut too.
    """

    duration_ms: float = 0.0
    groups: tuple = ()


@dataclass(frozen=True)
class RegionPartition(FaultEvent):
    """Sever traffic between ``region`` and the rest of the cluster.

    Topology-aware variant of :class:`NetworkPartition`: the node groups
    are resolved at injection time from the cluster's
    :class:`~repro.net.regions.RegionTopology` (``SimConfig.regions``),
    so one plan replays against any node count.  Injecting into a
    cluster without a region topology is a plan/config mismatch and
    raises.
    """

    duration_ms: float = 0.0
    region: str = ""


@dataclass(frozen=True)
class MessageDrop(FaultEvent):
    """Drop messages with ``probability`` during the window.

    ``src``/``dst`` restrict the rule to one sender/receiver node id
    (``None`` matches any).  Drop decisions draw from the simulator's
    ``faults:net`` substream, so they are seeded and replayable.
    """

    duration_ms: float = 0.0
    probability: float = 1.0
    src: Optional[str] = None
    dst: Optional[str] = None


@dataclass(frozen=True)
class MessageDelay(FaultEvent):
    """Add ``extra_ms`` (+ uniform jitter) to matching messages."""

    duration_ms: float = 0.0
    extra_ms: float = 5.0
    jitter_ms: float = 0.0
    src: Optional[str] = None
    dst: Optional[str] = None


@dataclass(frozen=True)
class StorageBrownout(FaultEvent):
    """Multiply global-storage latency by ``slowdown`` for the window."""

    duration_ms: float = 0.0
    slowdown: float = 4.0


#: JSON ``kind`` tag -> event class (the wire registry for replay).
EVENT_TYPES = {
    cls.__name__: cls
    for cls in (NodeCrash, NodeRestart, NetworkPartition, RegionPartition,
                MessageDrop, MessageDelay, StorageBrownout)
}


def _decode_event(record: dict) -> FaultEvent:
    record = dict(record)
    kind = record.pop("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault event kind {kind!r}")
    if cls is NetworkPartition and "groups" in record:
        record["groups"] = tuple(tuple(group) for group in record["groups"])
    allowed = {field.name for field in fields(cls)}
    unknown = sorted(set(record) - allowed)
    if unknown:
        raise ValueError(f"{kind}: unknown fields {unknown}")
    return cls(**record)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of fault events, sorted by injection time."""

    events: tuple = ()
    seed: int = 0

    def __post_init__(self):
        ordered = tuple(sorted(self.events, key=lambda event: event.at_ms))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def kinds(self) -> list[str]:
        """Event kind names in schedule order (test/telemetry comparisons)."""
        return [event.kind for event in self.events]

    # -- serialization (CI artifacts, replay) ---------------------------
    def to_json(self, indent: int = 2) -> str:
        payload = {
            "seed": self.seed,
            "events": [
                {"kind": event.kind, **asdict(event)}
                for event in self.events
            ],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        return cls(
            events=tuple(_decode_event(r) for r in payload.get("events", ())),
            seed=payload.get("seed", 0),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())

    # -- seeded generation (the CI fault matrix) ------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        node_ids: Iterable[str],
        horizon_ms: float,
        crashes: int = 1,
        restart: bool = True,
        drops: int = 1,
        delays: int = 1,
        brownouts: int = 1,
        partitions: int = 0,
    ) -> "FaultPlan":
        """A reproducible plan over ``node_ids`` within ``[0, horizon_ms)``.

        Crashes land in the middle half of the horizon so detection and
        recovery complete inside the run; each crashed node restarts
        (when ``restart``) well before the horizon ends.
        """
        rng = random.Random(seed)
        nodes = sorted(node_ids)
        if crashes > max(0, len(nodes) - 2):
            raise ValueError("plan would crash all but one node")
        events: list[FaultEvent] = []
        victims = rng.sample(nodes, crashes)
        for victim in victims:
            crash_at = rng.uniform(0.25, 0.5) * horizon_ms
            events.append(NodeCrash(at_ms=crash_at, node=victim))
            if restart:
                restart_at = crash_at + rng.uniform(0.2, 0.3) * horizon_ms
                events.append(NodeRestart(at_ms=restart_at, node=victim))
        survivors = [node for node in nodes if node not in victims]
        for _ in range(drops):
            events.append(MessageDrop(
                at_ms=rng.uniform(0.1, 0.7) * horizon_ms,
                duration_ms=rng.uniform(0.05, 0.1) * horizon_ms,
                probability=rng.uniform(0.05, 0.25),
                src=rng.choice(survivors) if survivors else None,
            ))
        for _ in range(delays):
            events.append(MessageDelay(
                at_ms=rng.uniform(0.1, 0.7) * horizon_ms,
                duration_ms=rng.uniform(0.05, 0.15) * horizon_ms,
                extra_ms=rng.uniform(1.0, 8.0),
                jitter_ms=rng.uniform(0.0, 2.0),
            ))
        for _ in range(brownouts):
            events.append(StorageBrownout(
                at_ms=rng.uniform(0.1, 0.7) * horizon_ms,
                duration_ms=rng.uniform(0.05, 0.15) * horizon_ms,
                slowdown=rng.uniform(2.0, 6.0),
            ))
        for _ in range(partitions):
            if len(survivors) < 2:
                break
            split = rng.randrange(1, len(survivors))
            events.append(NetworkPartition(
                at_ms=rng.uniform(0.1, 0.6) * horizon_ms,
                duration_ms=rng.uniform(0.05, 0.1) * horizon_ms,
                groups=(tuple(survivors[:split]), tuple(survivors[split:])),
            ))
        return cls(events=tuple(events), seed=seed)
