"""Invocation scheduling policies.

- :class:`RandomScheduler` -- conventional: any node with a warm instance.
- :class:`LocalityScheduler` -- same-function affinity (packs invocations
  of one function onto a stable subset of its nodes); this is the
  "Concord No CAS" baseline of Figure 10.
- :class:`CasScheduler` -- Concord's coherence-aware scheduling
  (Section III-G): the hash of the *invocation inputs* picks the node, so
  invocations operating on the same data share a cache instance; on
  overload it rehashes with a different salt, then falls back to the
  least-loaded candidate.
"""

from __future__ import annotations

import abc
import hashlib
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Node
    from repro.sim import Simulator


def _hash(value: str, salt: int = 0) -> int:
    digest = hashlib.md5(f"{salt}:{value}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class Scheduler(abc.ABC):
    """Picks the node an invocation runs on among warm candidates."""

    name = "abstract"

    @abc.abstractmethod
    def pick(
        self,
        app: str,
        function: str,
        inputs: dict,
        candidates: list,
    ) -> "Node":
        """Choose one of ``candidates`` (non-empty list of Nodes)."""


class RandomScheduler(Scheduler):
    """Uniformly random among non-overloaded candidates."""

    name = "random"

    def __init__(self, sim: "Simulator"):
        self.rng = sim.rng.stream("sched-random")

    def pick(self, app, function, inputs, candidates):
        healthy = [n for n in candidates if not n.overloaded]
        pool = healthy or candidates
        return pool[self.rng.randrange(len(pool))]


class LocalityScheduler(Scheduler):
    """Stable per-function affinity ordering with overload spill-over.

    All invocations of a function prefer the same candidate (then the
    same second choice, and so on), concentrating a function's working
    set without looking at the invocation's inputs.
    """

    name = "locality"

    def pick(self, app, function, inputs, candidates):
        ordered = sorted(
            candidates, key=lambda n: _hash(f"{app}/{function}/{n.id}"))
        for node in ordered:
            if not node.overloaded:
                return node
        return min(ordered, key=lambda n: n.load)


class CasScheduler(Scheduler):
    """Coherence-aware scheduling: hash of the invocation inputs.

    ``data_key(inputs)`` extracts the part of the inputs that determines
    which data the invocation touches (by default the ``"entity"`` input,
    falling back to the whole repr).
    """

    name = "cas"

    def __init__(self, tries: int = 3):
        if tries < 1:
            raise ValueError("tries must be >= 1")
        self.tries = tries

    @staticmethod
    def data_key(inputs: dict) -> str:
        if "entity" in inputs:
            return str(inputs["entity"])
        return repr(sorted(inputs.items()))

    def pick(self, app, function, inputs, candidates):
        ordered = sorted(candidates, key=lambda n: n.id)
        key = self.data_key(inputs)
        for salt in range(self.tries):
            node = ordered[_hash(f"{app}/{key}", salt) % len(ordered)]
            if not node.overloaded:
                return node
        healthy = [n for n in ordered if not n.overloaded]
        if healthy:
            return min(healthy, key=lambda n: n.load)
        return min(ordered, key=lambda n: n.load)
