"""The FaaS platform: deployment, request execution, load generation.

A request flows through its application's workflow; every function
invocation is scheduled onto a node with a warm container (cold-starting
one if needed), burns CPU on that node and accesses storage through the
application's caching scheme.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.faas.app import AppSpec
from repro.faas.context import InvocationContext
from repro.faas.scheduler import RandomScheduler, Scheduler
from repro.metrics import Histogram
from repro.obs.events import REQ_RESCHEDULE, SCHED_COLD, SCHED_WARM
from repro.sim.errors import Interrupt
from repro.telemetry.registry import NULL_CHILD

if TYPE_CHECKING:  # pragma: no cover
    from repro.caching.base import StorageAPI
    from repro.cluster import Cluster, Node
    from repro.sim import Simulator

#: Frontend request-validation + load-balancer overhead per request.
FRONTEND_OVERHEAD_MS = 0.5
#: Container cold-start penalty (optimized platform, paper Section V).
COLD_START_MS = 500.0
#: Pause before re-running a request whose node crashed mid-invocation.
RESCHEDULE_BACKOFF_MS = 10.0


@dataclass
class RequestResult:
    """Outcome of one end-to-end application request."""

    app: str
    start_ms: float
    end_ms: float
    storage_ms: float
    compute_ms: float
    output: object = None

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class DeployedApp:
    """A deployed application plus its runtime bookkeeping."""

    spec: AppSpec
    storage_api: "StorageAPI"
    node_ids: list
    latency: Histogram = field(default_factory=Histogram)
    storage_ms_total: float = 0.0
    compute_ms_total: float = 0.0
    requests_completed: int = 0
    requests_failed: int = 0
    #: Requests re-run on another node after a mid-invocation crash.
    requests_rescheduled: int = 0
    cold_starts: int = 0
    #: Requests admitted but not yet completed (queued + running).
    inflight: int = 0
    #: Telemetry children (no-ops unless the sim carries a registry).
    metric_latency: object = field(default=NULL_CHILD, repr=False)
    metric_sched_delay: object = field(default=NULL_CHILD, repr=False)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def storage_fraction(self) -> float:
        """Fraction of busy time spent in storage (Figure 1)."""
        total = self.storage_ms_total + self.compute_ms_total
        return self.storage_ms_total / total if total else 0.0


class PlacementPolicy:
    """Chooses a node for a brand-new function instance (cold start).

    Conventional platforms place functions independently of each other
    (paper Section IV-B): least-loaded with random tie-breaking, which on
    a lightly loaded cluster effectively scatters the instances.
    """

    def place(self, platform: "FaasPlatform", app: "DeployedApp",
              function: str) -> "Node":
        candidates = [
            platform.cluster.node(nid) for nid in app.node_ids
            if platform.cluster.node(nid).alive
        ] or platform.cluster.alive_nodes()
        lightest = min(n.load for n in candidates)
        pool = [n for n in candidates if n.load == lightest]
        rng = platform.sim.rng.stream("placement")
        return pool[rng.randrange(len(pool))]


class FaasPlatform:
    """Cluster-wide serverless platform."""

    _invocation_ids = itertools.count(1)

    def __init__(
        self,
        cluster: "Cluster",
        scheduler: Optional[Scheduler] = None,
        placement: Optional[PlacementPolicy] = None,
    ):
        self.cluster = cluster
        self.sim: "Simulator" = cluster.sim
        self.scheduler = scheduler or RandomScheduler(cluster.sim)
        self.placement = placement or PlacementPolicy()
        self.apps: dict[str, DeployedApp] = {}
        #: Submitted requests interrupted by a node crash are re-run on
        #: surviving nodes (scheduling already avoids dead nodes).
        self.reschedule_on_crash = True
        #: How many crash re-runs one request gets before failing.
        self.max_reschedules = 2
        #: node_id -> {request process: None} for invocations currently
        #: executing there (dict as insertion-ordered set: interrupt
        #: order must not depend on hash order).
        self._invocations_on: dict[str, dict] = {}
        #: app -> interned "req:<app>" spawn name (submit is per-request).
        self._req_names: dict[str, str] = {}
        cluster.on_crash(self._interrupt_node_invocations)

    # -- deployment ------------------------------------------------------------
    def deploy(
        self,
        spec: AppSpec,
        storage_api: "StorageAPI",
        node_ids: Optional[list] = None,
        prewarm: bool = True,
    ) -> DeployedApp:
        """Deploy ``spec`` with containers on ``node_ids`` (all by default)."""
        nodes = list(node_ids) if node_ids is not None else self.cluster.node_ids
        app = DeployedApp(spec=spec, storage_api=storage_api, node_ids=nodes)
        self.apps[spec.name] = app
        if prewarm:
            for node_id in nodes:
                node = self.cluster.node(node_id)
                for function in spec.functions.values():
                    node.add_container(
                        spec.name, function.name,
                        memory_alloc=function.memory_alloc,
                        memory_used=function.memory_used,
                    )
        self._register_app_metrics(app)
        return app

    def _register_app_metrics(self, app: DeployedApp) -> None:
        """Expose per-app request instruments on the sim registry."""
        metrics = self.sim.metrics
        if not metrics.active:
            return
        name = app.name
        metrics.counter(
            "faas_requests_completed_total", "Requests finished end-to-end.",
            labelnames=("app",),
        ).set_callback(lambda: app.requests_completed, app=name)
        metrics.counter(
            "faas_requests_failed_total", "Submitted requests that raised.",
            labelnames=("app",),
        ).set_callback(lambda: app.requests_failed, app=name)
        metrics.counter(
            "faas_requests_rescheduled_total",
            "Requests re-run after a mid-invocation node crash.",
            labelnames=("app",),
        ).set_callback(lambda: app.requests_rescheduled, app=name)
        metrics.counter(
            "faas_cold_starts_total", "Invocations that cold-started.",
            labelnames=("app",),
        ).set_callback(lambda: app.cold_starts, app=name)
        metrics.gauge(
            "faas_inflight_requests",
            "Requests admitted but not yet completed.",
            labelnames=("app",),
        ).set_callback(lambda: app.inflight, app=name)
        app.metric_latency = metrics.histogram(
            "faas_request_latency_ms", "End-to-end request latency.",
            labelnames=("app",),
        ).labels(app=name)
        app.metric_sched_delay = metrics.histogram(
            "faas_scheduling_delay_ms",
            "Admission-to-execution delay per invocation "
            "(scheduling, placement, cold start).",
            labelnames=("app",),
        ).labels(app=name)

    def warm_nodes(self, app: DeployedApp, function: str) -> list:
        """Alive nodes holding a warm container of ``function``."""
        return [
            node
            for node_id in app.node_ids
            if (node := self.cluster.nodes.get(node_id)) is not None
            and node.alive
            and node.containers_of(app.name, function)
        ]

    # -- request execution -------------------------------------------------------
    def request(self, app_name: str, inputs: Optional[dict] = None):
        """Execute one request end-to-end (generator; returns RequestResult).

        When tracing, each request opens a fresh root ``request`` span
        (``parent=None``), so everything the request causes — function
        invocations, cache-agent work, invalidation fan-out, storage round
        trips, even on other nodes — forms one trace tree per request.

        Plain dispatcher, not itself a generator: with tracing off it
        hands back the ``_request`` generator directly, so the hot path
        carries no wrapper frame (``yield from`` sees the same object).
        """
        if not self.sim.tracer.active:
            return self._request(app_name, inputs)
        return self._traced_request(app_name, inputs)

    def _traced_request(self, app_name: str, inputs: Optional[dict] = None):
        with self.sim.tracer.span(f"request:{app_name}", "request",
                                  parent=None, app=app_name):
            return (yield from self._request(app_name, inputs))

    def _request(self, app_name: str, inputs: Optional[dict] = None):
        app = self.apps[app_name]
        inputs = dict(inputs or {})
        start = self.sim.now
        storage_ms = compute_ms = 0.0
        app.inflight += 1
        try:
            yield self.sim.sleep(FRONTEND_OVERHEAD_MS)
            output = None
            for function_name in app.spec.workflow:
                ctx, result = yield from self.invoke(app, function_name, inputs)
                storage_ms += ctx.storage_ms
                compute_ms += ctx.compute_ms
                output = result
                inputs = {**inputs, "prev": result}
        finally:
            app.inflight -= 1
        result = RequestResult(
            app=app_name, start_ms=start, end_ms=self.sim.now,
            storage_ms=storage_ms, compute_ms=compute_ms, output=output,
        )
        app.latency.record(result.latency_ms)
        app.metric_latency.observe(result.latency_ms)
        app.storage_ms_total += storage_ms
        app.compute_ms_total += compute_ms
        app.requests_completed += 1
        return result

    def invoke(self, app: DeployedApp, function_name: str, inputs: dict):
        """Schedule and run one function invocation (generator).

        Returns ``(ctx, handler_result)``.  Plain dispatcher like
        :meth:`request`: tracing off returns the ``_invoke`` generator
        with no wrapper frame.
        """
        if not self.sim.tracer.active:
            return self._invoke(app, function_name, inputs)
        return self._traced_invoke(app, function_name, inputs)

    def _traced_invoke(self, app: DeployedApp, function_name: str, inputs: dict):
        with self.sim.tracer.span(f"invoke:{function_name}", "invoke",
                                  app=app.name, function=function_name):
            return (yield from self._invoke(app, function_name, inputs))

    def _invoke(self, app: DeployedApp, function_name: str, inputs: dict):
        spec = app.spec.function(function_name)
        if spec is None:
            raise KeyError(f"{app.name} has no function {function_name!r}")
        admitted = self.sim.now
        pre_pick = getattr(self.scheduler, "pre_pick", None)
        if pre_pick is not None:
            # Schedulers may need cluster state before deciding (Apta
            # queries its memory nodes for stale compute nodes).
            yield from pre_pick(self, app.name, function_name, inputs)
        candidates = self.warm_nodes(app, function_name)
        if candidates:
            node = self.scheduler.pick(app.name, function_name, inputs, candidates)
            container = node.containers_of(app.name, function_name)[0]
            obs = self.sim.obs
            if obs.active:
                obs.emit(SCHED_WARM, node=node.id, app=app.name,
                         fn=function_name, warm=len(candidates))
        else:
            node = self.placement.place(self, app, function_name)
            # Register the container *before* the cold start completes so
            # concurrent invocations queue on it instead of each starting
            # yet another container (thundering herd).
            container = node.add_container(
                app.name, function_name,
                memory_alloc=spec.memory_alloc, memory_used=spec.memory_used,
            )
            if node.id not in app.node_ids:
                app.node_ids.append(node.id)
            app.cold_starts += 1
            obs = self.sim.obs
            if obs.active:
                obs.emit(SCHED_COLD, node=node.id, app=app.name,
                         fn=function_name)
            yield self.sim.sleep(COLD_START_MS)
        app.metric_sched_delay.observe(self.sim.now - admitted)
        container.active += 1
        container.last_used = self.sim.now
        ctx = InvocationContext(
            self.sim, node, app.name, function_name, app.storage_api,
            inputs=inputs, invocation_id=next(self._invocation_ids),
        )
        # Register the executing process with its node so a crash there
        # interrupts the invocation (the process dies with the node).
        process = self.sim.active_process
        if process is not None:
            self._invocations_on.setdefault(node.id, {})[process] = None
        try:
            result = yield from spec.handler(ctx)
        finally:
            container.active -= 1
            container.last_used = self.sim.now
            if process is not None:
                self._invocations_on.get(node.id, {}).pop(process, None)
        return ctx, result

    def _interrupt_node_invocations(self, node_id: str) -> None:
        """Crash listener: kill every invocation running on ``node_id``."""
        for process in list(self._invocations_on.pop(node_id, {})):
            process.interrupt("node crash")

    # -- load generation ----------------------------------------------------------
    def submit(self, app_name: str, inputs: Optional[dict] = None):
        """Fire-and-forget a request (failures counted, not raised)."""
        name = self._req_names.get(app_name)
        if name is None:
            name = f"req:{app_name}"
            self._req_names[app_name] = name
        process = self.sim.spawn(
            self._guarded_request(app_name, inputs), name=name, daemon=True,
        )
        return process

    def _guarded_request(self, app_name: str, inputs):
        app = self.apps[app_name]
        reschedules = 0
        while True:
            try:
                result = yield from self.request(app_name, inputs)
            except Interrupt:
                # The node running one of this request's invocations
                # crashed.  Re-run the whole request; scheduling and
                # placement already steer around dead nodes.
                if (self.reschedule_on_crash
                        and reschedules < self.max_reschedules):
                    reschedules += 1
                    app.requests_rescheduled += 1
                    obs = self.sim.obs
                    if obs.active:
                        obs.emit(REQ_RESCHEDULE, app=app_name,
                                 attempt=reschedules)
                    yield self.sim.timeout(RESCHEDULE_BACKOFF_MS)
                    continue
                app.requests_failed += 1
                return None
            except Exception:
                app.requests_failed += 1
                raise
            return result

    def open_loop(
        self,
        app_name: str,
        rps: float,
        duration_ms: float,
        inputs_factory=None,
    ):
        """Poisson arrival process at ``rps`` for ``duration_ms`` (generator).

        ``inputs_factory(request_index)`` produces each request's inputs.
        """
        rng = self.sim.rng.stream(f"arrivals:{app_name}")
        deadline = self.sim.now + duration_ms
        index = 0
        while self.sim.now < deadline:
            yield self.sim.timeout(rng.expovariate(rps / 1000.0))
            if self.sim.now >= deadline:
                break
            inputs = inputs_factory(index) if inputs_factory else {}
            self.submit(app_name, inputs)
            index += 1
        return index

    # -- container lifecycle -------------------------------------------------------
    def collect_idle_containers(self, grace_ms: Optional[float] = None) -> int:
        """Evict containers idle beyond the grace period; returns count."""
        grace = grace_ms if grace_ms is not None else self.cluster.config.grace_period_ms
        evicted = 0
        for node in self.cluster.alive_nodes():
            for container in list(node.containers.values()):
                if container.active == 0 and self.sim.now - container.last_used > grace:
                    node.remove_container(container.id)
                    evicted += 1
        return evicted
