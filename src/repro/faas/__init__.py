"""The serverless platform substrate (OpenWhisk/MXFaaS stand-in).

Applications are workflows of functions; the platform schedules each
invocation onto a node with a warm container, charges compute to that
node's cores, and routes all storage operations through the application's
caching scheme (:class:`~repro.caching.base.StorageAPI`).
"""

from repro.faas.app import AppSpec, FunctionSpec
from repro.faas.context import InvocationContext
from repro.faas.platform import DeployedApp, FaasPlatform, RequestResult
from repro.faas.scheduler import (
    CasScheduler,
    LocalityScheduler,
    RandomScheduler,
    Scheduler,
)

__all__ = [
    "AppSpec",
    "CasScheduler",
    "DeployedApp",
    "FaasPlatform",
    "FunctionSpec",
    "InvocationContext",
    "LocalityScheduler",
    "RandomScheduler",
    "RequestResult",
    "Scheduler",
]
