"""Application and function specifications.

A function's behaviour is a *handler*: a generator function receiving an
:class:`~repro.faas.context.InvocationContext` and using its ``read`` /
``write`` / ``compute`` primitives.  An application is a named set of
functions plus a workflow (the chain a request flows through).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.config import MB

#: handler(ctx) -> generator; its return value becomes the step's output.
FunctionHandler = Callable[["InvocationContext"], Generator]


@dataclass
class FunctionSpec:
    """One deployable serverless function."""

    name: str
    handler: FunctionHandler
    #: Memory the container is allocated (OpenWhisk minimum by default).
    memory_alloc: int = 128 * MB
    #: Memory the function actually uses; the rest is repurposable.
    memory_used: int = 24 * MB


@dataclass
class AppSpec:
    """A multi-function application."""

    name: str
    functions: dict = field(default_factory=dict)  # name -> FunctionSpec
    #: Request workflow: functions invoked in order, each seeing the
    #: previous step's output in ``ctx.inputs["prev"]``.
    workflow: list = field(default_factory=list)

    def add_function(self, spec: FunctionSpec, in_workflow: bool = True) -> "AppSpec":
        self.functions[spec.name] = spec
        if in_workflow:
            self.workflow.append(spec.name)
        return self

    def function(self, name: str) -> Optional[FunctionSpec]:
        return self.functions.get(name)
