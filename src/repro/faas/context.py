"""The invocation context handed to function handlers.

Wraps the node the invocation runs on and the application's caching
scheme, and accounts where the invocation's time goes (compute vs storage)
for the Figure-1 breakdown.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.caching.base import AccessContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.caching.base import StorageAPI
    from repro.cluster import Node
    from repro.sim import Simulator


class InvocationContext:
    """Runtime services available to one function invocation."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        app: str,
        function: str,
        storage: "StorageAPI",
        inputs: Optional[dict] = None,
        invocation_id: int = 0,
        txn_id: Optional[str] = None,
    ):
        self.sim = sim
        self.node = node
        self.app = app
        self.function = function
        self.storage = storage
        self.inputs = inputs or {}
        self.invocation_id = invocation_id
        self.access = AccessContext(
            function=function, invocation_id=invocation_id, txn_id=txn_id,
        )
        #: Time accounting for the response-time breakdown (Figure 1).
        self.storage_ms = 0.0
        self.compute_ms = 0.0

    # -- storage -----------------------------------------------------------
    def read(self, key: str):
        """Read ``key`` through the app's caching scheme (yield from)."""
        start = self.sim.now
        value = yield from self.storage.read(self.node.id, key, self.access)
        self.storage_ms += self.sim.now - start
        return value

    def write(self, key: str, value: object):
        """Write ``key`` through the app's caching scheme (yield from)."""
        start = self.sim.now
        yield from self.storage.write(self.node.id, key, value, self.access)
        self.storage_ms += self.sim.now - start
        return None

    # -- compute ------------------------------------------------------------
    def compute(self, ms: float):
        """Burn ``ms`` of CPU on this node's cores (queues when busy)."""
        tracer = self.sim.tracer
        span = (tracer.span("compute", "compute",
                            node=self.node.id, function=self.function)
                if tracer.active else None)
        start = self.sim.now
        try:
            yield self.node.cores.acquire_wait()
            try:
                yield self.sim.sleep(ms)
            finally:
                self.node.cores.release()
            self.compute_ms += self.sim.now - start
            return None
        finally:
            if span is not None:
                span.end()
