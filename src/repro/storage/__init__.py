"""Global blob storage model (stand-in for Azure Blob Storage)."""

from repro.storage.blob import DataItem, GlobalStorage, StorageRecord, StorageStats

__all__ = ["DataItem", "GlobalStorage", "StorageRecord", "StorageStats"]
