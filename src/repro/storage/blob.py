"""Versioned key-value global storage with a blob-service latency model.

The paper treats Azure Blob Storage as a durable, always-consistent store
with a ~30 ms round trip; writes are acknowledged only after the service
commits them (write-through semantics rely on this).  Versions increase
monotonically per key — the Faa$T baseline's version protocol and the
external-write listener both build on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.config import LatencyModel
from repro.net.sizes import sizeof

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator


@dataclass(frozen=True)
class DataItem:
    """An opaque application data blob with an explicit wire size.

    ``payload`` is any hashable token identifying the written value (tests
    use strings; workloads use (key, sequence) tuples).  Equality of two
    :class:`DataItem` objects means byte-identical blobs.
    """

    payload: object
    size_bytes: int = 64

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DataItem({self.payload!r}, {self.size_bytes}B)"


@dataclass
class StorageRecord:
    """Internal per-key record: the latest value and its version."""

    value: object
    version: int


@dataclass
class StorageStats:
    """Aggregate storage traffic counters."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0


#: Listener signature: (key, value, version, writer_tag) -> None.
WriteListener = Callable[[str, object, int, str], None]


class GlobalStorage:
    """Durable versioned KV store accessed with blob-service latency.

    All access methods are generators (simulation sub-processes) to be used
    with ``yield from``.  ``writer`` tags identify who wrote (cache agent
    address, or ``"external"``) so write listeners can implement the
    paper's external-write trigger (Section III-C3).
    """

    def __init__(
        self,
        sim: "Simulator",
        latency: Optional[LatencyModel] = None,
        name: str = "storage",
        topology=None,
    ):
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.name = name
        #: Optional :class:`~repro.net.regions.RegionTopology`: callers
        #: outside the storage region pay the pair's full extra RTT per
        #: operation (the blob service lives somewhere specific).
        self.topology = topology
        #: Operations that paid a cross-region penalty.
        self.cross_region_ops = 0
        self._data: dict[str, StorageRecord] = {}
        self._listeners: list[WriteListener] = []
        self.stats = StorageStats()
        #: Operations currently inside their storage round trip.
        self._inflight = 0
        #: Brownout window (fault injection): while ``sim.now`` is before
        #: ``_brownout_until`` every access latency is multiplied by
        #: ``_brownout_factor`` (service degradation, not unavailability).
        self._brownout_factor = 1.0
        self._brownout_until = 0.0
        metrics = sim.metrics
        if metrics.active:
            stats = self.stats
            metrics.counter(
                "storage_reads_total", "Storage read round trips.",
                labelnames=("store",),
            ).set_callback(lambda: stats.reads, store=name)
            metrics.counter(
                "storage_writes_total", "Storage write round trips.",
                labelnames=("store",),
            ).set_callback(lambda: stats.writes, store=name)
            metrics.counter(
                "storage_read_bytes_total", "Bytes read from storage.",
                labelnames=("store",),
            ).set_callback(lambda: stats.read_bytes, store=name)
            metrics.counter(
                "storage_write_bytes_total", "Bytes written to storage.",
                labelnames=("store",),
            ).set_callback(lambda: stats.write_bytes, store=name)
            metrics.gauge(
                "storage_inflight_ops",
                "Operations inside their storage round trip.",
                labelnames=("store",),
            ).set_callback(lambda: self._inflight, store=name)
            metrics.gauge(
                "storage_brownout_factor",
                "Current latency multiplier (1.0 = healthy).",
                labelnames=("store",),
            ).set_callback(lambda: self.brownout_factor(), store=name)
            if topology is not None:
                metrics.counter(
                    "storage_cross_region_ops_total",
                    "Storage operations paying a cross-region round trip.",
                    labelnames=("store", "region"),
                ).set_callback(lambda: self.cross_region_ops, store=name,
                               region=topology.storage_region)

    # -- fault injection ----------------------------------------------------
    def set_brownout(self, factor: float, until_ms: float) -> None:
        """Degrade access latency by ``factor`` until ``until_ms``."""
        if factor < 1.0:
            raise ValueError("brownout factor must be >= 1.0")
        self._brownout_factor = factor
        self._brownout_until = until_ms

    def brownout_factor(self) -> float:
        """The latency multiplier in effect right now."""
        if self.sim.now < self._brownout_until:
            return self._brownout_factor
        return 1.0

    def _delay(self, base_ms: float) -> float:
        return base_ms * self.brownout_factor()

    def _region_extra(self, caller: str) -> float:
        """Extra round-trip cost for ``caller`` (node id or endpoint
        address) reaching this store; counts cross-region ops."""
        if self.topology is None or not caller:
            return 0.0
        node = caller.split("/", 1)[0]
        extra = self.topology.storage_extra_ms(node)
        if extra > 0.0:
            self.cross_region_ops += 1
        return extra

    # -- synchronous setup / inspection (no simulated latency) -------------
    def preload(self, items: dict[str, object]) -> None:
        """Populate keys instantly (version 1), without latency or events."""
        for key, value in items.items():
            self._data[key] = StorageRecord(value=value, version=1)

    def peek(self, key: str) -> Optional[StorageRecord]:
        """Inspect a record without simulated latency (tests/invariants)."""
        return self._data.get(key)

    def version_of(self, key: str) -> int:
        """Current version of ``key`` (0 if absent); no latency."""
        record = self._data.get(key)
        return record.version if record else 0

    def add_write_listener(self, listener: WriteListener) -> None:
        """Register a callback invoked at commit time of every write."""
        self._listeners.append(listener)

    # -- simulated access ---------------------------------------------------
    def _traced(self, op: str, key: str, inner):
        """Wrap one access generator in a ``storage`` span when tracing.

        Also brackets the in-flight-op count sampled by telemetry (the
        increment/decrement pair is two int ops; no cost worth gating).
        """
        self._inflight += 1
        try:
            tracer = self.sim.tracer
            if not tracer.active:
                return (yield from inner)
            with tracer.span(f"storage:{op}", "storage", store=self.name,
                             key=key):
                return (yield from inner)
        finally:
            self._inflight -= 1

    def read(self, key: str, reader: str = ""):
        """Read ``key``: yields, returns ``(value, version)``.

        A missing key returns ``(None, 0)`` — serverless storage APIs are
        key-value and idempotent (paper Section II-B).  ``reader`` tags
        the caller for the multi-region latency model; untagged reads are
        treated as in-region.
        """
        return (yield from self._traced("read", key, self._read(key, reader)))

    def _read(self, key: str, reader: str = ""):
        record = self._data.get(key)
        size = sizeof(record.value) if record else 0
        yield self.sim.sleep(self._delay(self.latency.storage_read(size))
                             + self._region_extra(reader))
        self.stats.reads += 1
        self.stats.read_bytes += size
        # Re-read after the latency: a concurrent write may have landed.
        record = self._data.get(key)
        if record is None:
            return (None, 0)
        return (record.value, record.version)

    def write(self, key: str, value: object, writer: str = "unknown"):
        """Write ``key``: yields, returns the new version.

        The value commits (and listeners fire) when the ack is generated,
        i.e. after the full storage round trip — so a concurrent reader
        that started earlier can still observe the old value, exactly as
        with a real blob service.
        """
        return (yield from self._traced("write", key,
                                        self._write(key, value, writer)))

    def _write(self, key: str, value: object, writer: str):
        size = sizeof(value)
        yield self.sim.sleep(self._delay(self.latency.storage_write(size))
                             + self._region_extra(writer))
        self.stats.writes += 1
        self.stats.write_bytes += size
        record = self._data.get(key)
        version = (record.version + 1) if record else 1
        self._data[key] = StorageRecord(value=value, version=version)
        for listener in self._listeners:
            listener(key, value, version, writer)
        return version

    def compare_and_swap(self, key: str, value: object, expected_version: int,
                         writer: str = "unknown"):
        """Conditional write: commits only if the version still matches.

        Returns ``(ok, version)`` — on success the new version, on failure
        the current one.  Models DynamoDB/Blob conditional updates, the
        primitive Saga/Beldi-style systems detect conflicts with.
        """
        return (yield from self._traced(
            "cas", key, self._compare_and_swap(key, value, expected_version,
                                               writer)))

    def _compare_and_swap(self, key, value, expected_version, writer):
        size = sizeof(value)
        yield self.sim.sleep(self._delay(self.latency.storage_write(size))
                             + self._region_extra(writer))
        self.stats.writes += 1
        record = self._data.get(key)
        current = record.version if record else 0
        if current != expected_version:
            return (False, current)
        self.stats.write_bytes += size
        version = current + 1
        self._data[key] = StorageRecord(value=value, version=version)
        for listener in self._listeners:
            listener(key, value, version, writer)
        return (True, version)

    def read_version(self, key: str, reader: str = ""):
        """Fetch only the version number of ``key`` (Faa$T fallback path)."""
        return (yield from self._traced("read_version", key,
                                        self._read_version(key, reader)))

    def _read_version(self, key: str, reader: str = ""):
        yield self.sim.sleep(self._delay(self.latency.storage_read(8))
                             + self._region_extra(reader))
        self.stats.reads += 1
        return self.version_of(key)
