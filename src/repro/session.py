"""One-object facade over the simulator / cluster / scheme wiring.

The explicit five-object setup (Simulator, Cluster, CoordinationService,
scheme system, drive-to-completion helper) stays fully supported — every
piece remains public — but most scripts want exactly one shape::

    from repro.session import Session
    from repro.storage import DataItem

    with Session(nodes=4, seed=42, scheme="concord") as s:
        s.preload({"k": DataItem("v0", 256)})
        value = s.read("node1", "k")
        s.write("node2", "k", DataItem("v1", 256))

Schemes are constructed through the :mod:`repro.schemes` registry, so any
registered name works (``concord``, ``faast``, ``ofc``, ``nocache``, ...).
Passing ``trace=True`` attaches a :class:`~repro.trace.Tracer`; passing a
path string additionally exports a Chrome trace there when the session
closes.  ``metrics=`` works the same way for time-series telemetry: pass
``True`` (or a :class:`~repro.telemetry.MetricsRegistry`) to attach a
registry sampled every ``metrics_interval_ms`` of simulated time, or a
path string to also export the JSONL timeline on close.  ``obs=``
follows the same contract for the protocol-event flight recorder: pass
``True`` (or a :class:`~repro.obs.FlightRecorder`) to record protocol
events, or a path string to also dump the ring as JSONL on close — and,
through the recorder's own auto-dump hook, the moment a fault is
injected or the coherence checker flags a violation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from repro.cluster import Cluster
from repro.config import SimConfig
from repro.coord import CoordinationService
from repro.obs import FlightRecorder
from repro.obs import export_jsonl as _obs_export_jsonl
from repro.schemes import build_scheme
from repro.sim import Simulator
from repro.telemetry import MetricsRegistry, Sampler
from repro.telemetry import export_csv as _metrics_export_csv
from repro.telemetry import export_jsonl as _metrics_export_jsonl
from repro.telemetry import export_prometheus as _metrics_export_prometheus
from repro.trace import Tracer, export_chrome, export_jsonl

__all__ = ["RunResult", "Session"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one :meth:`Session.run` drive.

    Carries the operation's return value together with where the
    simulated clock started and stopped, so callers get latency
    accounting without sampling ``sim.now`` around every call.
    """

    #: The driven generator's return value.
    value: object
    #: Simulated clock when the drive started / finished (ms).
    started_ms: float
    finished_ms: float

    @property
    def duration_ms(self) -> float:
        """Simulated milliseconds the operation took."""
        return self.finished_ms - self.started_ms


#: Parameter order of the pre-v2 positional signature, oldest first —
#: how bare positional arguments are interpreted on the deprecated path.
_LEGACY_POSITIONAL = (
    "nodes", "seed", "scheme", "app", "cores_per_node",
    "trace", "metrics", "metrics_interval_ms", "config",
)


class Session:
    """A ready-to-use simulated cluster running one caching scheme.

    All configuration is keyword-only::

        with Session(nodes=4, seed=42, scheme="concord") as s:
            ...

    Positional configuration (the pre-v2 signature) still works but emits
    a :class:`DeprecationWarning` and will be removed in a later release.
    """

    def __init__(self, *legacy_args, **kwargs):
        if legacy_args:
            warnings.warn(
                "positional Session(...) configuration is deprecated; "
                "pass every setting as a keyword argument "
                "(e.g. Session(nodes=4, seed=42))",
                DeprecationWarning, stacklevel=2)
            if len(legacy_args) > len(_LEGACY_POSITIONAL):
                raise TypeError(
                    f"Session() takes at most {len(_LEGACY_POSITIONAL)} "
                    f"positional arguments ({len(legacy_args)} given)")
            for name, value in zip(_LEGACY_POSITIONAL, legacy_args):
                if name in kwargs:
                    raise TypeError(
                        f"Session() got multiple values for argument {name!r}")
                kwargs[name] = value
        nodes = kwargs.pop("nodes", 4)
        seed = kwargs.pop("seed", 42)
        scheme = kwargs.pop("scheme", "concord")
        app = kwargs.pop("app", "app")
        cores_per_node = kwargs.pop("cores_per_node", 8)
        trace = kwargs.pop("trace", None)
        metrics = kwargs.pop("metrics", None)
        obs = kwargs.pop("obs", None)
        metrics_interval_ms = kwargs.pop("metrics_interval_ms", 100.0)
        regions = kwargs.pop("regions", None)
        config: Optional[SimConfig] = kwargs.pop("config", None)
        scheme_cfg = kwargs
        if regions is not None and config is not None:
            raise TypeError(
                "pass regions= via the SimConfig when config= is given")
        if isinstance(regions, int):
            from repro.net import RegionTopology

            regions = RegionTopology.even(
                [f"node{i}" for i in range(nodes)],
                regions=tuple(f"region{i}" for i in range(regions)))
        self._trace = trace
        tracer = None
        if trace:
            tracer = trace if isinstance(trace, Tracer) else Tracer()
        self.tracer: Optional[Tracer] = tracer
        self._metrics = metrics
        registry = None
        if metrics:
            registry = (metrics if isinstance(metrics, MetricsRegistry)
                        else MetricsRegistry())
        self.metrics: Optional[MetricsRegistry] = registry
        self._obs = obs
        # isinstance first: an empty FlightRecorder is falsy (len() == 0).
        recorder = None
        if isinstance(obs, FlightRecorder):
            recorder = obs
        elif isinstance(obs, str):
            # Auto-dump to the same path on faults/violations too.
            recorder = FlightRecorder(dump_path=obs)
        elif obs:
            recorder = FlightRecorder()
        self.obs: Optional[FlightRecorder] = recorder
        self.sim = Simulator(seed=seed, tracer=tracer, metrics=registry,
                             obs=recorder)
        self.config = config or SimConfig(
            num_nodes=nodes, cores_per_node=cores_per_node, regions=regions)
        self.cluster = Cluster(self.sim, self.config)
        self.coord = CoordinationService(self.cluster.network, self.config)
        self.scheme = scheme
        self.app = app
        #: The scheme instance (a StorageAPI) built through the registry.
        self.system = build_scheme(
            scheme, self.cluster, self.coord, app=app, **scheme_cfg)
        #: Fixed-interval telemetry sampler (inert when metrics is off).
        self.sampler = Sampler(self.sim, interval_ms=metrics_interval_ms)
        self.sampler.start()

    # -- data ----------------------------------------------------------------
    @property
    def storage(self):
        """The cluster's global (durable) storage."""
        return self.cluster.storage

    def preload(self, items: dict) -> None:
        """Populate global storage instantly (no simulated latency)."""
        self.cluster.storage.preload(items)

    # -- driving the clock ---------------------------------------------------
    def run(self, operation, limit_ms: float = 60_000.0) -> RunResult:
        """Drive one operation generator to completion.

        Returns a :class:`RunResult` carrying the operation's value plus
        the simulated start/finish timestamps of the drive.
        """
        started = self.sim.now
        value = self.sim.run_until_complete(
            self.sim.spawn(operation), limit=started + limit_ms)
        return RunResult(value=value, started_ms=started,
                         finished_ms=self.sim.now)

    def read(self, node_id: str, key: str):
        """Read ``key`` from ``node_id`` through the scheme (blocking)."""
        return self.run(self.system.read(node_id, key)).value

    def write(self, node_id: str, key: str, value: object):
        """Write ``key`` at ``node_id`` through the scheme (blocking)."""
        return self.run(self.system.write(node_id, key, value)).value

    def advance(self, ms: float) -> None:
        """Let the simulation run for ``ms`` more milliseconds."""
        self.sim.run(until=self.sim.now + ms)

    # -- tracing -------------------------------------------------------------
    def export_trace(self, path: str, fmt: str = "chrome") -> None:
        """Write collected spans to ``path`` (``chrome`` or ``jsonl``)."""
        if self.tracer is None:
            raise RuntimeError("session was created without trace=...")
        if fmt == "chrome":
            export_chrome(self.tracer, path)
        elif fmt == "jsonl":
            export_jsonl(self.tracer, path)
        else:
            raise ValueError(f"unknown trace format {fmt!r}")

    # -- telemetry -----------------------------------------------------------
    def export_metrics(self, path: str, fmt: str = "jsonl") -> None:
        """Write sampled timelines to ``path``.

        ``fmt`` is ``jsonl``, ``csv`` or ``prometheus`` (text exposition
        format; export-only — the ``repro-metrics`` CLI reads the first
        two).
        """
        if self.metrics is None:
            raise RuntimeError("session was created without metrics=...")
        if fmt == "jsonl":
            _metrics_export_jsonl(self.metrics, path)
        elif fmt == "csv":
            _metrics_export_csv(self.metrics, path)
        elif fmt == "prometheus":
            _metrics_export_prometheus(self.metrics, path)
        else:
            raise ValueError(f"unknown metrics format {fmt!r}")

    # -- flight recorder -----------------------------------------------------
    def export_obs(self, path: str) -> None:
        """Write the flight recorder's event ring to ``path`` (JSONL)."""
        if self.obs is None:
            raise RuntimeError("session was created without obs=...")
        _obs_export_jsonl(self.obs, path)

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Finish the session; exports trace/timeline/events as requested."""
        self.sampler.stop()
        if self.tracer is not None and isinstance(self._trace, str):
            self.export_trace(self._trace)
        if self.metrics is not None and isinstance(self._metrics, str):
            self.export_metrics(self._metrics)
        if self.obs is not None and isinstance(self._obs, str):
            self.export_obs(self._obs)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.close()
        return False
