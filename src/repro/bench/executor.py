"""Parallel job executor: spawn workers, timeouts, retries, isolation.

``run_jobs`` executes a list of :class:`~repro.bench.job.JobSpec` and
returns one :class:`~repro.bench.job.JobResult` per spec **in spec
order**, regardless of completion order — callers see deterministic
output whether the sweep ran serially or on N workers.

Design points:

- **Spawn context, explicit hash seed.**  Workers are created with the
  ``spawn`` start method (no inherited interpreter state, same behavior
  on every platform) and ``PYTHONHASHSEED`` is pinned in the environment
  before the pool starts, so worker processes cannot re-randomize hash
  order out from under the determinism contract.  A parent that already
  pinned the variable propagates its value; otherwise ``0`` is pinned.
- **Failure isolation.**  A job that raises is recorded as
  ``status="error"`` and the sweep continues.  A job that *hard-crashes
  its worker* (``os._exit``, OOM kill, segfault) breaks the whole
  ``ProcessPoolExecutor``; the executor then rebuilds the pool and
  re-runs every job that was in flight **one at a time in single-worker
  pools**, so only the genuine crasher is charged — innocent bystanders
  re-run at no retry cost.
- **Per-job timeouts.**  Deadlines are measured from the moment a job's
  future starts on a worker (the submission window never exceeds the
  worker count, so a submitted job is a running job).  A worker stuck
  past its deadline cannot be interrupted portably; the pool is
  abandoned (workers are left to die with their orphaned task) and a
  fresh pool resumes the sweep.
- **Retries.**  Each job gets ``retries + 1`` attempts; errors,
  timeouts and confirmed crashes all consume attempts.
- **Checkpointing.**  With a journal, already-completed fingerprints are
  skipped up front and every settled job is appended immediately, so an
  interrupted sweep resumes where it stopped.

With ``jobs <= 1`` everything runs in-process through the exact same
job-invocation path (resolve, call, canonical-JSON round trip), which is
what makes worker-vs-in-process byte-identity testable.  Timeouts are
only enforced in worker mode — in-process Python cannot safely interrupt
a running job.
"""

from __future__ import annotations

import json
import multiprocessing
import os
# Wall-clock here times benchmark attempts and enforces job deadlines —
# driver machinery, never simulation input.
import time  # noqa: DET01
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional

from repro.bench.job import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    JobResult,
    JobSpec,
    canonical_json,
)
from repro.bench.journal import as_journal

__all__ = ["execute_spec", "run_jobs"]


def execute_spec(spec_dict: dict) -> tuple:
    """Worker entry point: run one job, return ``(value, wall_time_s)``.

    Module-level on purpose — ``spawn`` workers import this module and
    receive only the spec's dict form, never live objects.  The target is
    resolved *before* the clock starts so import cost never pollutes the
    measured wall time.
    """
    spec = JobSpec.from_dict(spec_dict)
    fn = spec.resolve()
    kwargs = spec.call_kwargs()
    start = time.perf_counter()
    value = fn(**kwargs)
    wall_s = time.perf_counter() - start
    return json.loads(canonical_json(value)), wall_s


class _JobState:
    """Mutable bookkeeping for one spec during a sweep."""

    __slots__ = ("spec", "failed_attempts", "started_at", "last_error",
                 "last_wall_s")

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.failed_attempts = 0
        self.started_at: Optional[float] = None
        self.last_error: Optional[str] = None
        self.last_wall_s = 0.0

    @property
    def budget(self) -> int:
        return max(0, self.spec.retries) + 1

    def exhausted(self) -> bool:
        return self.failed_attempts >= self.budget

    def deadline(self) -> Optional[float]:
        if self.started_at is None or self.spec.timeout_s is None:
            return None
        return self.started_at + self.spec.timeout_s

    def expired(self, now: float) -> bool:
        deadline = self.deadline()
        return deadline is not None and now >= deadline


def run_jobs(
    specs: Iterable[JobSpec],
    jobs: int = 1,
    journal=None,
    progress: Optional[Callable] = None,
) -> List[JobResult]:
    """Run every spec; return results in spec order.

    ``journal`` is a path (or :class:`~repro.bench.journal.Journal`):
    completed fingerprints found there are returned as cached results
    without re-running, and newly settled jobs are appended to it.
    ``progress`` is called with each :class:`JobResult` as it settles
    (completion order, not spec order).
    """
    specs = list(specs)
    by_fingerprint: dict = {}
    for spec in specs:
        other = by_fingerprint.get(spec.fingerprint)
        if other is not None and other is not spec:
            raise ValueError(
                f"duplicate job fingerprint: {other.name!r} and "
                f"{spec.name!r} describe identical work")
        by_fingerprint[spec.fingerprint] = spec

    journal = as_journal(journal)
    cached = journal.completed() if journal is not None else {}

    results: dict = {}
    pending: List[_JobState] = []
    for spec in specs:
        hit = cached.get(spec.fingerprint)
        if hit is not None:
            result = hit.as_cached()
            results[spec.fingerprint] = result
            if progress is not None:
                progress(result)
        else:
            pending.append(_JobState(spec))

    def settle(result: JobResult) -> None:
        results[result.fingerprint] = result
        if journal is not None:
            journal.append(result)
        if progress is not None:
            progress(result)

    if pending:
        if jobs <= 1 or len(pending) == 1:
            _run_serial(pending, settle)
        else:
            _run_parallel(pending, jobs, settle)

    return [results[spec.fingerprint] for spec in specs]


# ---------------------------------------------------------------------------
# In-process execution (jobs <= 1)
# ---------------------------------------------------------------------------
def _run_serial(states: List[_JobState], settle: Callable) -> None:
    for state in states:
        while True:
            try:
                value, wall_s = execute_spec(state.spec.to_dict())
            except Exception as exc:
                _record_failure(state, _format_error(exc))
                if state.exhausted():
                    settle(_failed_result(state, STATUS_ERROR))
                    break
            else:
                settle(_ok_result(state, value, wall_s))
                break


# ---------------------------------------------------------------------------
# Worker-pool execution
# ---------------------------------------------------------------------------
def _new_pool(workers: int) -> ProcessPoolExecutor:
    # Pin hash randomization before workers exist: spawn children copy
    # os.environ, so this is the explicit PYTHONHASHSEED propagation the
    # determinism contract requires.
    os.environ.setdefault("PYTHONHASHSEED", "0")
    context = multiprocessing.get_context("spawn")
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


def _run_parallel(states: List[_JobState], jobs: int,
                  settle: Callable) -> None:
    ready = deque(states)
    pool = _new_pool(jobs)
    window: dict = {}  # future -> _JobState (at most ``jobs`` entries)
    try:
        while ready or window:
            # Fill the window.  Capping in-flight futures at the worker
            # count means every submitted job is actually running, which
            # is what makes the per-job deadline measurable.
            while ready and len(window) < jobs:
                state = ready.popleft()
                state.started_at = time.monotonic()
                window[pool.submit(
                    execute_spec, state.spec.to_dict())] = state

            done, _ = wait(list(window), timeout=_poll_timeout(window),
                           return_when=FIRST_COMPLETED)
            if not done:
                pool = _reap_expired(pool, jobs, window, ready, settle)
                continue

            suspects: List[_JobState] = []
            for future in done:
                state = window.pop(future)
                try:
                    value, wall_s = future.result()
                except BrokenProcessPool:
                    suspects.append(state)
                except Exception as exc:
                    _record_failure(state, _format_error(exc))
                    if state.exhausted():
                        settle(_failed_result(state, STATUS_ERROR))
                    else:
                        ready.append(state)
                else:
                    settle(_ok_result(state, value, wall_s))

            if suspects:
                # Some worker died mid-job and took the pool down; every
                # in-flight future is doomed with it.  Re-run all
                # suspects one at a time so only the genuine crasher
                # pays for the crash.
                suspects.extend(window.pop(f) for f in list(window))
                pool.shutdown(wait=False, cancel_futures=True)
                for state in suspects:
                    state.started_at = None
                    _run_isolated(state, settle)
                pool = _new_pool(jobs)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _poll_timeout(window: dict) -> Optional[float]:
    """Seconds until the nearest in-flight deadline (None = no deadline)."""
    deadlines = [s.deadline() for s in window.values()]
    deadlines = [d for d in deadlines if d is not None]
    if not deadlines:
        return None
    return max(0.0, min(deadlines) - time.monotonic())


def _reap_expired(pool: ProcessPoolExecutor, jobs: int, window: dict,
                  ready: deque, settle: Callable) -> ProcessPoolExecutor:
    """Handle a deadline hit: fail/retry expired jobs, rebuild the pool.

    A stuck worker cannot be interrupted portably, so the whole pool is
    abandoned (`shutdown(wait=False)` leaves the orphaned task to finish
    or die with the process) and the innocent in-flight jobs go back to
    the front of the queue at no attempt cost.
    """
    now = time.monotonic()
    expired = [(f, s) for f, s in window.items() if s.expired(now)]
    if not expired:
        return pool  # spurious wakeup; keep waiting
    innocents = [s for _f, s in window.items()
                 if not s.expired(now)]
    for _future, state in expired:
        _record_failure(
            state,
            f"timed out after {state.spec.timeout_s:.3f}s "
            f"(attempt {state.failed_attempts + 1}/{state.budget})")
        if state.exhausted():
            settle(_failed_result(state, STATUS_TIMEOUT))
        else:
            state.started_at = None
            ready.append(state)
    for state in reversed(innocents):
        state.started_at = None
        ready.appendleft(state)
    window.clear()
    pool.shutdown(wait=False, cancel_futures=True)
    return _new_pool(jobs)


def _run_isolated(state: _JobState, settle: Callable) -> None:
    """Re-run a crash suspect alone in a fresh single-worker pool.

    Completing normally (ok / ordinary exception / timeout) follows the
    usual accounting; breaking this private pool convicts the job as the
    crasher and consumes one attempt per conviction.
    """
    while True:
        pool = _new_pool(1)
        future = pool.submit(execute_spec, state.spec.to_dict())
        try:
            value, wall_s = future.result(timeout=state.spec.timeout_s)
        except FutureTimeoutError:
            pool.shutdown(wait=False, cancel_futures=True)
            _record_failure(
                state,
                f"timed out after {state.spec.timeout_s:.3f}s "
                f"(attempt {state.failed_attempts + 1}/{state.budget})")
            if state.exhausted():
                settle(_failed_result(state, STATUS_TIMEOUT))
                return
            continue
        except BrokenProcessPool:
            pool.shutdown(wait=False)
            _record_failure(
                state,
                "worker process died while running this job "
                f"(attempt {state.failed_attempts + 1}/{state.budget})")
            if state.exhausted():
                settle(_failed_result(state, STATUS_ERROR))
                return
            continue
        except Exception as exc:
            pool.shutdown(wait=False)
            _record_failure(state, _format_error(exc))
            if state.exhausted():
                settle(_failed_result(state, STATUS_ERROR))
                return
            continue
        else:
            pool.shutdown(wait=False)
            settle(_ok_result(state, value, wall_s))
            return


# ---------------------------------------------------------------------------
# Result assembly
# ---------------------------------------------------------------------------
def _format_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _record_failure(state: _JobState, message: str) -> None:
    state.failed_attempts += 1
    state.last_error = message


def _ok_result(state: _JobState, value, wall_s: float) -> JobResult:
    return JobResult(
        name=state.spec.name,
        fingerprint=state.spec.fingerprint,
        status=STATUS_OK,
        value=value,
        wall_time_s=wall_s,
        attempts=state.failed_attempts + 1,
    )


def _failed_result(state: _JobState, status: str) -> JobResult:
    return JobResult(
        name=state.spec.name,
        fingerprint=state.spec.fingerprint,
        status=status,
        error=state.last_error,
        wall_time_s=state.last_wall_s,
        attempts=state.failed_attempts,
    )
