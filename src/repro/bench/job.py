"""The bench job model: frozen, picklable, canonically fingerprinted.

A :class:`JobSpec` names one experiment or benchmark point as pure data:
a **module-level callable reference** (``"pkg.module:callable"``), a
**JSON-canonical argument dict**, and an optional **seed**.  Because the
spec carries strings and JSON values only — never the callable itself —
it crosses the ``spawn`` process boundary of the executor verbatim, and
its :attr:`~JobSpec.fingerprint` (SHA-256 over the canonical JSON
encoding of ``(target, args, seed)``) is stable across interpreters,
``PYTHONHASHSEED`` values and dict construction orders.  The fingerprint
keys the checkpoint journal: a resumed sweep skips a job iff the exact
same work already completed.

Execution policy (``timeout_s``, ``retries``) deliberately stays out of
the fingerprint — rerunning with a longer timeout is still the same job.

Static analysis rule BEN01 (:mod:`repro.analysis.rules.bench`) enforces
the other half of the contract at the source level: targets written as
literals must resolve to module-level callables and args expressions
must stay JSON-serializable.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import re
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

__all__ = [
    "BenchJobError",
    "JobResult",
    "JobSpec",
    "canonical_json",
    "resolve_target",
]

#: ``module:callable`` with optional dotted attribute path on either side.
_TARGET_RE = re.compile(
    r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*"
    r":[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)*$")

#: JobResult completion states.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


class BenchJobError(ValueError):
    """A job spec is malformed or its target cannot be resolved."""


def canonical_json(value: Any) -> str:
    """The one true JSON encoding: sorted keys, no whitespace, no NaN.

    Every fingerprint, journal record and byte-equality comparison in the
    bench layer goes through this function, so two values are "the same"
    exactly when their canonical encodings match.
    """
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"),
                          allow_nan=False, ensure_ascii=True)
    except (TypeError, ValueError) as exc:
        raise BenchJobError(f"value is not JSON-canonical: {exc}") from exc


def _canonical_round_trip(value: Any, what: str) -> Any:
    """Encode/decode ``value``; reject anything JSON would reshape.

    Tuples (which JSON silently turns into lists) and non-string dict
    keys (silently stringified) would make the fingerprint diverge from
    what the callable actually receives, so they are rejected instead of
    normalized.
    """
    decoded = json.loads(canonical_json(value))
    if decoded != value or canonical_json(decoded) != canonical_json(value):
        raise BenchJobError(
            f"{what} is not JSON-canonical (tuples or non-string dict "
            f"keys?): {value!r}")
    return decoded


def resolve_target(target: str) -> Callable:
    """Import ``"pkg.module:qual.name"`` and return the callable.

    Rejects anything that is not reachable as a module-level attribute
    path — closures (``<locals>`` in the qualname) and non-callables —
    because only module-level callables can be re-imported by name inside
    a spawned worker process.
    """
    if not isinstance(target, str) or not _TARGET_RE.match(target):
        raise BenchJobError(
            f"target {target!r} must look like 'pkg.module:callable'")
    module_name, _, qualname = target.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise BenchJobError(f"cannot import module {module_name!r}: {exc}"
                            ) from exc
    obj: Any = module
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError as exc:
            raise BenchJobError(
                f"{module_name!r} has no attribute path {qualname!r}"
            ) from exc
    if not callable(obj):
        raise BenchJobError(f"target {target!r} resolves to a non-callable "
                            f"{type(obj).__name__}")
    if "<locals>" in getattr(obj, "__qualname__", ""):
        raise BenchJobError(
            f"target {target!r} is a closure, not a module-level callable")
    return obj


@dataclass(frozen=True)
class JobSpec:
    """One experiment / grid point as pure, picklable data."""

    name: str
    target: str
    args: dict = field(default_factory=dict)
    #: Passed to the target as ``seed=`` when not None; fingerprinted.
    seed: Optional[int] = None
    #: Execution policy — not part of the job's identity.
    timeout_s: Optional[float] = None
    retries: int = 0

    def __post_init__(self):
        if not self.name:
            raise BenchJobError("job name must be non-empty")
        if not isinstance(self.target, str) or not _TARGET_RE.match(self.target):
            raise BenchJobError(
                f"target {self.target!r} must look like 'pkg.module:callable'")
        if not isinstance(self.args, dict):
            raise BenchJobError(f"args must be a dict, got "
                                f"{type(self.args).__name__}")
        if "seed" in self.args:
            raise BenchJobError(
                "pass the seed through JobSpec.seed, not args['seed'], so "
                "it is fingerprinted exactly once")
        if self.seed is not None and not isinstance(self.seed, int):
            raise BenchJobError(f"seed must be an int, got {self.seed!r}")
        # Normalize to a fresh canonical copy (also a defensive copy: the
        # caller keeps no alias into this frozen spec).
        object.__setattr__(
            self, "args", _canonical_round_trip(self.args, "args"))

    # -- identity ---------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """SHA-256 hex digest of the job's canonical identity."""
        payload = canonical_json(
            {"target": self.target, "args": self.args, "seed": self.seed})
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- (de)serialization ------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "args": self.args,
            "seed": self.seed,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "JobSpec":
        allowed = {"name", "target", "args", "seed", "timeout_s", "retries"}
        unknown = sorted(set(record) - allowed)
        if unknown:
            raise BenchJobError(f"JobSpec: unknown fields {unknown}")
        return cls(**record)

    # -- execution --------------------------------------------------------
    def resolve(self) -> Callable:
        """Import and return this job's callable (validates the target)."""
        return resolve_target(self.target)

    def call_kwargs(self) -> dict:
        kwargs = dict(self.args)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs

    def run(self) -> Any:
        """Resolve and invoke the target; return its canonicalized value.

        The return value is round-tripped through :func:`canonical_json`
        so in-process and worker executions hand back byte-identical
        JSON values (and non-JSON returns fail loudly at the source).
        """
        fn = self.resolve()
        value = fn(**self.call_kwargs())
        try:
            return json.loads(canonical_json(value))
        except BenchJobError as exc:
            raise BenchJobError(
                f"job {self.name!r}: target returned a non-JSON value: "
                f"{exc}") from exc


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job, as recorded in journals and reports."""

    name: str
    fingerprint: str
    status: str = STATUS_OK
    #: JSON value returned by the target (``status == "ok"`` only).
    value: Any = None
    error: Optional[str] = None
    #: Wall-clock seconds of the successful (or last failed) attempt.
    wall_time_s: float = 0.0
    #: Attempts actually executed (1 = succeeded first try).
    attempts: int = 1
    #: True when the result was replayed from a checkpoint journal.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def as_cached(self) -> "JobResult":
        return replace(self, cached=True)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "value": self.value,
            "error": self.error,
            "wall_time_s": self.wall_time_s,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "JobResult":
        allowed = {"name", "fingerprint", "status", "value", "error",
                   "wall_time_s", "attempts"}
        unknown = sorted(set(record) - allowed)
        if unknown:
            raise BenchJobError(f"JobResult: unknown fields {unknown}")
        return cls(**record)
