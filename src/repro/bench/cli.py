"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``.

Usage::

    repro-bench run [--suite tier1] [--jobs N] [--out BENCH_tier1.json]
                    [--journal sweep.jsonl] [--compare BENCH_baseline.json]
                    [--wall-threshold 0.25] [--strict-wall] [--seed N]
    repro-bench compare CURRENT BASELINE [--wall-threshold] [--strict-wall]
    repro-bench history BENCH_*.json ...
    repro-bench schemes

Exit codes: 0 clean; 1 gate failure (failed jobs, simulated-counter
drift, missing benchmarks — or wall regressions under ``--strict-wall``;
without it wall regressions only warn, which is the right setting for
shared CI runners).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.executor import run_jobs
from repro.cli_common import EXIT_USAGE, common_parent
from repro.bench.report import (
    build_report,
    compare_reports,
    load_report,
    render_comparison,
    render_history,
    write_report,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=("Run benchmark suites on the repro.bench executor "
                     "and gate wall-time / simulated-counter regressions "
                     "against a committed baseline."),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # --seed / --out / --format come from the shared repro.cli_common
    # parent so they are spelled identically across the repro-* tools.
    run_p = sub.add_parser(
        "run", help="run a suite, write a BENCH report, optionally gate",
        parents=[common_parent(
            seed=True, seed_help="suite seed (default: the suite's own)",
            out=True, out_default="BENCH_tier1.json",
            out_help="report path (default: BENCH_tier1.json)")])
    run_p.add_argument("--suite", default="tier1",
                       help="suite name or 'pkg.module:callable' factory "
                            "(default: tier1)")
    run_p.add_argument("--jobs", type=int, default=1,
                       help="parallel worker processes (default: 1)")
    run_p.add_argument("--journal", default=None,
                       help="JSONL checkpoint: completed jobs are skipped "
                            "on rerun")
    run_p.add_argument("--compare", default=None, metavar="BASELINE",
                       help="gate the fresh report against this baseline")
    _gate_flags(run_p)

    cmp_p = sub.add_parser(
        "compare", help="gate an existing report against a baseline",
        parents=[common_parent(formats=("text", "json"))])
    cmp_p.add_argument("current", help="BENCH report to check")
    cmp_p.add_argument("baseline", help="baseline BENCH report")
    _gate_flags(cmp_p)

    hist_p = sub.add_parser(
        "history", help="wall-time trend across BENCH reports")
    hist_p.add_argument("reports", nargs="+", help="BENCH_*.json files")

    sub.add_parser(
        "schemes",
        help="print the registered caching-scheme catalogue")
    return parser


def _gate_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--wall-threshold", type=float, default=0.25,
                        help="relative wall-time slack before flagging "
                             "(default: 0.25 = +25%%)")
    parser.add_argument("--strict-wall", action="store_true",
                        help="fail (not warn) on wall-time regressions — "
                             "for dedicated hardware, not shared runners")


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def _cmd_run(args) -> int:
    from repro.bench.suite import load_suite  # heavy: imports the simulator

    try:
        specs = (load_suite(args.suite) if args.seed is None
                 else load_suite(args.suite, seed=args.seed))
    except ValueError as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return EXIT_USAGE

    def progress(result):
        if result.ok:
            cached = " (journal)" if result.cached else ""
            print(f"  {result.name}: ok in {result.wall_time_s:.3f}s "
                  f"[{result.attempts} attempt(s)]{cached}")
        else:
            print(f"  {result.name}: {result.status.upper()} after "
                  f"{result.attempts} attempt(s): {result.error}")

    print(f"running suite {args.suite!r} "
          f"({len(specs)} job(s), --jobs {args.jobs})")
    results = run_jobs(specs, jobs=args.jobs, journal=args.journal,
                       progress=progress)

    seeds = sorted({s.seed for s in specs if s.seed is not None})
    report = build_report(
        results, seed=seeds[0] if len(seeds) == 1 else None)
    write_report(report, args.out)
    print(f"wrote {args.out}")

    status = 0
    if any(not result.ok for result in results):
        failed = ", ".join(r.name for r in results if not r.ok)
        print(f"repro-bench: job(s) failed: {failed}", file=sys.stderr)
        status = 1

    if args.compare is not None:
        comparison = compare_reports(
            report, load_report(args.compare),
            wall_threshold=args.wall_threshold)
        print(render_comparison(comparison))
        status = max(status, comparison.exit_code(args.strict_wall))
    return status


def _cmd_compare(args) -> int:
    comparison = compare_reports(
        load_report(args.current), load_report(args.baseline),
        wall_threshold=args.wall_threshold)
    if args.format == "json":
        json.dump(comparison.to_dict(), sys.stdout, indent=2,
                  sort_keys=True)
        print()
    else:
        print(render_comparison(comparison))
    return comparison.exit_code(args.strict_wall)


def _cmd_history(args) -> int:
    pairs = [(Path(path).name, load_report(path)) for path in args.reports]
    print(render_history(pairs))
    return 0


def _cmd_schemes() -> int:
    from repro.schemes import available  # heavy: imports the simulator

    catalogue = available()
    width = max(len(name) for name, _ in catalogue)
    for name, description in catalogue:
        print(f"{name.ljust(width)}  {description}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "schemes":
            return _cmd_schemes()
        return _cmd_history(args)
    except (OSError, ValueError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
