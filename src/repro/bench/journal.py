"""Checkpoint/resume journal: one JSONL record per completed job.

The journal is an append-only file the executor writes a line to the
moment a job settles (success or permanent failure).  Records are keyed
by the job's canonical fingerprint, so an interrupted sweep rerun with
the same journal path skips exactly the jobs whose identical work
already succeeded — failed and timed-out jobs are retried on resume.

The format is deliberately dumb: self-describing JSON lines, flushed per
record, tolerant of a truncated tail (a sweep killed mid-write loses at
most the line being written).  Lines from older journal versions or
foreign tools are skipped, not fatal.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.bench.job import JobResult

__all__ = ["JOURNAL_SCHEMA", "Journal"]

JOURNAL_SCHEMA = "repro.bench.journal/1"


class Journal:
    """Append-only JSONL record of settled jobs, keyed by fingerprint."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    # -- reading ----------------------------------------------------------
    def load(self) -> dict:
        """fingerprint -> :class:`JobResult` for every readable record.

        Later records win (a retried job overwrites its earlier failure).
        Malformed or foreign lines — including a truncated final line
        from an interrupted run — are skipped.
        """
        results: dict = {}
        if not self.path.exists():
            return results
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated tail or foreign content
                if (not isinstance(record, dict)
                        or record.get("schema") != JOURNAL_SCHEMA):
                    continue
                payload = {k: v for k, v in record.items() if k != "schema"}
                try:
                    result = JobResult.from_dict(payload)
                except Exception:
                    continue
                results[result.fingerprint] = result
        return results

    def completed(self) -> dict:
        """fingerprint -> JobResult for successfully completed jobs only."""
        return {fp: res for fp, res in self.load().items() if res.ok}

    # -- writing ----------------------------------------------------------
    def append(self, result: JobResult) -> None:
        """Durably append one settled job (flushed before returning)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        record = {"schema": JOURNAL_SCHEMA}
        record.update(result.to_dict())
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            handle.flush()


def as_journal(journal: Union[None, str, Path, Journal]) -> Optional[Journal]:
    """Accept a path or a Journal; None passes through."""
    if journal is None or isinstance(journal, Journal):
        return journal
    return Journal(journal)
