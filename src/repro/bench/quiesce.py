"""GC quiescing for timed benchmark regions.

The simulator's hot loop allocates short-lived objects (generator frames,
events, messages) at a rate that makes CPython's generational collector a
measurable fraction of benchmark wall time — the collector repeatedly
scans long-lived simulation state (caches, directories, rings) that never
becomes garbage mid-run.  Bench targets wrap their simulation in
:func:`quiesce_gc`: collect once up front, switch the collector off for
the timed region, then restore it and collect the run's garbage outside
the timer.  Simulated counters are unaffected — this changes only when
reclamation happens, never what the simulation computes.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager

__all__ = ["quiesce_gc"]


@contextmanager
def quiesce_gc():
    """Disable cyclic GC for the duration of the block; restore after."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.collect()
