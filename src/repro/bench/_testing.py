"""Tiny module-level bench targets for the bench test suite.

These live in the installed package (not under ``tests/``) because
``spawn`` worker processes must be able to re-import every job target by
its ``"module:callable"`` name, and the test tree is not an importable
package.  They are deliberately cheap — tests exercise the executor's
machinery (retries, timeouts, crash isolation, checkpoint/resume,
hash-seed independence), not simulation scale.
"""

from __future__ import annotations

import os
# Wall-clock sleep here exists only to trip the executor's job timeout
# in tests — never simulation input.
import time  # noqa: DET01
from pathlib import Path

from repro.bench.job import JobSpec

__all__ = [
    "boom",
    "echo",
    "flaky",
    "hard_crash",
    "hash_probe",
    "mini_session",
    "record_invocation",
    "sleepy",
    "tiny_suite",
]


def echo(**kwargs) -> dict:
    """Return the received kwargs (round-trip / ordering probe)."""
    return {"echo": kwargs}


def hash_probe(n: int = 32, seed: int = 0) -> dict:
    """Deterministic digest of set-heavy work.

    Builds a string set (whose iteration order varies with
    ``PYTHONHASHSEED``) and reduces it order-insensitively, so the
    *correct* result is hash-seed independent — any leak of hash order
    into the value shows up as cross-seed drift.
    """
    keys = {f"key-{seed}-{i}" for i in range(n)}
    return {
        "n": len(keys),
        "checksum": sum(hash_free(k) for k in keys),
        "first": min(keys),
        "last": max(keys),
    }


def hash_free(text: str) -> int:
    """A hash-seed-independent string digest (FNV-1a, 32-bit)."""
    acc = 0x811C9DC5
    for byte in text.encode("utf-8"):
        acc = ((acc ^ byte) * 0x01000193) & 0xFFFFFFFF
    return acc


def mini_session(ops: int = 6, seed: int = 7) -> dict:
    """A miniature end-to-end simulator run returning real counters."""
    from repro.session import Session
    from repro.storage import DataItem

    with Session(nodes=2, seed=seed, scheme="concord", app="bench") as s:
        s.preload({f"k{i}": DataItem(f"v{i}", 128) for i in range(ops)})
        for i in range(ops):
            s.read(f"node{i % 2}", f"k{i}")
        for i in range(ops):
            s.write(f"node{(i + 1) % 2}", f"k{i}", DataItem(f"w{i}", 128))
        s.advance(1_000.0)
        return {
            "reads": s.system.stats.reads,
            "writes": s.system.stats.writes,
            "sim_now_ms": s.sim.now,
        }


def boom(message: str = "boom") -> dict:
    """Always raises — the ordinary-failure path."""
    raise RuntimeError(message)


def flaky(scratch: str, fail_times: int = 1) -> dict:
    """Fail the first ``fail_times`` invocations, then succeed.

    Invocation counting goes through a scratch file so it works across
    process boundaries and resumed sweeps.
    """
    path = Path(scratch)
    calls = int(path.read_text()) if path.exists() else 0
    calls += 1
    path.write_text(str(calls))
    if calls <= fail_times:
        raise RuntimeError(f"flaky failure {calls}/{fail_times}")
    return {"calls": calls}


def record_invocation(scratch: str, token: str = "ran") -> dict:
    """Append ``token`` to a scratch file (checkpoint/resume probe)."""
    with open(scratch, "a", encoding="utf-8") as handle:
        handle.write(token + "\n")
    return {"token": token}


def sleepy(seconds: float = 5.0) -> dict:
    """Block on the wall clock — the timeout path."""
    time.sleep(seconds)
    return {"slept_s": seconds}


def hard_crash(code: int = 13) -> dict:
    """Kill the worker process outright — the crash-isolation path."""
    os._exit(code)


def tiny_suite(seed: int = 0) -> list:
    """A fast, fully deterministic suite for CLI and executor tests."""
    return [
        JobSpec(name="probe-a", target="repro.bench._testing:hash_probe",
                args={"n": 16}, seed=seed),
        JobSpec(name="probe-b", target="repro.bench._testing:hash_probe",
                args={"n": 24}, seed=seed + 1),
        JobSpec(name="echo", target="repro.bench._testing:echo",
                args={"alpha": 1, "beta": [1, 2, 3]}),
    ]
