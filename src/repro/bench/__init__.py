"""repro.bench — parallel experiment orchestration and the perf gate.

The pieces, bottom-up:

- :mod:`repro.bench.job` — frozen, picklable :class:`JobSpec` (callable
  reference + JSON-canonical args + seed) with a canonical fingerprint,
  and the :class:`JobResult` it settles into.
- :mod:`repro.bench.executor` — :func:`run_jobs`: spawn-context process
  pool with deterministic result ordering, per-job timeout/retry, and
  crash isolation.
- :mod:`repro.bench.journal` — JSONL checkpoint keyed by fingerprint;
  interrupted sweeps resume by skipping completed jobs.
- :mod:`repro.bench.report` — versioned ``BENCH_*.json`` schema, the
  wall-time-vs-simulated-counter regression gate, and the history view.
- :mod:`repro.bench.suite` — named job suites (``tier1`` is the CI
  gate).  Imported lazily by the CLI so ``repro.bench`` itself stays
  cheap to import inside spawn workers.

CLI: ``repro-bench run|compare|history`` (also
``python -m repro.bench``).
"""

from repro.bench.executor import run_jobs
from repro.bench.job import (
    BenchJobError,
    JobResult,
    JobSpec,
    canonical_json,
    resolve_target,
)
from repro.bench.journal import Journal
from repro.bench.report import (
    BENCH_SCHEMA_VERSION,
    Comparison,
    build_report,
    compare_reports,
    load_report,
    render_comparison,
    write_report,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchJobError",
    "Comparison",
    "Journal",
    "JobResult",
    "JobSpec",
    "build_report",
    "canonical_json",
    "compare_reports",
    "load_report",
    "render_comparison",
    "resolve_target",
    "run_jobs",
    "write_report",
]
