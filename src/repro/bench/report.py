"""Versioned BENCH_*.json reports and the perf-regression gate.

A bench report records, per benchmark job, two very different kinds of
numbers:

- **wall-clock keys** (``wall_time_s`` and the derived
  ``sim_ms_per_wall_s``) — how fast the simulator ran on this machine.
  Hardware-dependent, noisy on shared CI runners, so the gate treats a
  regression beyond a threshold as a *warning* by default
  (``strict_wall=True`` upgrades it to a failure for dedicated boxes).
- **simulated counters** (everything else: ``simulated_ms``,
  ``requests_completed``, ``simulated_rps``, ...) — what the simulation
  computed.  These are seeded and deterministic, so *any* drift against
  the committed baseline is a behavior change masquerading as a perf
  result and always hard-fails the gate.

``BENCH_baseline.json`` at the repo root is the committed reference.
Updating it is a deliberate act: rerun ``repro-bench run --out
BENCH_baseline.json`` on the reference machine and commit the diff,
explaining any simulated-counter movement in the commit message.
"""

from __future__ import annotations

import json
import platform
# Wall-clock here stamps reports for the history view — driver metadata,
# never simulation input.
import time  # noqa: DET01
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.bench.job import JobResult

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "WALL_KEYS",
    "Comparison",
    "build_report",
    "compare_reports",
    "load_report",
    "render_comparison",
    "render_history",
    "write_report",
]

BENCH_SCHEMA_VERSION = 2

#: Benchmark-entry keys derived from the wall clock (everything else is
#: a simulated counter and must be bit-stable against the baseline).
WALL_KEYS = frozenset({"wall_time_s", "sim_ms_per_wall_s"})

#: Finding severities.
SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"


# ---------------------------------------------------------------------------
# Report assembly and I/O
# ---------------------------------------------------------------------------
def build_report(
    results: Iterable[JobResult],
    seed: Optional[int] = None,
) -> dict:
    """Assemble the versioned report dict from settled job results."""
    benchmarks: dict = {}
    failures: dict = {}
    for result in results:
        if not result.ok:
            failures[result.name] = {
                "status": result.status,
                "error": result.error,
                "attempts": result.attempts,
            }
            continue
        entry = (dict(result.value) if isinstance(result.value, dict)
                 else {"value": result.value})
        entry["wall_time_s"] = round(result.wall_time_s, 3)
        simulated_ms = entry.get("simulated_ms")
        if (isinstance(simulated_ms, (int, float))
                and result.wall_time_s > 0):
            entry["sim_ms_per_wall_s"] = round(
                simulated_ms / result.wall_time_s, 1)
        benchmarks[result.name] = entry
    report = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "python": platform.python_version(),
        "generated_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "benchmarks": benchmarks,
    }
    if seed is not None:
        report["seed"] = seed
    if failures:
        report["failures"] = failures
    return report


def write_report(report: dict, path: Union[str, Path]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: Union[str, Path]) -> dict:
    """Load a BENCH_*.json; legacy schema-less files are upgraded to v1."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or "benchmarks" not in report:
        raise ValueError(f"{path}: not a bench report (no 'benchmarks')")
    report.setdefault("schema_version", 1)
    version = report["schema_version"]
    if not isinstance(version, int) or version > BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported bench schema version {version!r} "
            f"(this build reads <= {BENCH_SCHEMA_VERSION})")
    return report


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Finding:
    """One difference the gate noticed."""

    benchmark: str
    kind: str          # counter-drift | wall-regression | ...
    severity: str      # error | warning | info
    detail: str

    def to_dict(self) -> dict:
        return {"benchmark": self.benchmark, "kind": self.kind,
                "severity": self.severity, "detail": self.detail}


@dataclass
class Comparison:
    """Outcome of comparing a current report against a baseline."""

    findings: List[Finding] = field(default_factory=list)
    wall_threshold: float = 0.25

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEV_WARNING]

    def exit_code(self, strict_wall: bool = False) -> int:
        """0 = clean; 1 = gate failed.

        Counter drift, missing benchmarks and failed jobs always fail;
        wall-time regressions fail only under ``strict_wall`` (dedicated
        hardware) and warn otherwise (shared CI runners).
        """
        if self.errors:
            return 1
        if strict_wall and self.warnings:
            return 1
        return 0

    def to_dict(self) -> dict:
        return {
            "wall_threshold": self.wall_threshold,
            "findings": [f.to_dict() for f in self.findings],
        }


def compare_reports(
    current: dict,
    baseline: dict,
    wall_threshold: float = 0.25,
) -> Comparison:
    """Diff two reports under the wall-vs-simulated-counter distinction."""
    comparison = Comparison(wall_threshold=wall_threshold)
    current_benchmarks = current.get("benchmarks", {})
    baseline_benchmarks = baseline.get("benchmarks", {})

    for name, failure in sorted(current.get("failures", {}).items()):
        comparison.findings.append(Finding(
            benchmark=name, kind="job-failed", severity=SEV_ERROR,
            detail=f"{failure.get('status')}: {failure.get('error')}"))

    for name in sorted(baseline_benchmarks):
        if name not in current_benchmarks:
            if name not in current.get("failures", {}):
                comparison.findings.append(Finding(
                    benchmark=name, kind="missing-benchmark",
                    severity=SEV_ERROR,
                    detail="present in baseline, absent from current run"))
            continue
        _compare_benchmark(
            comparison, name,
            current_benchmarks[name], baseline_benchmarks[name],
            wall_threshold)

    for name in sorted(current_benchmarks):
        if name not in baseline_benchmarks:
            comparison.findings.append(Finding(
                benchmark=name, kind="new-benchmark", severity=SEV_INFO,
                detail="not in baseline yet; rerun the baseline to adopt"))
    return comparison


def _compare_benchmark(comparison: Comparison, name: str, current: dict,
                       baseline: dict, wall_threshold: float) -> None:
    # Simulated counters: exact equality or it's a behavior change.
    counter_keys = (set(current) | set(baseline)) - WALL_KEYS
    for key in sorted(counter_keys):
        if key not in current:
            comparison.findings.append(Finding(
                benchmark=name, kind="counter-drift", severity=SEV_ERROR,
                detail=f"{key}: {baseline[key]!r} -> (missing)"))
        elif key not in baseline:
            comparison.findings.append(Finding(
                benchmark=name, kind="counter-drift", severity=SEV_ERROR,
                detail=f"{key}: (missing) -> {current[key]!r}"))
        elif current[key] != baseline[key]:
            comparison.findings.append(Finding(
                benchmark=name, kind="counter-drift", severity=SEV_ERROR,
                detail=(f"{key}: {baseline[key]!r} -> {current[key]!r} "
                        "(simulated counters must not move — this is a "
                        "behavior change, not a speedup)")))

    # Wall time: threshold gate, warn-only by default.
    base_wall = baseline.get("wall_time_s")
    cur_wall = current.get("wall_time_s")
    if not isinstance(base_wall, (int, float)) or base_wall <= 0:
        return
    if not isinstance(cur_wall, (int, float)):
        return
    ratio = cur_wall / base_wall
    delta_pct = (ratio - 1.0) * 100.0
    if ratio > 1.0 + wall_threshold:
        comparison.findings.append(Finding(
            benchmark=name, kind="wall-regression", severity=SEV_WARNING,
            detail=(f"wall_time_s {base_wall} -> {cur_wall} "
                    f"(+{delta_pct:.1f}%, threshold "
                    f"+{wall_threshold * 100:.0f}%)")))
    elif ratio < 1.0 - wall_threshold:
        comparison.findings.append(Finding(
            benchmark=name, kind="wall-improvement", severity=SEV_INFO,
            detail=f"wall_time_s {base_wall} -> {cur_wall} "
                   f"({delta_pct:.1f}%)"))


def render_comparison(comparison: Comparison) -> str:
    """Human-readable gate verdict."""
    lines = []
    if not comparison.findings:
        lines.append("bench gate: clean (no drift, no wall regression "
                     f"beyond +{comparison.wall_threshold * 100:.0f}%)")
    for finding in comparison.findings:
        lines.append(f"[{finding.severity.upper():7s}] "
                     f"{finding.benchmark}: {finding.kind}: "
                     f"{finding.detail}")
    errors, warnings = comparison.errors, comparison.warnings
    lines.append(f"bench gate: {len(errors)} error(s), "
                 f"{len(warnings)} warning(s)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# History
# ---------------------------------------------------------------------------
def render_history(reports: List[tuple]) -> str:
    """Per-benchmark wall-time trend across ``(label, report)`` pairs.

    Reports are ordered by their ``generated_at`` stamp (missing stamps
    sort first, by label).
    """
    ordered = sorted(
        reports, key=lambda pair: (pair[1].get("generated_at", ""), pair[0]))
    names: List[str] = []
    for _label, report in ordered:
        for name in sorted(report.get("benchmarks", {})):
            if name not in names:
                names.append(name)
    lines = []
    for name in names:
        lines.append(f"{name}:")
        previous = None
        for label, report in ordered:
            entry = report.get("benchmarks", {}).get(name)
            if entry is None:
                continue
            wall = entry.get("wall_time_s")
            stamp = report.get("generated_at", "-")
            delta = ""
            if (isinstance(wall, (int, float))
                    and isinstance(previous, (int, float))
                    and previous > 0):
                delta = f"  ({(wall / previous - 1.0) * 100.0:+.1f}%)"
            rate = entry.get("sim_ms_per_wall_s")
            rate_text = (f"  {rate:>10} sim_ms/wall_s"
                         if rate is not None else "")
            lines.append(f"  {stamp:20s} {label:28s} "
                         f"{wall!s:>10} s{rate_text}{delta}")
            previous = wall if isinstance(wall, (int, float)) else previous
    if not lines:
        lines.append("no benchmarks found")
    return "\n".join(lines)
