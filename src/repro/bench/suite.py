"""Benchmark suites: named collections of :class:`JobSpec`.

The ``tier1`` suite is the CI perf gate — the two fixed-seed simulator
points that ``scripts/perf_smoke.py`` has always timed, now expressed as
bench jobs so their wall times and simulated counters flow through the
journal and the regression gate:

* ``fig08_point`` — one throughput grid point (8 nodes, mixed apps,
  near the SLO knee): the protocol + FaaS fast path.
* ``fig13_churn_point`` — one churn run (16 nodes, 24 removals/min):
  membership changes, directory transfers, barrier churn.
* ``fig08_point_obs`` / ``fig13_churn_point_obs`` — the same two points
  with the protocol-event flight recorder attached.  Their simulated
  counters must stay byte-identical to the plain points (the recorder is
  purely passive; the gate pins this), they additionally report
  ``events_recorded``, and the obs/plain wall-time pairing feeds the
  recorder-overhead column of ``scripts/bench_summary.py``.

Job targets return **simulated counters only** — the executor owns the
wall clock, and :func:`repro.bench.report.build_report` derives
``sim_ms_per_wall_s`` from the two.

Heavyweight imports stay at module level on purpose: job resolution
(imports included) happens before the executor starts a job's timer, so
the measured wall time covers simulation work only.
"""

from __future__ import annotations

from typing import List

from repro.bench.job import JobSpec, resolve_target
from repro.bench.quiesce import quiesce_gc
from repro.experiments.fig13_churn import _throughput_at
from repro.experiments.runner import MixedRunConfig, run_mixed_workload
from repro.obs import FlightRecorder

__all__ = ["DEFAULT_SEED", "SUITES", "fig08_point", "fig08_point_obs",
           "fig13_churn_point", "fig13_churn_point_obs", "load_suite",
           "scale_point", "scale_suite", "scheme_point", "tier1_suite",
           "topology_point"]

DEFAULT_SEED = 1009


def fig08_point(seed: int = DEFAULT_SEED) -> dict:
    """One fig08 throughput grid point; returns simulated counters."""
    config = MixedRunConfig(
        scheme="concord", num_nodes=8, cores_per_node=4,
        utilization=None, total_rps=115,
        duration_ms=5000.0, warmup_ms=1500.0, seed=seed,
    )
    with quiesce_gc():
        outcome = run_mixed_workload(config)
    completed = sum(s.completed for s in outcome.per_app.values())
    return {
        "simulated_ms": config.duration_ms,
        "requests_completed": completed,
        "simulated_rps": round(completed / (config.duration_ms / 1000.0), 2),
    }


def fig08_point_obs(seed: int = DEFAULT_SEED) -> dict:
    """``fig08_point`` with the flight recorder on.

    Simulated counters must match ``fig08_point`` byte-for-byte — the
    recorder never schedules, so attaching it cannot move the
    simulation.  ``events_recorded`` counts every emission (kept ring +
    evicted) and is itself deterministic, so it gates exactly too.
    """
    config = MixedRunConfig(
        scheme="concord", num_nodes=8, cores_per_node=4,
        utilization=None, total_rps=115,
        duration_ms=5000.0, warmup_ms=1500.0, seed=seed,
        obs=True,
    )
    with quiesce_gc():
        outcome = run_mixed_workload(config)
    completed = sum(s.completed for s in outcome.per_app.values())
    recorder = outcome.obs
    return {
        "simulated_ms": config.duration_ms,
        "requests_completed": completed,
        "simulated_rps": round(completed / (config.duration_ms / 1000.0), 2),
        "events_recorded": len(recorder) + recorder.dropped,
    }


def fig13_churn_point(seed: int = DEFAULT_SEED) -> dict:
    """One fig13 churn run; returns simulated counters."""
    duration_ms = 8000.0
    with quiesce_gc():
        throughput, _registry = _throughput_at(24, duration_ms=duration_ms,
                                               seed=seed)
    return {
        "simulated_ms": duration_ms,
        "simulated_rps": round(throughput, 2),
    }


def fig13_churn_point_obs(seed: int = DEFAULT_SEED) -> dict:
    """``fig13_churn_point`` with the flight recorder on (see above)."""
    duration_ms = 8000.0
    recorder = FlightRecorder()
    with quiesce_gc():
        throughput, _registry = _throughput_at(24, duration_ms=duration_ms,
                                               seed=seed, obs=recorder)
    return {
        "simulated_ms": duration_ms,
        "simulated_rps": round(throughput, 2),
        "events_recorded": len(recorder) + recorder.dropped,
    }


def scale_point(seed: int = DEFAULT_SEED, num_nodes: int = 100,
                requests_per_node: int = 10_000,
                working_set: int = 1000) -> dict:
    """The large-scale grid point: 100 nodes, one million cache requests.

    Per-node driver processes issue sequential Concord reads over a
    shared working set (offsets staggered so every node sweeps the whole
    set); after the first sweep the steady state is the local-hit fast
    path, which is exactly what the kernel overhaul accelerated.  At the
    pre-overhaul dispatch rate this point would not finish inside any
    reasonable bench timeout; post-overhaul it completes in well under a
    minute.  Reduced-scale variants (the keyword arguments) back the
    cross-``PYTHONHASHSEED`` byte-identity test.
    """
    from repro.cluster import Cluster
    from repro.config import SimConfig
    from repro.coord import CoordinationService
    from repro.schemes import build_scheme
    from repro.sim import Simulator
    from repro.storage import DataItem

    sim = Simulator(seed=seed)
    cluster = Cluster(sim, SimConfig(num_nodes=num_nodes, cores_per_node=2))
    coord = CoordinationService(cluster.network, cluster.config)
    system = build_scheme("concord", cluster, coord, "scale")
    keys = [f"scale-{index}" for index in range(working_set)]
    cluster.storage.preload(
        {key: DataItem("v", size_bytes=1024) for key in keys})

    completed = [0]

    def driver(node_id, count, offset):
        for index in range(count):
            yield from system.read(node_id, keys[(offset + index) % working_set])
            completed[0] += 1

    drivers = [
        sim.spawn(driver(node_id, requests_per_node, position * 7),
                  name="scale-driver")
        for position, node_id in enumerate(cluster.node_ids)
    ]
    remaining = [len(drivers)]
    finished_ms = [0.0]

    def on_driver_done(_event):
        remaining[0] -= 1
        if remaining[0] == 0:
            finished_ms[0] = sim.now

    for process in drivers:
        process.callbacks.append(on_driver_done)
    # Chunked run(until=...) keeps the dispatch on the simulator's inlined
    # hot loop; cluster services never drain the schedule on their own.
    with quiesce_gc():
        while remaining[0]:
            sim.run(until=sim.now + 5000.0)
    return {
        "num_nodes": num_nodes,
        "requests_completed": completed[0],
        "simulated_ms": round(finished_ms[0], 3),
        "simulated_rps": round(
            completed[0] / (finished_ms[0] / 1000.0), 2),
    }


def topology_point(topology: str, seed: int = DEFAULT_SEED) -> dict:
    """One fault-free run of a named topology matrix cell.

    Exercises the routing layer the topology adds — shard resolution,
    replica mirroring, cross-region latency — without any injected
    faults, so the counters isolate steady-state topology overhead.
    Every returned key is a simulated counter and gates bit-exactly.
    """
    from repro.faults.plan import FaultPlan
    from repro.shard.topologies import DURATION_MS, run_topology_scenario

    with quiesce_gc():
        outcome = run_topology_scenario(
            topology, seed=seed, plan=FaultPlan(events=()))
    return {
        "simulated_ms": DURATION_MS,
        "requests_completed": outcome.completed,
        "simulated_rps": round(outcome.completed / (DURATION_MS / 1000.0), 2),
        "shards": len(outcome.shard_table),
        "shards_rehomed": outcome.shards_rehomed,
        "shard_failovers": outcome.shard_failovers,
        "violations": len(outcome.violations),
    }


def scheme_point(scheme: str, seed: int = DEFAULT_SEED) -> dict:
    """One fault-free canonical-scenario run of a zoo scheme.

    Exercises a scheme's full data path (per-node caches, flush daemons,
    replication fan-out, pull syncs) under the standard single-app
    Poisson load, plus the scheme's own invariant checker at the end.
    Every returned key is a simulated counter and gates bit-exactly;
    scheme-specific counters (flushes, syncs, migrations) ride along so
    a regression in the scheme's *internal* traffic pattern gates too.
    """
    from repro.faults.plan import FaultPlan
    from repro.faults.scenario import run_fault_scenario

    duration_ms = 4000.0
    with quiesce_gc():
        outcome = run_fault_scenario(
            FaultPlan(events=()), seed=seed, num_nodes=6,
            duration_ms=duration_ms, rps=30.0, scheme=scheme,
            settle_ms=2000.0)
    counters = {
        "simulated_ms": duration_ms,
        "requests_completed": outcome.completed,
        "simulated_rps": round(outcome.completed / (duration_ms / 1000.0), 2),
        "violations": len(outcome.violations),
    }
    system = outcome.system
    for attribute in ("writes_enqueued", "writes_flushed", "writes_lost",
                      "syncs", "sync_failures", "migrations"):
        if hasattr(system, attribute):
            counters[attribute] = getattr(system, attribute)
    return counters


def tier1_suite(seed: int = DEFAULT_SEED) -> List[JobSpec]:
    """The CI perf-gate suite."""
    return [
        JobSpec(name="fig08_point",
                target="repro.bench.suite:fig08_point", seed=seed),
        JobSpec(name="fig13_churn_point",
                target="repro.bench.suite:fig13_churn_point", seed=seed),
        JobSpec(name="fig08_point_obs",
                target="repro.bench.suite:fig08_point_obs", seed=seed),
        JobSpec(name="fig13_churn_point_obs",
                target="repro.bench.suite:fig13_churn_point_obs", seed=seed),
        JobSpec(name="topo_flat",
                target="repro.bench.suite:topology_point",
                args={"topology": "flat"}, seed=seed),
        JobSpec(name="topo_shard4",
                target="repro.bench.suite:topology_point",
                args={"topology": "shard4"}, seed=seed),
        JobSpec(name="topo_region2",
                target="repro.bench.suite:topology_point",
                args={"topology": "region2"}, seed=seed),
        JobSpec(name="scheme_wb",
                target="repro.bench.suite:scheme_point",
                args={"scheme": "write-behind"}, seed=seed),
        JobSpec(name="scheme_causal",
                target="repro.bench.suite:scheme_point",
                args={"scheme": "causal"}, seed=seed),
    ]


def scale_suite(seed: int = DEFAULT_SEED) -> List[JobSpec]:
    """The ≥100-node / ≥1M-request scale point (post-overhaul only)."""
    return [
        JobSpec(name="scale_point",
                target="repro.bench.suite:scale_point", seed=seed,
                timeout_s=300.0),
    ]


#: Named suites the CLI accepts directly.
SUITES = {"tier1": tier1_suite, "scale": scale_suite}


def load_suite(name: str, seed: int = DEFAULT_SEED) -> List[JobSpec]:
    """A named suite, or any ``"pkg.module:callable"`` returning specs."""
    if name in SUITES:
        specs = SUITES[name](seed=seed)
    elif ":" in name:
        specs = resolve_target(name)(seed=seed)
    else:
        known = ", ".join(sorted(SUITES))
        raise ValueError(
            f"unknown suite {name!r}: pick one of [{known}] or pass a "
            "'pkg.module:callable' suite factory")
    specs = list(specs)
    if not specs or not all(isinstance(s, JobSpec) for s in specs):
        raise ValueError(f"suite {name!r} must yield a non-empty list of "
                         "JobSpec")
    return specs
