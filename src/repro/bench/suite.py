"""Benchmark suites: named collections of :class:`JobSpec`.

The ``tier1`` suite is the CI perf gate — the two fixed-seed simulator
points that ``scripts/perf_smoke.py`` has always timed, now expressed as
bench jobs so their wall times and simulated counters flow through the
journal and the regression gate:

* ``fig08_point`` — one throughput grid point (8 nodes, mixed apps,
  near the SLO knee): the protocol + FaaS fast path.
* ``fig13_churn_point`` — one churn run (16 nodes, 24 removals/min):
  membership changes, directory transfers, barrier churn.

Job targets return **simulated counters only** — the executor owns the
wall clock, and :func:`repro.bench.report.build_report` derives
``sim_ms_per_wall_s`` from the two.

Heavyweight imports stay at module level on purpose: job resolution
(imports included) happens before the executor starts a job's timer, so
the measured wall time covers simulation work only.
"""

from __future__ import annotations

from typing import List

from repro.bench.job import JobSpec, resolve_target
from repro.experiments.fig13_churn import _throughput_at
from repro.experiments.runner import MixedRunConfig, run_mixed_workload

__all__ = ["DEFAULT_SEED", "SUITES", "fig08_point", "fig13_churn_point",
           "load_suite", "tier1_suite"]

DEFAULT_SEED = 1009


def fig08_point(seed: int = DEFAULT_SEED) -> dict:
    """One fig08 throughput grid point; returns simulated counters."""
    config = MixedRunConfig(
        scheme="concord", num_nodes=8, cores_per_node=4,
        utilization=None, total_rps=115,
        duration_ms=5000.0, warmup_ms=1500.0, seed=seed,
    )
    outcome = run_mixed_workload(config)
    completed = sum(s.completed for s in outcome.per_app.values())
    return {
        "simulated_ms": config.duration_ms,
        "requests_completed": completed,
        "simulated_rps": round(completed / (config.duration_ms / 1000.0), 2),
    }


def fig13_churn_point(seed: int = DEFAULT_SEED) -> dict:
    """One fig13 churn run; returns simulated counters."""
    duration_ms = 8000.0
    throughput, _registry = _throughput_at(24, duration_ms=duration_ms,
                                           seed=seed)
    return {
        "simulated_ms": duration_ms,
        "simulated_rps": round(throughput, 2),
    }


def tier1_suite(seed: int = DEFAULT_SEED) -> List[JobSpec]:
    """The CI perf-gate suite."""
    return [
        JobSpec(name="fig08_point",
                target="repro.bench.suite:fig08_point", seed=seed),
        JobSpec(name="fig13_churn_point",
                target="repro.bench.suite:fig13_churn_point", seed=seed),
    ]


#: Named suites the CLI accepts directly.
SUITES = {"tier1": tier1_suite}


def load_suite(name: str, seed: int = DEFAULT_SEED) -> List[JobSpec]:
    """A named suite, or any ``"pkg.module:callable"`` returning specs."""
    if name in SUITES:
        specs = SUITES[name](seed=seed)
    elif ":" in name:
        specs = resolve_target(name)(seed=seed)
    else:
        known = ", ".join(sorted(SUITES))
        raise ValueError(
            f"unknown suite {name!r}: pick one of [{known}] or pass a "
            "'pkg.module:callable' suite factory")
    specs = list(specs)
    if not specs or not all(isinstance(s, JobSpec) for s in specs):
        raise ValueError(f"suite {name!r} must yield a non-empty list of "
                         "JobSpec")
    return specs
