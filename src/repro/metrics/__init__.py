"""Measurement utilities: histograms, counters, access statistics."""

from repro.metrics.stats import AccessStats, Histogram, OpKind

__all__ = ["AccessStats", "Histogram", "OpKind"]
