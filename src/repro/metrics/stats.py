"""Histograms and cache-access statistics.

Everything the evaluation section reports reduces to histograms of
latencies and counters of access classifications, so these two types are
shared by every caching scheme and every experiment.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class Histogram:
    """Streaming collection of samples with percentile queries.

    Samples are kept (experiments are bounded), so percentiles are exact.
    """

    def __init__(self):
        self._samples: list[float] = []
        self._sorted = True
        #: Diagnostic: number of times a query had to sort (tests assert
        #: repeated percentile queries after a merge sort exactly once).
        self._sorts = 0

    def record(self, value: float) -> None:
        # An append in non-decreasing order keeps the samples sorted, so
        # monotone streams never pay a sort at query time.
        if self._sorted and self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    def extend(self, other: "Histogram") -> None:
        """Merge another histogram's samples into this one."""
        if not other._samples:
            return
        if not self._samples:
            self._samples = list(other._samples)
            self._sorted = other._sorted
            return
        still_sorted = (self._sorted and other._sorted
                        and other._samples[0] >= self._samples[-1])
        self._samples.extend(other._samples)
        self._sorted = still_sorted

    def _ensure_sorted(self) -> list:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
            self._sorts += 1
        return self._samples

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return math.nan
        return sum(self._samples) / len(self._samples)

    @property
    def max(self) -> float:
        if not self._samples:
            return math.nan
        return self._samples[-1] if self._sorted else max(self._samples)

    @property
    def min(self) -> float:
        if not self._samples:
            return math.nan
        return self._samples[0] if self._sorted else min(self._samples)

    def percentile(self, p: float) -> float:
        """Exact percentile via nearest-rank (p in [0, 100])."""
        if not self._samples:
            return math.nan
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        samples = self._ensure_sorted()
        rank = max(1, math.ceil(p / 100.0 * len(samples)))
        return samples[rank - 1]

    @property
    def variance(self) -> float:
        """Population variance of the samples (NaN when empty)."""
        if not self._samples:
            return math.nan
        mean = self.mean
        return sum((s - mean) ** 2 for s in self._samples) / len(self._samples)

    @property
    def stddev(self) -> float:
        """Population standard deviation of the samples (NaN when empty)."""
        if not self._samples:
            return math.nan
        return math.sqrt(self.variance)

    def trimmed_mean(self, drop_top_fraction: float = 0.1) -> float:
        """Mean excluding the *largest* ``drop_top_fraction`` of samples.

        This is a top-trim by value, not a warmup trim by arrival order:
        cold-start transients are usually also the largest latencies, so
        dropping the top tail removes them wherever they occur in the
        stream — but a slow sample recorded mid-run is dropped just the
        same.  Use :meth:`AccessStats.reset` at end-of-warmup when you
        need a true phase cut."""
        if not self._samples:
            return math.nan
        kept = self._ensure_sorted()
        cut = int(len(kept) * drop_top_fraction)
        kept = kept[:len(kept) - cut] if cut else kept
        return sum(kept) / len(kept)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)


class OpKind(enum.Enum):
    """Classification of a cache-mediated storage operation."""

    LOCAL_READ_HIT = "local_read_hit"
    REMOTE_READ_HIT = "remote_read_hit"
    READ_MISS = "read_miss"
    LOCAL_WRITE_HIT = "local_write_hit"
    REMOTE_WRITE_HIT = "remote_write_hit"
    WRITE_MISS = "write_miss"

    @property
    def is_read(self) -> bool:
        return self in (
            OpKind.LOCAL_READ_HIT, OpKind.REMOTE_READ_HIT, OpKind.READ_MISS,
        )


@dataclass
class AccessStats:
    """Per-scheme operation counters and latency histograms."""

    ops: dict = field(default_factory=dict)          # OpKind -> count
    latency: dict = field(default_factory=dict)      # OpKind -> Histogram
    invalidations_per_write: Histogram = field(default_factory=Histogram)
    version_checks: int = 0

    def record(self, kind: OpKind, latency_ms: float) -> None:
        self.ops[kind] = self.ops.get(kind, 0) + 1
        self.latency.setdefault(kind, Histogram()).record(latency_ms)

    def count(self, kind: OpKind) -> int:
        return self.ops.get(kind, 0)

    @property
    def reads(self) -> int:
        return sum(n for kind, n in self.ops.items() if kind.is_read)

    @property
    def writes(self) -> int:
        return sum(n for kind, n in self.ops.items() if not kind.is_read)

    def read_mix(self) -> dict[str, float]:
        """Fractions of reads that were local hits / remote hits / misses."""
        total = self.reads
        if total == 0:
            return {"local_hit": 0.0, "remote_hit": 0.0, "remote_miss": 0.0}
        return {
            "local_hit": self.count(OpKind.LOCAL_READ_HIT) / total,
            "remote_hit": self.count(OpKind.REMOTE_READ_HIT) / total,
            "remote_miss": self.count(OpKind.READ_MISS) / total,
        }

    def reset(self) -> None:
        """Drop all recorded data (end-of-warmup)."""
        self.ops.clear()
        self.latency.clear()
        self.invalidations_per_write = Histogram()
        self.version_checks = 0

    def merge(self, other: "AccessStats") -> None:
        """Fold another stats object into this one."""
        for kind, n in other.ops.items():
            self.ops[kind] = self.ops.get(kind, 0) + n
        for kind, histogram in other.latency.items():
            self.latency.setdefault(kind, Histogram()).extend(histogram)
        self.invalidations_per_write.extend(other.invalidations_per_write)
        self.version_checks += other.version_checks
