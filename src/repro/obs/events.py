"""The protocol event taxonomy: interned event-type constants.

Every flight-recorder emission site names its event through one of the
module-level constants below (OBS01 enforces this statically).  Interning
buys two things: emission sites cannot drift into free-form strings that
post-mortem tooling would have to fuzzy-match, and the hot path never
builds a type string — with the Null sink installed an emission site is
one attribute load and a branch.

The taxonomy mirrors the protocol layers (DESIGN.md §13):

``cache.*``
    Cache-line lifecycle on one node: E/S installs, in-place E-state
    updates, downgrades to S, invalidations, capacity evictions.
``cache.flush.*`` / ``cache.ttl.*``
    Production-cache write pipelines (scheme zoo): write-behind dirty
    buffering, flush-to-durable, loss-on-crash, and TTL expiries.
``causal.*``
    The causally consistent scheme: vector-clock-tagged writes, session
    migration between nodes, and sync rounds closing vc gaps.
``dir.*``
    Directory ownership and sharer-set changes at a key's home.
``inv.*``
    Invalidation rounds: per-sharer sends and server-side receipts.
``rpc.*``
    Transport-level failures: timeouts and fail-fast resets.
``barrier.*`` / ``recovery.*`` / ``domain.*`` / ``member.*``
    Fault tolerance: barriers raised/lifted around failed homes,
    survivor recovery steps, two-phase domain changes, ejections.
``sched.*`` / ``req.*``
    FaaS control plane: warm/cold placement decisions, crash reruns.
``fault.*`` / ``verify.*``
    Injected faults and quiescent coherence-checker verdicts; both
    trigger the recorder's automatic full dump.
"""

from __future__ import annotations

# -- cache-line state transitions (per key, per node) ----------------------
CACHE_INSTALL = "cache.install"
CACHE_UPDATE = "cache.update"          # in-place E-state value update
CACHE_DOWNGRADE = "cache.downgrade"    # E -> S (owner fetched from)
CACHE_INVALIDATE = "cache.invalidate"  # -> I (entry removed)
CACHE_EVICT = "cache.evict"            # silent capacity eviction

# -- directory ownership / sharer sets -------------------------------------
DIR_EXCLUSIVE = "dir.exclusive"
DIR_SHARER = "dir.sharer"
DIR_REMOVE = "dir.remove"
DIR_TRANSFER = "dir.transfer"          # entry adopted from another home
DIR_PRUNE = "dir.prune"                # dead member dropped from sharer sets

# -- invalidation rounds ---------------------------------------------------
INV_SEND = "inv.send"
INV_RECV = "inv.recv"

# -- transport failures ----------------------------------------------------
RPC_TIMEOUT = "rpc.timeout"
RPC_RESET = "rpc.reset"                # fail-fast PeerDown reject

# -- fault tolerance -------------------------------------------------------
BARRIER_RAISE = "barrier.raise"
BARRIER_LIFT = "barrier.lift"
RECOVERY_SURVIVOR = "recovery.survivor"
RECOVERY_COMPLETE = "recovery.complete"
DOMAIN_CHANGE = "domain.change"
MEMBER_EJECT = "member.eject"
MEMBER_JOIN = "member.join"
MEMBER_LEAVE = "member.leave"
PEER_UNREACHABLE = "peer.unreachable"

# -- write-behind flush pipeline (scheme zoo) ------------------------------
CACHE_FLUSH_ENQUEUE = "cache.flush.enqueue"  # write parked in dirty buffer
CACHE_FLUSH_WRITE = "cache.flush.write"      # dirty entry made durable
CACHE_FLUSH_LOST = "cache.flush.lost"        # dirty entry lost to a crash
CACHE_TTL_EXPIRE = "cache.ttl.expire"        # TTL lapsed; entry refetched

# -- causal scheme (vector-clock metadata, session migration) ---------------
CAUSAL_WRITE = "causal.write"                # write tagged with a vc
CAUSAL_MIGRATE = "causal.migrate"            # session moved between nodes
CAUSAL_SYNC = "causal.sync"                  # pull round to close a vc gap

# -- sharded directory topologies ------------------------------------------
SHARD_REHOME = "shard.rehome"          # voluntary leader change (join/leave)
SHARD_FAILOVER = "shard.failover"      # crash-driven leader change
SHARD_ADOPT = "shard.adopt"            # new leader adopted mirrored entries
SHARD_SPLIT = "shard.split"            # linear-hash shard-count doubling

# -- FaaS control plane ----------------------------------------------------
SCHED_WARM = "sched.warm"
SCHED_COLD = "sched.cold"
REQ_RESCHEDULE = "req.reschedule"

# -- dump triggers ---------------------------------------------------------
FAULT_INJECT = "fault.inject"
VERIFY_VIOLATION = "verify.violation"

#: Every event type the recorder may carry (closed set, sorted).
EVENT_TYPES = frozenset({
    CACHE_INSTALL, CACHE_UPDATE, CACHE_DOWNGRADE, CACHE_INVALIDATE,
    CACHE_EVICT,
    CACHE_FLUSH_ENQUEUE, CACHE_FLUSH_WRITE, CACHE_FLUSH_LOST,
    CACHE_TTL_EXPIRE,
    CAUSAL_WRITE, CAUSAL_MIGRATE, CAUSAL_SYNC,
    DIR_EXCLUSIVE, DIR_SHARER, DIR_REMOVE, DIR_TRANSFER, DIR_PRUNE,
    INV_SEND, INV_RECV,
    RPC_TIMEOUT, RPC_RESET,
    BARRIER_RAISE, BARRIER_LIFT, RECOVERY_SURVIVOR, RECOVERY_COMPLETE,
    DOMAIN_CHANGE, MEMBER_EJECT, MEMBER_JOIN, MEMBER_LEAVE,
    PEER_UNREACHABLE,
    SHARD_REHOME, SHARD_FAILOVER, SHARD_ADOPT, SHARD_SPLIT,
    SCHED_WARM, SCHED_COLD, REQ_RESCHEDULE,
    FAULT_INJECT, VERIFY_VIOLATION,
})

#: Event types whose emission triggers the automatic full dump.
DUMP_TRIGGERS = frozenset({FAULT_INJECT, VERIFY_VIOLATION})
