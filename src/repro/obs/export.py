"""Flight-recorder serialization: JSONL event records.

Byte-deterministic like the trace and telemetry exporters: one JSON
object per line in ``(t, seq)`` emission order, every object dumped with
``sort_keys=True`` and compact separators, nothing derived from object
identity or hash order.  Two identically-seeded runs — under any
``PYTHONHASHSEED`` — therefore produce identical dump bytes, and a
dump/load/dump round trip reproduces the file exactly.

Plain functions (not simulation processes), so file I/O here is outside
the SIM02 no-blocking-calls contract.
"""

from __future__ import annotations

import json

__all__ = ["jsonl_dumps", "export_jsonl", "loads_events", "load_events"]

#: Fields every event record carries (load-time validation).
_REQUIRED = ("seq", "t", "type", "node", "key", "trace", "span", "tick",
             "attrs")


def _event_dicts(source) -> list:
    """Accept a FlightRecorder or an iterable of event dicts."""
    if hasattr(source, "to_dicts"):
        return source.to_dicts()
    return list(source)


def jsonl_dumps(source) -> str:
    """Serialize recorded events as one JSON object per line."""
    lines = [json.dumps(event, sort_keys=True, separators=(",", ":"))
             for event in _event_dicts(source)]
    return "\n".join(lines) + ("\n" if lines else "")


def export_jsonl(source, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(jsonl_dumps(source))


def loads_events(text: str) -> list:
    """Parse a JSONL dump into event dicts (validated, emission order)."""
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ValueError(f"line {lineno}: not an event object")
        missing = [field for field in _REQUIRED if field not in record]
        if missing:
            raise ValueError(
                f"line {lineno}: event record missing {missing}")
        events.append(record)
    return events


def load_events(path) -> list:
    """Read a flight-recorder JSONL dump into event dicts."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_events(handle.read())
