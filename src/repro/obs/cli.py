"""Command-line entry point: ``python -m repro.obs`` / ``repro-inspect``.

Usage::

    repro-inspect timeline dump.jsonl                      # merged timeline
    repro-inspect timeline dump.jsonl --trace t.json \\
        --metrics m.jsonl --since 40 --until 90            # all three signals
    repro-inspect timeline dump.jsonl --format=html        # shareable table
    repro-inspect explain dump.jsonl                       # every violation
    repro-inspect explain dump.jsonl --key user:42         # one key's chain

``timeline`` merges a flight-recorder dump with the trace and telemetry
exports of the same run into one sim-time-ordered view; ``explain``
walks a key's protocol history and prints the causal transition chain
behind a coherence violation, naming known race signatures.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.cli_common import (
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_USAGE,
    common_parent,
    output_stream,
)
from repro.obs.explain import explain_key, find_violations, render_explain
from repro.obs.export import load_events
from repro.obs.timeline import merge_timeline, render_html, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-inspect",
        description=("Post-mortem inspection of flight-recorder dumps: "
                     "merged event/span/metric timelines and causal "
                     "explanations of coherence violations."),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    timeline = sub.add_parser(
        "timeline",
        help="merge a dump with trace/metric exports into one timeline",
        parents=[common_parent(formats=("text", "html", "json"), out=True,
                               window=True)],
    )
    timeline.add_argument("dump", type=Path,
                          help="flight-recorder JSONL dump")
    timeline.add_argument("--trace", type=Path, default=None,
                          help="trace export of the same run (adds spans)")
    timeline.add_argument("--metrics", type=Path, default=None,
                          help="telemetry export of the same run "
                               "(adds metric sample ticks)")

    explain = sub.add_parser(
        "explain",
        help="walk a key's event history and explain its violation",
        parents=[common_parent(formats=("text", "json"), out=True,
                               window=True)],
    )
    explain.add_argument("dump", type=Path,
                         help="flight-recorder JSONL dump")
    explain.add_argument("--key", default=None,
                         help="explain this key (default: every key a "
                              "verify violation names)")
    return parser


def main(argv: Optional[list] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with output_stream(args.out, out) as out:
            return _run(args, out)
    except OSError as exc:
        if args.out is None:
            raise
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return EXIT_USAGE


def _load_dump(args, out):
    if not args.dump.exists():
        print(f"error: no such dump file: {args.dump}", file=out)
        return None
    try:
        return load_events(args.dump)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: {args.dump} is not a flight-recorder dump: {exc}",
              file=out)
        return None


def _run(args, out) -> int:
    events = _load_dump(args, out)
    if events is None:
        return EXIT_USAGE
    if args.command == "timeline":
        return _run_timeline(args, events, out)
    return _run_explain(args, events, out)


def _run_timeline(args, events, out) -> int:
    spans = []
    if args.trace is not None:
        from repro.trace.export import load_trace

        try:
            spans = [span.to_dict() if hasattr(span, "to_dict") else span
                     for span in load_trace(args.trace)]
            for span in spans:
                if not isinstance(span, dict) or "start_ms" not in span \
                        or "span_id" not in span:
                    raise ValueError("not a list of span records")
        except (OSError, ValueError, KeyError, TypeError,
                json.JSONDecodeError) as exc:
            print(f"error: {args.trace} is not a repro trace export: {exc}",
                  file=out)
            return EXIT_USAGE
    series = []
    if args.metrics is not None:
        from repro.telemetry.export import load_series

        try:
            series = load_series(str(args.metrics))
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: {args.metrics} is not a telemetry export: {exc}",
                  file=out)
            return EXIT_USAGE

    timeline = merge_timeline(events, spans=spans, series=series,
                              since=args.since, until=args.until)
    title = f"timeline: {args.dump}"
    if args.format == "json":
        json.dump(timeline, out, indent=2, sort_keys=True)
        out.write("\n")
    elif args.format == "html":
        out.write(render_html(timeline, title=title))
    else:
        out.write(render_text(timeline, title=title))
    return EXIT_OK


def _run_explain(args, events, out) -> int:
    if args.since is not None or args.until is not None:
        events = [event for event in events
                  if (args.since is None or event["t"] >= args.since)
                  and (args.until is None or event["t"] <= args.until)]
    if args.key is not None:
        keys = [args.key]
    else:
        keys = []
        for violation in find_violations(events):
            if violation["key"] and violation["key"] not in keys:
                keys.append(violation["key"])
        if not keys:
            print("no verify violations recorded; pass --key to walk a "
                  "key's history anyway", file=out)
            return EXIT_FAILURE
    explanations = [explain_key(events, key) for key in keys]
    if args.format == "json":
        json.dump({"explanations": explanations}, out, indent=2,
                  sort_keys=True)
        out.write("\n")
        return EXIT_OK
    for explained in explanations:
        out.write(render_explain(explained,
                                 title=f"explain: {args.dump}"))
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
