"""The flight recorder: a bounded ring buffer of protocol events.

A :class:`FlightRecorder` collects :class:`ProtoEvent` records — typed,
sim-clock-stamped protocol transitions (see :mod:`repro.obs.events`) —
from every instrumented layer.  Design constraints mirror the tracer and
the metrics registry:

* **Simulated time only** (DET01): events are stamped with ``sim.now``;
  the recorder never reads a wall clock.
* **Deterministic identity** (DET03): event sequence numbers come from a
  plain counter, so two identically-seeded runs produce byte-identical
  dumps regardless of ``PYTHONHASHSEED``.
* **Zero-cost no-op mode**: an unconfigured simulator carries the shared
  :data:`NULL_RECORDER` whose ``active`` flag lets emission sites skip
  argument packing entirely (OBS01 enforces the gating discipline).
* **Purely passive**: recording appends to a Python list and never
  schedules, yields or otherwise touches the event wheel, so a run with
  the recorder enabled is schedule-identical — and therefore
  counter-identical — to the same run without it (the PR 5 bench gate
  pins this).

**Cross-signal correlation.**  Every event carries the ambient
``TraceContext`` (``trace``/``span`` ids, 0 when tracing is off) and the
``tick`` — the metric registry's sample count at emission time — so
post-mortem tooling can join the event log with the span tree and the
sampled timelines of the same run without timestamps alone.

**Ring-buffer semantics.**  The buffer holds the most recent
``capacity`` events; older ones are overwritten in place and counted in
``dropped``.  Emission order is sim-time order (the clock is monotonic
within a run), so eviction always discards a prefix — the survivors stay
sorted by ``(t, seq)``.

**Automatic dump.**  When constructed with ``dump_path``, emitting a
dump-trigger event (fault injection, coherence violation) writes the
full buffer to that JSONL path immediately, so the flight recording of a
failing run survives even if the driver crashes before exporting.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.obs.events import DUMP_TRIGGERS

__all__ = ["FlightRecorder", "NullRecorder", "NULL_RECORDER", "ProtoEvent",
           "DEFAULT_CAPACITY"]

#: Default ring capacity: generous for post-mortems, bounded for soak runs.
DEFAULT_CAPACITY = 65536


class ProtoEvent:
    """One recorded protocol event."""

    __slots__ = ("seq", "t", "type", "node", "key", "trace", "span",
                 "tick", "attrs")

    def __init__(self, seq, t, type, node, key, trace, span, tick, attrs):
        self.seq = seq
        self.t = t
        self.type = type
        self.node = node
        self.key = key
        self.trace = trace
        self.span = span
        self.tick = tick
        self.attrs = attrs

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "t": self.t,
            "type": self.type,
            "node": self.node,
            "key": self.key,
            "trace": self.trace,
            "span": self.span,
            "tick": self.tick,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProtoEvent(#{self.seq} t={self.t} {self.type} "
                f"node={self.node!r} key={self.key!r})")


class FlightRecorder:
    """Bounded in-memory protocol event log bound to one Simulator."""

    active = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 dump_path: Optional[str] = None):
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.dump_path = dump_path
        self._sim = None
        self._buffer: list = []
        self._head = 0          # overwrite cursor once the ring is full
        self._next_seq = itertools.count(1)
        #: Events overwritten by ring eviction.
        self.dropped = 0
        #: Automatic full dumps written (fault / violation triggers).
        self.autodumps = 0

    # -- wiring -------------------------------------------------------
    def bind(self, sim) -> "FlightRecorder":
        if self._sim is not None and self._sim is not sim:
            raise ValueError(
                "FlightRecorder is already bound to another Simulator")
        self._sim = sim
        return self

    @property
    def sim(self):
        return self._sim

    # -- recording ----------------------------------------------------
    def emit(self, etype: str, node: str = "", key: str = "",
             **attrs) -> None:
        """Record one event, stamped with sim time, trace ids and tick.

        Purely passive: one list append (or in-place overwrite), no
        simulator interaction.  Callers gate on ``recorder.active`` so
        the Null sink never evaluates the arguments.
        """
        sim = self._sim
        if sim is None:
            raise RuntimeError("FlightRecorder.emit() before bind(): attach "
                               "the recorder via Simulator(obs=...)")
        ctx = sim.tracer.current()
        event = ProtoEvent(
            seq=next(self._next_seq),
            t=sim.now,
            type=etype,
            node=node,
            key=key,
            trace=ctx.trace_id if ctx is not None else 0,
            span=ctx.span_id if ctx is not None else 0,
            tick=sim.metrics.samples,
            attrs=attrs,
        )
        buffer = self._buffer
        if len(buffer) < self.capacity:
            buffer.append(event)
        else:
            buffer[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1
        if etype in DUMP_TRIGGERS and self.dump_path is not None:
            self._autodump()

    # -- inspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    def events(self) -> list:
        """Recorded events, oldest first (sim-time / seq order)."""
        buffer = self._buffer
        head = self._head
        if head == 0:
            return list(buffer)
        return buffer[head:] + buffer[:head]

    def to_dicts(self) -> list:
        """Events as JSON-ready dicts, oldest first."""
        return [event.to_dict() for event in self.events()]

    def clear(self) -> None:
        self._buffer = []
        self._head = 0

    # -- dumping ------------------------------------------------------
    def _autodump(self) -> None:
        """Write the full ring to ``dump_path`` (fault/violation hook)."""
        from repro.obs.export import export_jsonl

        export_jsonl(self, self.dump_path)
        self.autodumps += 1


class NullRecorder:
    """Inactive recorder: every operation is a no-op.

    ``active`` is False so emission sites skip argument packing; code
    that emits unconditionally still works and pays only the call.
    """

    active = False

    def bind(self, sim) -> "NullRecorder":
        return self

    @property
    def sim(self):
        return None

    capacity = 0
    dump_path = None
    dropped = 0
    autodumps = 0

    def emit(self, etype, node="", key="", **attrs) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def events(self) -> list:
        return []

    def to_dicts(self) -> list:
        return []

    def clear(self) -> None:
        return None


#: Shared inactive recorder; the default for every Simulator.
NULL_RECORDER = NullRecorder()
