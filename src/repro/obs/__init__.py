"""repro.obs — the flight recorder and post-mortem inspection tooling.

A typed, sim-clock-stamped protocol event log (:mod:`repro.obs.events`,
:mod:`repro.obs.recorder`) emitted by every protocol layer, carried in a
bounded ring buffer with a zero-cost Null sink, dumped to byte-
deterministic JSONL (:mod:`repro.obs.export`), and interrogated through
merged timelines (:mod:`repro.obs.timeline`), causal explanations
(:mod:`repro.obs.explain`) and the ``repro-inspect`` CLI
(:mod:`repro.obs.cli`).  Simulator self-profiling lives in
:mod:`repro.obs.selfprof`.
"""

from repro.obs.explain import diagnose, explain_key, find_violations
from repro.obs.export import (
    export_jsonl,
    jsonl_dumps,
    load_events,
    loads_events,
)
from repro.obs.recorder import (
    DEFAULT_CAPACITY,
    NULL_RECORDER,
    FlightRecorder,
    NullRecorder,
    ProtoEvent,
)
from repro.obs.selfprof import SelfProfiler, install_wheel_gauges
from repro.obs.timeline import merge_timeline, render_html, render_text

__all__ = [
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "ProtoEvent",
    "DEFAULT_CAPACITY",
    "jsonl_dumps",
    "export_jsonl",
    "loads_events",
    "load_events",
    "merge_timeline",
    "render_text",
    "render_html",
    "explain_key",
    "diagnose",
    "find_violations",
    "SelfProfiler",
    "install_wheel_gauges",
]
