"""Merged post-mortem timelines: events + trace spans + metric ticks.

:func:`merge_timeline` joins the three observability signals of one run
— flight-recorder events, completed trace spans, and sampled metric
timelines — into a single list of rows ordered by simulated time, window
filtered with the shared ``--since/--until`` semantics.  The joins need
no heuristics because the signals were correlated at the source: every
event carries the ambient ``trace``/``span`` ids and the metric ``tick``
current at emission.

Renderers: :func:`render_text` (ASCII, one row per line) and
:func:`render_html` (a self-contained table for sharing).  Both are
deterministic for a given input.
"""

from __future__ import annotations

from html import escape
from typing import Optional

from repro.cli_common import in_window, overlaps_window

__all__ = ["merge_timeline", "render_text", "render_html"]

#: Same-instant tie-break: metric ticks first (they describe the state
#: entering the instant), then span starts, then events (seq-ordered).
_ORDER = {"metric": 0, "span": 1, "event": 2}


def _attr_str(attrs: dict) -> str:
    return " ".join(f"{name}={attrs[name]}" for name in sorted(attrs))


def merge_timeline(
    events: list,
    spans: Optional[list] = None,
    series: Optional[list] = None,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> dict:
    """Join the three signals into time-ordered rows.

    ``events`` are flight-recorder event dicts, ``spans`` trace-export
    span dicts, ``series`` telemetry-export series dicts.  Spans are
    kept when they *overlap* the window; point signals when they fall
    inside it.  Returns ``{"window", "rows", "counts"}``.
    """
    rows: list = []
    counts = {"events": 0, "spans": 0, "ticks": 0}

    for event in events:
        t = event["t"]
        if not in_window(t, since, until):
            continue
        counts["events"] += 1
        rows.append({
            "t": t,
            "source": "event",
            "seq": event["seq"],
            "type": event["type"],
            "node": event["node"],
            "key": event["key"],
            "trace": event["trace"],
            "span": event["span"],
            "tick": event["tick"],
            "attrs": dict(event.get("attrs") or {}),
        })

    for span in spans or []:
        start = span["start_ms"]
        end = span.get("end_ms", start)
        if not overlaps_window(start, end, since, until):
            continue
        counts["spans"] += 1
        rows.append({
            "t": start,
            "source": "span",
            "seq": span["span_id"],
            "name": span["name"],
            "category": span.get("category", "span"),
            "end_ms": end,
            "trace": span["trace_id"],
            "span": span["span_id"],
            "parent": span.get("parent_id"),
            "attrs": dict(span.get("attrs") or {}),
        })

    # Metric sample instants: one row per distinct sampling time, carrying
    # the tick index events were stamped with (tick k = k samples done).
    instants: dict = {}
    for one in series or []:
        for t, _value in one.get("points", ()):
            instants[t] = instants.get(t, 0) + 1
    for tick, t in enumerate(sorted(instants), start=1):
        if not in_window(t, since, until):
            continue
        counts["ticks"] += 1
        rows.append({
            "t": t,
            "source": "metric",
            "seq": tick,
            "tick": tick,
            "points": instants[t],
        })

    rows.sort(key=lambda row: (row["t"], _ORDER[row["source"]], row["seq"]))
    return {
        "window": [since, until],
        "rows": rows,
        "counts": counts,
    }


def _row_text(row: dict) -> str:
    t = f"{row['t']:>12.3f}"
    if row["source"] == "metric":
        return (f"{t}  metric  tick {row['tick']}: "
                f"{row['points']} series sampled")
    if row["source"] == "span":
        where = f" t{row['trace']}/s{row['span']}"
        attrs = _attr_str(row["attrs"])
        attrs = f" {attrs}" if attrs else ""
        return (f"{t}  span    {row['category']}:{row['name']} "
                f"[{row['t']:.3f}..{row['end_ms']:.3f}]ms{where}{attrs}")
    where = f" t{row['trace']}/s{row['span']}" if row["span"] else ""
    key = f" key={row['key']}" if row["key"] else ""
    node = f" {row['node']}" if row["node"] else ""
    attrs = _attr_str(row["attrs"])
    attrs = f" {attrs}" if attrs else ""
    return (f"{t}  event  {row['type']}{node}{key}{attrs}"
            f"{where} tick={row['tick']}")


def render_text(timeline: dict, title: str = "timeline") -> str:
    """ASCII rendering: a header plus one line per row."""
    since, until = timeline["window"]
    lo = "start" if since is None else f"{since:.3f}"
    hi = "end" if until is None else f"{until:.3f}"
    counts = timeline["counts"]
    lines = [
        f"{title}: window=[{lo}, {hi}]ms "
        f"events={counts['events']} spans={counts['spans']} "
        f"metric_ticks={counts['ticks']}",
        f"{'t(ms)':>12}  source  what",
    ]
    lines.extend(_row_text(row) for row in timeline["rows"])
    return "\n".join(lines) + "\n"


_HTML_HEAD = """\
<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title><style>
body {{ font-family: monospace; margin: 1.5em; }}
table {{ border-collapse: collapse; }}
td, th {{ border: 1px solid #ccc; padding: 2px 8px; text-align: left; }}
tr.event td {{ background: #f6fff6; }}
tr.span td {{ background: #f2f6ff; }}
tr.metric td {{ background: #fffbe8; }}
</style></head><body>
<h1>{title}</h1>
<p>window=[{lo}, {hi}]ms &mdash; {events} events, {spans} spans,
{ticks} metric ticks</p>
<table>
<tr><th>t (ms)</th><th>source</th><th>what</th><th>trace/span</th>
<th>tick</th></tr>
"""


def render_html(timeline: dict, title: str = "timeline") -> str:
    """Self-contained HTML table of the merged timeline."""
    since, until = timeline["window"]
    counts = timeline["counts"]
    parts = [_HTML_HEAD.format(
        title=escape(title),
        lo="start" if since is None else f"{since:.3f}",
        hi="end" if until is None else f"{until:.3f}",
        events=counts["events"], spans=counts["spans"],
        ticks=counts["ticks"])]
    for row in timeline["rows"]:
        if row["source"] == "metric":
            what = f"tick {row['tick']}: {row['points']} series sampled"
            ids = ""
            tick = str(row["tick"])
        elif row["source"] == "span":
            attrs = _attr_str(row["attrs"])
            what = (f"{row['category']}:{row['name']} "
                    f"[{row['t']:.3f}..{row['end_ms']:.3f}]ms"
                    + (f" {attrs}" if attrs else ""))
            ids = f"t{row['trace']}/s{row['span']}"
            tick = ""
        else:
            attrs = _attr_str(row["attrs"])
            bits = [row["type"]]
            if row["node"]:
                bits.append(row["node"])
            if row["key"]:
                bits.append(f"key={row['key']}")
            if attrs:
                bits.append(attrs)
            what = " ".join(bits)
            ids = f"t{row['trace']}/s{row['span']}" if row["span"] else ""
            tick = str(row["tick"])
        parts.append(
            f'<tr class="{row["source"]}"><td>{row["t"]:.3f}</td>'
            f"<td>{row['source']}</td><td>{escape(what)}</td>"
            f"<td>{escape(ids)}</td><td>{tick}</td></tr>\n")
    parts.append("</table></body></html>\n")
    return "".join(parts)
