"""Post-mortem causality: walk a key's event history, explain a violation.

Given a flight-recorder dump and a key the quiescent coherence checker
flagged, :func:`explain_key` extracts that key's protocol history (plus
the cluster-scope events — barriers, recovery, faults — that change what
any key's operations are allowed to do), then :func:`diagnose` replays
the state transitions looking for the places where coherence went wrong.

The diagnosis rules are exactly the three protocol races fixed in PR 4,
which is what makes them good post-mortem signatures — each names the
code-path guard whose absence produces it:

``e-write-clobber``
    A ``cache.update`` (in-place E-state update) committed a *lower*
    storage version than the copy already present: the direct-to-storage
    write touched the cache before the storage ack / without the
    version compare.
``write-reply-clobber``
    A ``cache.install`` from a home-write reply carried a lower version
    than the copy already present: the reply clobbered a newer entry
    instead of yielding to storage order.
``barred-install``
    A ``cache.install`` landed while a recovery/domain-change barrier
    was raised: the recovery eviction sweep has already run, so the new
    copy is tracked by no directory (the ``_key_barred`` guard).

Storage versions are compared only when both sides are known (> 0);
read installs carry version 0 and never participate.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import (
    BARRIER_LIFT,
    BARRIER_RAISE,
    CACHE_INSTALL,
    CACHE_INVALIDATE,
    CACHE_UPDATE,
    VERIFY_VIOLATION,
)

__all__ = ["key_history", "diagnose", "explain_key", "find_violations",
           "render_explain"]

#: Events with no key of their own that still belong in every key's
#: history: they gate what any key's operations may legally do.
_CLUSTER_PREFIXES = ("barrier.", "recovery.", "domain.", "member.",
                     "fault.", "peer.")


def key_history(events: list, key: str) -> list:
    """The slice of ``events`` relevant to ``key``, emission order."""
    out = []
    for event in events:
        if event["key"] == key:
            out.append(event)
        elif not event["key"] and event["type"].startswith(_CLUSTER_PREFIXES):
            out.append(event)
    return out


def find_violations(events: list) -> list:
    """All coherence-checker violation events in the stream."""
    return [event for event in events if event["type"] == VERIFY_VIOLATION]


def diagnose(history: list) -> list:
    """Replay a key history; return race findings (see module docstring).

    Each finding is ``{"race", "seq", "cause_seq", "message"}`` where
    ``seq`` is the offending event and ``cause_seq`` the event it
    conflicts with (the newer-version copy, or the barrier raise).
    """
    findings = []
    version = {}       # node -> last known storage version of its copy
    version_seq = {}   # node -> seq of the event that set it
    barriers = {}      # member -> the barrier.raise event
    for event in history:
        etype = event["type"]
        attrs = event["attrs"]
        if etype == BARRIER_RAISE:
            barriers[attrs.get("member", event["node"])] = event
        elif etype == BARRIER_LIFT:
            barriers.pop(attrs.get("member", event["node"]), None)
        elif etype == CACHE_INVALIDATE:
            version.pop(event["node"], None)
            version_seq.pop(event["node"], None)
        elif etype in (CACHE_INSTALL, CACHE_UPDATE):
            node = event["node"]
            new = attrs.get("version", 0)
            held = version.get(node, 0)
            if etype == CACHE_INSTALL and barriers:
                raise_event = min(barriers.values(), key=lambda e: e["seq"])
                member = raise_event["attrs"].get(
                    "member", raise_event["node"])
                findings.append({
                    "race": "barred-install",
                    "seq": event["seq"],
                    "cause_seq": raise_event["seq"],
                    "message": (
                        f"install on {node} while the barrier for failed "
                        f"home {member} was raised (#{raise_event['seq']}): "
                        f"the recovery eviction sweep has already run here, "
                        f"so no directory tracks this copy"),
                })
            elif new and held and new < held:
                race = ("e-write-clobber" if etype == CACHE_UPDATE
                        else "write-reply-clobber")
                how = ("in-place E update committed to cache without the "
                       "storage-version compare"
                       if etype == CACHE_UPDATE else
                       "home-write reply installed over a newer entry "
                       "instead of yielding to storage order")
                findings.append({
                    "race": race,
                    "seq": event["seq"],
                    "cause_seq": version_seq[node],
                    "message": (
                        f"{etype} v{new} on {node} clobbered newer v{held} "
                        f"(#{version_seq[node]}): {how}"),
                })
            if new >= held:
                version[node] = new
                version_seq[node] = event["seq"]
    return findings


def explain_key(events: list, key: str) -> dict:
    """History + findings + violations for one key."""
    history = key_history(events, key)
    return {
        "key": key,
        "history": history,
        "findings": diagnose(history),
        "violations": [event for event in history
                       if event["type"] == VERIFY_VIOLATION],
    }


def _event_line(event: dict) -> str:
    attrs = event["attrs"]
    extra = " ".join(f"{name}={attrs[name]}" for name in sorted(attrs))
    extra = f" {extra}" if extra else ""
    node = f" {event['node']}" if event["node"] else ""
    return (f"  #{event['seq']:<5} {event['t']:>10.3f}ms "
            f"{event['type']}{node}{extra}")


def render_explain(explained: dict, title: str = "explain") -> str:
    """Text report: the causal transition chain plus the diagnosis."""
    lines = [f"{title}: key={explained['key']} "
             f"({len(explained['history'])} events, "
             f"{len(explained['violations'])} violations)"]
    lines.append("causal transition chain:")
    lines.extend(_event_line(event) for event in explained["history"])
    findings = explained["findings"]
    if findings:
        lines.append("diagnosis:")
        for finding in findings:
            lines.append(f"  - [{finding['race']}] event #{finding['seq']} "
                         f"<- #{finding['cause_seq']}: {finding['message']}")
    else:
        lines.append("diagnosis: no known race signature matched")
    return "\n".join(lines) + "\n"
