"""Simulator self-profiling: wheel gauges + per-layer wall attribution.

Two complementary views of where the simulator itself spends its effort:

* :func:`install_wheel_gauges` exposes the event wheel's occupancy and
  lag as ordinary pull-callback gauges on the run's MetricsRegistry —
  live entry count, current-instant lane depth, occupied future slots,
  freelist fill, and the horizon to the next scheduled entry.  These
  read only simulator state at sampling instants, so they are fully
  deterministic and safe to leave on in replay runs.

* :class:`SelfProfiler` is an opt-in *profiled run loop*: it dispatches
  schedule entries exactly like :meth:`Simulator.run` (same pop order,
  same clock advancement — simulated behaviour is unchanged) while
  attributing the wall time of each dispatch to the repo layer whose
  code resumes: the package of the process generator being stepped, or
  of the callback/event owner.  This answers "where does wall time go"
  for the ROADMAP perf work without cProfile's overhead or its
  per-function granularity.  Wall readings are measurement, not
  simulation — they vary run to run and are deliberately kept out of
  metric exports and flight-recorder dumps (the determinism contract,
  DESIGN.md §13).
"""

from __future__ import annotations

# Wall-clock self-measurement only, never simulation time.
import time  # noqa: DET01
from typing import Optional

from repro.sim.profiled import profiled_run

__all__ = ["SelfProfiler", "install_wheel_gauges", "render_profile"]

_INF = float("inf")


def install_wheel_gauges(sim) -> None:
    """Register event-wheel occupancy/lag gauges on ``sim.metrics``.

    No-op under the Null registry.  Callbacks read kernel state only at
    sampling instants (zero hot-path cost, deterministic values).
    """
    metrics = sim.metrics
    if not metrics.active:
        return
    wheel = sim._wheel
    metrics.gauge(
        "sim_wheel_live_entries",
        "Live (non-cancelled) entries in the event wheel.",
        labelnames=(),
    ).set_callback(lambda: len(wheel))
    metrics.gauge(
        "sim_wheel_imm_depth",
        "Entries queued in the current-instant FIFO lane.",
        labelnames=(),
    ).set_callback(lambda: len(wheel._imm))
    metrics.gauge(
        "sim_wheel_pending_days",
        "Occupied future time slots (calendar days) in the wheel.",
        labelnames=(),
    ).set_callback(lambda: len(wheel._days))
    metrics.gauge(
        "sim_wheel_freelist_entries",
        "Recycled entries parked on the wheel freelist.",
        labelnames=(),
    ).set_callback(lambda: len(wheel._free))
    metrics.gauge(
        "sim_wheel_horizon_ms",
        "Sim-time lag from now to the next scheduled entry "
        "(-1 when the schedule is drained).",
        labelnames=(),
    ).set_callback(
        lambda: -1.0 if (nxt := wheel.peek()) == _INF else nxt - sim.now)
    metrics.counter(
        "sim_schedule_entries_total",
        "Entries ever scheduled (events and raw callbacks).",
        labelnames=(),
    ).set_callback(lambda: sim.schedule_count)


def _layer_from_path(filename: str) -> str:
    """Map a code filename to its repo layer (``repro/<layer>/...``)."""
    marker = "repro/"
    pos = filename.replace("\\", "/").rfind(marker)
    if pos < 0:
        return "external"
    rest = filename.replace("\\", "/")[pos + len(marker):]
    segment = rest.split("/", 1)[0]
    return segment[:-3] if segment.endswith(".py") else segment


def _layer_from_module(module: str) -> str:
    parts = module.split(".")
    if parts[0] != "repro":
        return "external"
    return parts[1] if len(parts) > 1 else "repro"


def _layer_of(event, fn) -> str:
    """Attribute one schedule entry to a repo layer before dispatch."""
    if fn is not None:
        owner = getattr(fn, "__self__", None)
        generator = getattr(owner, "generator", None)
        code = getattr(generator, "gi_code", None)
        if code is not None:
            return _layer_from_path(code.co_filename)
        module = getattr(fn, "__module__", None)
        if module:
            return _layer_from_module(module)
        return "external"
    return _layer_from_module(type(event).__module__)


class SelfProfiler:
    """Wall-time attribution over a profiled run loop.

    ``profiler.run(sim, until=...)`` is a drop-in for ``sim.run`` with
    per-dispatch wall measurement; accumulated attribution lands in
    ``wall_s`` / ``dispatches`` (layer-keyed dicts).
    """

    def __init__(self):
        self.wall_s: dict = {}
        self.dispatches: dict = {}

    def run(self, sim, until: Optional[float] = None) -> None:
        """Dispatch like ``Simulator.run`` while attributing wall time.

        Pop order, clock advancement and dispatch semantics match the
        plain run loop entry for entry, so the simulated outcome is
        identical; only the measurement differs.
        """
        wall_s = self.wall_s
        dispatches = self.dispatches

        def observe(layer: str, spent: float) -> None:
            wall_s[layer] = wall_s.get(layer, 0.0) + spent
            dispatches[layer] = dispatches.get(layer, 0) + 1

        profiled_run(sim, time.perf_counter, _layer_of, observe, until=until)

    def report(self) -> list:
        """Attribution rows sorted by wall share, descending."""
        total = sum(self.wall_s.values()) or 1.0
        rows = [{
            "layer": layer,
            "wall_s": self.wall_s[layer],
            "share": self.wall_s[layer] / total,
            "dispatches": self.dispatches.get(layer, 0),
        } for layer in self.wall_s]
        rows.sort(key=lambda row: (-row["wall_s"], row["layer"]))
        return rows


def render_profile(profiler: SelfProfiler) -> str:
    """Text table of per-layer wall attribution."""
    rows = profiler.report()
    total_wall = sum(row["wall_s"] for row in rows)
    total_disp = sum(row["dispatches"] for row in rows)
    lines = [f"self-profile: {total_disp} dispatches, "
             f"{total_wall * 1e3:.1f} ms wall",
             f"{'layer':<12} {'wall_ms':>10} {'share':>7} {'dispatches':>11}"]
    for row in rows:
        lines.append(f"{row['layer']:<12} {row['wall_s'] * 1e3:>10.2f} "
                     f"{row['share'] * 100:>6.1f}% {row['dispatches']:>11}")
    return "\n".join(lines) + "\n"
