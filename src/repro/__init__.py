"""Concord reproduction: distributed coherence for serverless software caches.

This package reproduces the system described in "Concord: Rethinking
Distributed Coherence for Software Caches in Serverless Environments"
(HPCA 2025) on top of a from-scratch discrete-event simulator.

Layering (bottom to top):

- :mod:`repro.sim` -- deterministic discrete-event simulation kernel.
- :mod:`repro.net` -- internode message fabric and RPC.
- :mod:`repro.storage` -- global blob storage model.
- :mod:`repro.cluster` -- nodes, memory accounting, failure injection.
- :mod:`repro.coord` -- coordination service (membership, heartbeats).
- :mod:`repro.faas` -- serverless platform (containers, schedulers).
- :mod:`repro.caching` -- cache substrate + OFC / Faa$T baselines.
- :mod:`repro.core` -- the Concord coherence protocol (the contribution).
- :mod:`repro.txn` -- transactional storage accesses (+ Saga / Beldi).
- :mod:`repro.placement` -- communication-aware function placement.
- :mod:`repro.apta` -- software Apta comparison protocol.
- :mod:`repro.verify` -- explicit-state protocol model checker.
- :mod:`repro.workloads` -- benchmark application models and generators.
- :mod:`repro.experiments` -- one module per paper table/figure.
"""

__version__ = "1.0.0"

from repro.config import LatencyModel, SimConfig

__all__ = ["LatencyModel", "SimConfig", "__version__"]
