"""Cluster assembly and failure injection."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.config import LatencyModel, SimConfig
from repro.cluster.node import Node
from repro.net.fabric import Network
from repro.storage.blob import GlobalStorage

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator


class Cluster:
    """A set of nodes sharing a network fabric and global storage.

    Components that need to react to crashes (coordination service,
    platform) register ``on_failure`` callbacks; failure *detection*
    latency is still governed by heartbeats — these callbacks only model
    the physical crash itself (network silence, dead processes).
    """

    def __init__(self, sim: "Simulator", config: Optional[SimConfig] = None):
        self.sim = sim
        self.config = config or SimConfig()
        self.network = Network(sim, self.config.latency,
                               topology=self.config.regions)
        self.storage = GlobalStorage(sim, self.config.latency,
                                     topology=self.config.regions)
        self.nodes: dict[str, Node] = {}
        for index in range(self.config.num_nodes):
            node_id = f"node{index}"
            self.nodes[node_id] = Node(sim, node_id, self.config)
        self._crash_listeners: list[Callable[[str], None]] = []

    @property
    def node_ids(self) -> list[str]:
        return list(self.nodes.keys())

    def node(self, node_id: str) -> Node:
        return self.nodes[node_id]

    def alive_nodes(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.alive]

    def add_node(self, node_id: Optional[str] = None) -> Node:
        """Grow the cluster by one node (used by scaling experiments)."""
        if node_id is None:
            node_id = f"node{len(self.nodes)}"
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id {node_id!r}")
        node = Node(self.sim, node_id, self.config)
        self.nodes[node_id] = node
        return node

    def on_crash(self, listener: Callable[[str], None]) -> None:
        """Register a callback invoked synchronously when a node crashes."""
        self._crash_listeners.append(listener)

    def crash_node(self, node_id: str) -> None:
        """Hard-crash a node: silence its network, kill its processes."""
        node = self.nodes[node_id]
        if not node.alive:
            return
        node.alive = False
        self.network.fail_node(node_id)
        for listener in self._crash_listeners:
            listener(node_id)

    def restart_node(self, node_id: str) -> None:
        """Bring a crashed node back, empty of containers."""
        node = self.nodes[node_id]
        if node.alive:
            return
        node.clear_containers()
        node.alive = True
        self.network.restore_node(node_id)
